"""Pattern graphs and the benchmark pattern registry (paper Figure 11).

A :class:`Pattern` is a small connected undirected graph whose vertices are
``0..k-1``.  The registry exposes the six patterns used throughout the
paper's evaluation — triangle (3CF), 4-clique (4CF), 5-clique (5CF),
tailed triangle (TT), 4-cycle (CYC), diamond (DIA) — plus the wedge used by
3-motif finding (3MF) and a few extras for examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, permutations
from typing import Iterable, Iterator, Sequence

from ..errors import PatternError

__all__ = ["Pattern", "PATTERNS", "MOTIF3", "motif_patterns"]


@dataclass(frozen=True)
class Pattern:
    """A connected query pattern on vertices ``0..num_vertices-1``.

    ``labels`` optionally constrains each pattern vertex to match only data
    vertices carrying the same label (labelled GPM); automorphisms — and
    therefore symmetry-breaking restrictions — respect labels.
    """

    name: str
    num_vertices: int
    edge_list: tuple[tuple[int, int], ...]
    labels: tuple[int, ...] | None = None
    _adj: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise PatternError("patterns need at least one vertex")
        adj = [0] * self.num_vertices
        seen: set[tuple[int, int]] = set()
        for u, v in self.edge_list:
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
                raise PatternError(f"edge ({u},{v}) out of range")
            if u == v:
                raise PatternError("patterns must be simple (no self loops)")
            if (min(u, v), max(u, v)) in seen:
                raise PatternError(f"duplicate edge ({u},{v})")
            seen.add((min(u, v), max(u, v)))
            adj[u] |= 1 << v
            adj[v] |= 1 << u
        object.__setattr__(self, "_adj", tuple(adj))
        if self.labels is not None and len(self.labels) != self.num_vertices:
            raise PatternError("labels must have one entry per pattern vertex")
        if self.num_vertices > 1 and not self._connected():
            raise PatternError(f"pattern {self.name!r} is not connected")

    @classmethod
    def from_edges(cls, name: str, edges: Iterable[tuple[int, int]]) -> "Pattern":
        """Build a pattern, inferring the vertex count from the edges."""
        edge_tuple = tuple((int(u), int(v)) for u, v in edges)
        if not edge_tuple:
            raise PatternError("patterns must have at least one edge")
        n = max(max(e) for e in edge_tuple) + 1
        return cls(name=name, num_vertices=n, edge_list=edge_tuple)

    @classmethod
    def clique(cls, k: int, name: str | None = None) -> "Pattern":
        """The complete pattern on ``k`` vertices."""
        return cls(
            name=name or f"{k}CF",
            num_vertices=k,
            edge_list=tuple(combinations(range(k), 2)),
        )

    @classmethod
    def cycle(cls, k: int, name: str | None = None) -> "Pattern":
        """The ``k``-cycle pattern."""
        if k < 3:
            raise PatternError("cycles need at least 3 vertices")
        return cls(
            name=name or f"C{k}",
            num_vertices=k,
            edge_list=tuple((i, (i + 1) % k) for i in range(k)),
        )

    # -- queries -------------------------------------------------------------

    def _connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            mask = self._adj[v]
            while mask:
                low = mask & -mask
                w = low.bit_length() - 1
                mask ^= low
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == self.num_vertices

    @property
    def num_edges(self) -> int:
        return len(self.edge_list)

    def adjacent(self, u: int, v: int) -> bool:
        return bool(self._adj[u] >> v & 1)

    def neighbors(self, v: int) -> list[int]:
        out = []
        mask = self._adj[v]
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def degree(self, v: int) -> int:
        return self._adj[v].bit_count()

    def automorphisms(self) -> Iterator[tuple[int, ...]]:
        """All automorphisms as vertex permutations (brute force).

        Patterns are tiny (≤ ~8 vertices) so exhaustive permutation search is
        the simplest correct approach; degree multisets prune most branches.
        """
        degs = [self.degree(v) for v in range(self.num_vertices)]
        for perm in permutations(range(self.num_vertices)):
            if any(degs[v] != degs[perm[v]] for v in range(self.num_vertices)):
                continue
            if self.labels is not None and any(
                self.labels[v] != self.labels[perm[v]]
                for v in range(self.num_vertices)
            ):
                continue
            if all(
                self.adjacent(perm[u], perm[v])
                for u, v in self.edge_list
            ):
                yield perm

    def automorphism_count(self) -> int:
        return sum(1 for _ in self.automorphisms())

    def relabeled(self, mapping: Sequence[int]) -> "Pattern":
        """Pattern with vertex ``v`` renamed to ``mapping[v]``."""
        if sorted(mapping) != list(range(self.num_vertices)):
            raise PatternError("mapping must be a permutation")
        new_labels = None
        if self.labels is not None:
            out = [0] * self.num_vertices
            for v, lab in enumerate(self.labels):
                out[mapping[v]] = lab
            new_labels = tuple(out)
        return Pattern(
            name=self.name,
            num_vertices=self.num_vertices,
            edge_list=tuple(
                (mapping[u], mapping[v]) for u, v in self.edge_list
            ),
            labels=new_labels,
        )

    def with_labels(self, labels: Sequence[int]) -> "Pattern":
        """Copy of this pattern with per-vertex label constraints."""
        return Pattern(
            name=self.name,
            num_vertices=self.num_vertices,
            edge_list=self.edge_list,
            labels=tuple(int(x) for x in labels),
        )


def _registry() -> dict[str, Pattern]:
    patterns = [
        Pattern.clique(3, "3CF"),
        Pattern.clique(4, "4CF"),
        Pattern.clique(5, "5CF"),
        # tailed triangle: triangle 0-1-2 plus tail vertex 3 hanging off 0
        Pattern.from_edges("TT", [(0, 1), (0, 2), (1, 2), (0, 3)]),
        Pattern.cycle(4, "CYC"),
        # diamond: 4-cycle 0-2-1-3 with chord 0-1 (two triangles on edge 0-1)
        Pattern.from_edges("DIA", [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]),
        # wedge (open triangle): the second 3-vertex motif used by 3MF
        Pattern.from_edges("WEDGE", [(0, 1), (0, 2)]),
        # house: 4-cycle with a triangle roof — used by examples/tests
        Pattern.from_edges(
            "HOUSE", [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]
        ),
        Pattern.cycle(5, "C5"),
        Pattern.from_edges("P3", [(0, 1), (1, 2), (2, 3)]),
    ]
    return {p.name: p for p in patterns}


#: named benchmark patterns (paper Figure 11 plus extras)
PATTERNS: dict[str, Pattern] = _registry()

#: the two connected 3-vertex motifs counted by 3MF
MOTIF3: tuple[Pattern, Pattern] = (PATTERNS["3CF"], PATTERNS["WEDGE"])


def motif_patterns(size: int) -> list[Pattern]:
    """All connected patterns with ``size`` vertices (up to isomorphism).

    Used by multi-pattern motif-finding workloads; sizes up to 5 enumerate
    quickly by filtering labelled edge subsets.
    """
    if size < 2 or size > 5:
        raise PatternError("motif enumeration supported for sizes 2..5")
    found: list[Pattern] = []
    all_edges = list(combinations(range(size), 2))
    seen_canon: set[frozenset[tuple[int, int]]] = set()
    for r in range(size - 1, len(all_edges) + 1):
        for edges in combinations(all_edges, r):
            try:
                p = Pattern(f"motif{size}", size, tuple(edges))
            except PatternError:
                continue
            canon = min(
                tuple(
                    sorted(
                        (min(m[u], m[v]), max(m[u], m[v])) for u, v in edges
                    )
                )
                for m in permutations(range(size))
            )
            if canon in seen_canon:
                continue
            seen_canon.add(canon)
            found.append(
                Pattern(f"motif{size}_{len(found)}", size, tuple(edges))
            )
    return found
