"""IEP result-collection expressions (paper §4.2, Figure 7).

Intersection Expression Pruning replaces the deepest loops of a matching
plan with a closed-form expression over candidate-set sizes, evaluated on
the RISC-V host per partial embedding.  The paper shows three instances:
plain accumulation (3CF), the diamond's ``A(A-1)/2``, and GraphSet-style
arbitrary expressions (TRI6).  This module provides the expression language
and an executor that runs a plan *prefix* and folds the expression at the
cut, so arbitrary IEP-enhanced plans can be counted without enumerating the
pruned levels.

Terms available (all evaluated against the current partial embedding):

* :class:`Const` — integer literal;
* :class:`SetSize` — ``|S_k|``: size of the raw candidate set stored at
  level ``k``;
* :class:`MatchedInSet` — how many already-matched vertices lie inside
  ``S_k`` (the distinctness correction IEP needs);
* :class:`PairIntersection` — ``|S_a ∩ S_b|`` of two stored sets (the
  coincidence correction for two independent pruned vertices);
* arithmetic ``+ - *`` and :class:`Choose` (binomial coefficient).

Example — the diamond of Figure 7c, collected as ``C(|S1|, 2)``::

    plan = build_plan(PATTERNS["DIA"], collection="enumerate")
    expr = Choose(SetSize(2), 2)
    count = count_with_expression(graph, plan, stop_level=2, expression=expr)
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import PlanError
from ..graph.csr import CSRGraph
from ..setops.reference import difference_sorted, intersect_count, intersect_sorted
from .plan import MatchingPlan

__all__ = [
    "Expression",
    "Const",
    "SetSize",
    "MatchedInSet",
    "PairIntersection",
    "Add",
    "Sub",
    "Mul",
    "Choose",
    "count_with_expression",
]


@dataclass(frozen=True)
class _Context:
    """Evaluation state at the IEP cut: stored sets + matched vertices."""

    stored: tuple[np.ndarray | None, ...]
    embedding: tuple[int, ...]

    def set_at(self, level: int) -> np.ndarray:
        s = self.stored[level]
        if s is None:
            raise PlanError(f"no candidate set stored at level {level}")
        return s


class Expression(ABC):
    """A host-evaluated integer expression over the IEP context."""

    @abstractmethod
    def evaluate(self, ctx: _Context) -> int:
        """Value for one partial embedding."""

    def __add__(self, other: "Expression") -> "Expression":
        return Add(self, other)

    def __sub__(self, other: "Expression") -> "Expression":
        return Sub(self, other)

    def __mul__(self, other: "Expression") -> "Expression":
        return Mul(self, other)


@dataclass(frozen=True)
class Const(Expression):
    value: int

    def evaluate(self, ctx: _Context) -> int:
        return self.value


@dataclass(frozen=True)
class SetSize(Expression):
    """``|S_level|`` — raw candidate-set size stored at a plan level."""

    level: int

    def evaluate(self, ctx: _Context) -> int:
        return int(ctx.set_at(self.level).size)


@dataclass(frozen=True)
class MatchedInSet(Expression):
    """Number of already-matched vertices contained in ``S_level``."""

    level: int

    def evaluate(self, ctx: _Context) -> int:
        s = ctx.set_at(self.level)
        count = 0
        for v in ctx.embedding:
            i = int(np.searchsorted(s, v))
            if i < s.size and int(s[i]) == v:
                count += 1
        return count


@dataclass(frozen=True)
class PairIntersection(Expression):
    """``|S_a ∩ S_b|`` of two stored candidate sets."""

    level_a: int
    level_b: int

    def evaluate(self, ctx: _Context) -> int:
        return intersect_count(
            ctx.set_at(self.level_a), ctx.set_at(self.level_b)
        )


@dataclass(frozen=True)
class Add(Expression):
    left: Expression
    right: Expression

    def evaluate(self, ctx: _Context) -> int:
        return self.left.evaluate(ctx) + self.right.evaluate(ctx)


@dataclass(frozen=True)
class Sub(Expression):
    left: Expression
    right: Expression

    def evaluate(self, ctx: _Context) -> int:
        return self.left.evaluate(ctx) - self.right.evaluate(ctx)


@dataclass(frozen=True)
class Mul(Expression):
    left: Expression
    right: Expression

    def evaluate(self, ctx: _Context) -> int:
        return self.left.evaluate(ctx) * self.right.evaluate(ctx)


@dataclass(frozen=True)
class Choose(Expression):
    """Binomial coefficient ``C(inner, k)`` (0 when inner < k)."""

    inner: Expression
    k: int

    def evaluate(self, ctx: _Context) -> int:
        n = self.inner.evaluate(ctx)
        if n < self.k:
            return 0
        return math.comb(n, self.k)


def count_with_expression(
    graph: CSRGraph,
    plan: MatchingPlan,
    stop_level: int,
    expression: Expression,
) -> int:
    """Run ``plan`` down to ``stop_level`` and fold ``expression`` there.

    Levels ``1..stop_level`` are matched normally (with all filters); for
    every surviving partial embedding the expression is evaluated against
    the stored raw candidate sets and accumulated — the IEP flow the paper's
    host executes.  ``stop_level`` counts *matched* levels, so the candidate
    set computed at level ``stop_level`` is available to the expression.
    """
    if not 1 <= stop_level < plan.depth:
        raise PlanError("stop_level must lie inside the plan")
    from .executor import apply_filters

    levels = plan.levels
    embedding = [0] * plan.depth
    stored: list[np.ndarray | None] = [None] * plan.depth
    neighbors = graph.neighbors
    total = 0

    def candidates(i: int) -> np.ndarray:
        lv = levels[i]
        if lv.reuse_from is not None:
            base = stored[lv.reuse_from]
            assert base is not None
            return base
        if lv.base is not None:
            s = stored[lv.base]
            assert s is not None
            ints, subs = lv.extra_deps, lv.extra_anti
        else:
            s = neighbors(embedding[lv.deps[0]])
            ints, subs = lv.deps[1:], lv.anti_deps
        for p in ints:
            s = intersect_sorted(s, neighbors(embedding[p]))
        for p in subs:
            s = difference_sorted(s, neighbors(embedding[p]))
        return s

    def recurse(i: int) -> None:
        nonlocal total
        raw = candidates(i)
        stored[i] = raw
        if i == stop_level:
            ctx = _Context(
                stored=tuple(stored), embedding=tuple(embedding[:i])
            )
            total += expression.evaluate(ctx)
            return
        for v in apply_filters(raw, levels[i], embedding, graph.labels):
            embedding[i] = int(v)
            recurse(i + 1)

    root_label = levels[0].label
    for root in range(graph.num_vertices):
        if (
            root_label is not None
            and graph.labels is not None
            and int(graph.labels[root]) != root_label
        ):
            continue
        embedding[0] = root
        recurse(1)
    return total
