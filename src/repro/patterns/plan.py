"""Matching plans: vertex orders, per-level set operations, restrictions.

A :class:`MatchingPlan` is the artifact a system like GraphPi produces
(paper §4.2 step ①): an order over the pattern vertices plus, for each
level, the set operations that compute the candidate set and the
symmetry-breaking / distinctness filters to apply when spawning.

Semantics
---------
*Non-induced* matching (the GPM default) maps every pattern edge onto a data
edge; candidate sets are intersections of matched neighbours.  *Induced*
matching additionally requires pattern non-edges to be absent, which compiles
to **set difference** operations — the paper notes CYC and TT generate large
intermediate sets through set difference, so those patterns default to their
induced plans here (see :data:`DEFAULT_INDUCED`).

IEP
---
Counting workloads avoid materialising the deepest loops.  Two collection
modes are compiled automatically (paper Figure 7):

* ``count_last`` — the final level only counts the filtered candidate set
  (hardware count-only mode, 3CF/4CF/5CF style);
* ``choose2`` — the final *two* symmetric levels draw from the same candidate
  set with one restriction between them, so the host collects
  ``A·(A−1)/2`` per parent (the diamond's ``|S|`` expression in Figure 7c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import PlanError
from .pattern import Pattern
from .symmetry import Restriction, symmetry_restrictions

__all__ = [
    "LevelSpec",
    "MatchingPlan",
    "build_plan",
    "choose_order",
    "DEFAULT_INDUCED",
]

#: patterns the evaluation counts in induced form (difference-heavy plans)
DEFAULT_INDUCED = frozenset({"CYC", "TT", "WEDGE", "P3"})


@dataclass(frozen=True)
class LevelSpec:
    """Compiled matching actions for one level of the search tree.

    ``deps``/``anti_deps`` are *positions* (levels) of earlier matched
    vertices whose neighbour sets are intersected / subtracted.  Bounds are
    positions whose matched vertex upper/lower-limits the candidates.
    ``exclude`` lists positions whose matched vertex must be filtered out for
    distinctness (non-adjacent earlier vertices).
    """

    position: int
    pattern_vertex: int
    deps: tuple[int, ...]
    anti_deps: tuple[int, ...] = ()
    reuse_from: int | None = None
    upper_bounds: tuple[int, ...] = ()
    lower_bounds: tuple[int, ...] = ()
    exclude: tuple[int, ...] = ()
    #: earlier level whose *stored* candidate set this level extends
    #: (prefix reuse — the standard GPM optimisation of intersecting the
    #: parent's set with one more neighbour list instead of recomputing)
    base: int | None = None
    #: neighbour sets intersected on top of ``base`` (positions)
    extra_deps: tuple[int, ...] = ()
    #: neighbour sets subtracted on top of ``base`` (positions)
    extra_anti: tuple[int, ...] = ()
    #: required data-vertex label for candidates at this level (labelled GPM)
    label: int | None = None

    @property
    def num_set_ops(self) -> int:
        """SIU operations this level issues (intersections + differences)."""
        if self.reuse_from is not None:
            return 0
        if self.base is not None:
            return len(self.extra_deps) + len(self.extra_anti)
        return max(len(self.deps) - 1, 0) + len(self.anti_deps)

    def signature(self) -> tuple[frozenset[int], frozenset[int]]:
        return frozenset(self.deps), frozenset(self.anti_deps)

    def describe(self) -> str:
        """Human-readable task description in the paper's Figure 10e style."""
        if self.reuse_from is not None:
            src = f"S{self.reuse_from}"
        else:
            parts = [f"N(u{p})" for p in self.deps]
            src = " ∩ ".join(parts) if parts else "V(G)"
            for p in self.anti_deps:
                src += f" − N(u{p})"
        filters = [f"< u{p}" for p in self.upper_bounds]
        filters += [f"> u{p}" for p in self.lower_bounds]
        filters += [f"≠ u{p}" for p in self.exclude]
        flt = f"  [{', '.join(filters)}]" if filters else ""
        return f"u{self.position} ∈ {src}{flt}"


@dataclass(frozen=True)
class MatchingPlan:
    """A complete GPM matching plan for one pattern."""

    pattern: Pattern
    order: tuple[int, ...]
    restrictions: tuple[Restriction, ...]
    levels: tuple[LevelSpec, ...]
    induced: bool = False
    #: result-collection mode: "enumerate", "count_last" or "choose2"
    collection: str = "count_last"

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def stop_level(self) -> int:
        """Deepest level actually executed (leaf of the search tree).

        ``choose2`` collapses the final two levels into one closed-form
        count, so its leaf sits one level higher than the plan depth.
        """
        if self.collection == "choose2":
            return self.depth - 2
        return self.depth - 1  # enumerate / count_last

    def describe(self) -> str:
        lines = [
            f"plan for {self.pattern.name} "
            f"({'induced' if self.induced else 'non-induced'}, "
            f"collection={self.collection})",
            f"order: {self.order}",
            "restrictions: "
            + (", ".join(str(r) for r in self.restrictions) or "none"),
        ]
        lines += ["  " + lv.describe() for lv in self.levels]
        return "\n".join(lines)


def choose_order(pattern: Pattern) -> tuple[int, ...]:
    """Greedy connectivity-first matching order.

    Starts at a maximum-degree vertex, then repeatedly appends the vertex
    with the most edges into the prefix (ties: higher pattern degree, then
    lower index) — the standard heuristic that keeps candidate sets small by
    intersecting as early as possible.
    """
    k = pattern.num_vertices
    start = max(range(k), key=lambda v: (pattern.degree(v), -v))
    order = [start]
    remaining = set(range(k)) - {start}
    while remaining:
        def score(v: int) -> tuple[int, int, int]:
            back = sum(1 for u in order if pattern.adjacent(u, v))
            return (back, pattern.degree(v), -v)

        nxt = max(remaining, key=score)
        if all(not pattern.adjacent(u, nxt) for u in order) and k > 1:
            raise PlanError(
                f"pattern {pattern.name!r} admits no connected order"
            )
        order.append(nxt)
        remaining.discard(nxt)
    return tuple(order)


def _compile_levels(
    pattern: Pattern,
    order: Sequence[int],
    restrictions: Sequence[Restriction],
    induced: bool,
) -> tuple[LevelSpec, ...]:
    pos_of = {v: i for i, v in enumerate(order)}
    labels = pattern.labels
    levels: list[LevelSpec] = []
    signatures: dict[tuple[frozenset[int], frozenset[int]], int] = {}
    for i, v in enumerate(order):
        deps = tuple(
            sorted(pos_of[u] for u in order[:i] if pattern.adjacent(u, v))
        )
        anti = tuple(
            sorted(pos_of[u] for u in order[:i] if not pattern.adjacent(u, v))
        )
        anti_deps = anti if induced else ()
        upper = tuple(
            sorted(
                pos_of[r.greater]
                for r in restrictions
                if r.smaller == v and pos_of[r.greater] < i
            )
        )
        lower = tuple(
            sorted(
                pos_of[r.smaller]
                for r in restrictions
                if r.greater == v and pos_of[r.smaller] < i
            )
        )
        # Prefix reuse: extend the deepest earlier stored set whose deps and
        # anti-deps are subsets of ours (valid since (X−A)∩Y−B == X∩Y−A−B).
        base: int | None = None
        extra_deps = deps
        extra_anti = anti_deps
        if i > 1 and deps:
            for j in range(i - 1, 0, -1):
                prev = levels[j]
                if not prev.deps:
                    continue
                if set(prev.deps) <= set(deps) and set(prev.anti_deps) <= set(
                    anti_deps
                ):
                    base = j
                    extra_deps = tuple(
                        p for p in deps if p not in prev.deps
                    )
                    extra_anti = tuple(
                        p for p in anti_deps if p not in prev.anti_deps
                    )
                    break
        spec = LevelSpec(
            position=i,
            pattern_vertex=v,
            deps=deps,
            anti_deps=anti_deps,
            upper_bounds=upper,
            lower_bounds=lower,
            exclude=anti,
            base=base,
            extra_deps=extra_deps if base is not None else deps,
            extra_anti=extra_anti if base is not None else anti_deps,
            label=labels[v] if labels is not None else None,
        )
        sig = spec.signature()
        if i > 0 and deps and sig in signatures:
            spec = LevelSpec(
                position=i,
                pattern_vertex=v,
                deps=deps,
                anti_deps=anti_deps,
                reuse_from=signatures[sig],
                upper_bounds=upper,
                lower_bounds=lower,
                exclude=anti,
                base=base,
                extra_deps=(),
                extra_anti=(),
                label=labels[v] if labels is not None else None,
            )
        else:
            signatures[sig] = i
        levels.append(spec)
    return tuple(levels)


def _detect_choose2(levels: Sequence[LevelSpec]) -> bool:
    """Can the last two levels collapse into an ``A(A-1)/2`` count?"""
    if len(levels) < 3:
        return False
    a, b = levels[-2], levels[-1]
    if b.signature() != a.signature():
        return False
    if a.label != b.label:
        return False  # the two collapsed vertices must accept the same label
    if b.reuse_from != a.position and a.reuse_from != b.reuse_from:
        # b must read the same stored set a iterates over
        if b.reuse_from is None:
            return False
    extra_upper = tuple(p for p in b.upper_bounds if p != a.position)
    extra_lower = tuple(p for p in b.lower_bounds if p != a.position)
    bound_between = (
        a.position in b.upper_bounds or a.position in b.lower_bounds
    )
    if not bound_between:
        return False
    # remaining bounds must match a's so both draw from the same filtered set
    return extra_upper == a.upper_bounds and extra_lower == a.lower_bounds


def build_plan(
    pattern: Pattern,
    induced: bool | None = None,
    order: Sequence[int] | None = None,
    collection: str | None = None,
) -> MatchingPlan:
    """Generate a matching plan for ``pattern``.

    ``induced`` defaults per-pattern (see :data:`DEFAULT_INDUCED`);
    ``order`` overrides the heuristic matching order; ``collection`` forces a
    result-collection mode (``enumerate`` disables IEP collapses so every
    embedding is spawned — needed by enumeration workloads).
    """
    if induced is None:
        induced = pattern.name in DEFAULT_INDUCED
    order_t = tuple(order) if order is not None else choose_order(pattern)
    if sorted(order_t) != list(range(pattern.num_vertices)):
        raise PlanError("order must be a permutation of the pattern vertices")
    restrictions = symmetry_restrictions(pattern)
    levels = _compile_levels(pattern, order_t, restrictions, induced)
    for lv in levels[1:]:
        if not lv.deps:
            raise PlanError(
                f"level {lv.position} of {pattern.name!r} is disconnected "
                "from the prefix; pick a different order"
            )
    if collection is None:
        collection = "choose2" if _detect_choose2(levels) else "count_last"
    elif collection not in ("enumerate", "count_last", "choose2"):
        raise PlanError(f"unknown collection mode {collection!r}")
    if collection == "choose2" and not _detect_choose2(levels):
        raise PlanError("choose2 collection not applicable to this plan")
    return MatchingPlan(
        pattern=pattern,
        order=order_t,
        restrictions=restrictions,
        levels=levels,
        induced=induced,
        collection=collection,
    )
