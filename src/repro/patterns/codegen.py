"""Task-list code generation: matching plan → X-SET hardware program.

Paper §4.2 step ②: the matching plan is "transformed into an executable
task list" whose entries name a set operation, its operands, the
symmetry-breaking filter and the count-only flag — the dispatcher decodes
exactly this record in Figure 10e (``R[0] <- set_int S0, G[v1], filter=v1,
count_only``).  This module compiles a :class:`MatchingPlan` into that task
list, renders it in the paper's textual form, and packs/unpacks a 64-bit
binary encoding of each entry (what ``xset_config`` would actually DMA into
the PE).

Encoding layout (LSB first):

====== ======= ==========================================================
bits    field   meaning
====== ======= ==========================================================
0-2     opcode  0 load, 1 set_int, 2 set_diff
3-6     src_a   source A: 0-7 stored set S_k, 8-14 neighbour N(u_p)+8
7-10    src_b   source B, same encoding (15 = none)
11-14   flt_lt  position whose vertex upper-bounds candidates (15 = none)
15-18   flt_gt  position whose vertex lower-bounds candidates (15 = none)
19      count   count-only (no spawn)
20      store   store result for descendant reuse
21-24   level   plan level this op belongs to
====== ======= ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from .plan import MatchingPlan

__all__ = ["TaskOp", "compile_task_list", "render_task_list",
           "encode_task_op", "decode_task_op"]

_NONE = 15
_OPCODES = {"load": 0, "set_int": 1, "set_diff": 2}
_OPNAMES = {v: k for k, v in _OPCODES.items()}


@dataclass(frozen=True)
class TaskOp:
    """One entry of the hardware task list."""

    level: int
    opcode: str                  # "load" | "set_int" | "set_diff"
    src_a: tuple[str, int]       # ("S", level) or ("N", position)
    src_b: tuple[str, int] | None
    filter_lt: int | None        # candidates < u[position]
    filter_gt: int | None        # candidates > u[position]
    count_only: bool
    store: bool

    def render(self) -> str:
        """The paper's Figure-10e textual form."""

        def src(ref: tuple[str, int]) -> str:
            kind, idx = ref
            return f"S{idx}" if kind == "S" else f"G[u{idx}]"

        parts = [f"R[{self.level}] <- {self.opcode} {src(self.src_a)}"]
        if self.src_b is not None:
            parts.append(f", {src(self.src_b)}")
        if self.filter_lt is not None:
            parts.append(f", filter<u{self.filter_lt}")
        if self.filter_gt is not None:
            parts.append(f", filter>u{self.filter_gt}")
        if self.count_only:
            parts.append(", count_only")
        if self.store:
            parts.append(", store")
        return "".join(parts)


def compile_task_list(plan: MatchingPlan) -> list[TaskOp]:
    """Compile every plan level into its hardware operations."""
    stop_level = {
        "enumerate": plan.depth - 1,
        "count_last": plan.depth - 1,
        "choose2": plan.depth - 2,
    }[plan.collection]
    ops: list[TaskOp] = []
    for lv in plan.levels[1 : stop_level + 1]:
        is_leaf = lv.position == stop_level
        # the hardware filter carries one bound register; under chained
        # restrictions the latest bounding position holds the tightest value
        flt_lt = max(lv.upper_bounds) if lv.upper_bounds else None
        flt_gt = min(lv.lower_bounds) if lv.lower_bounds else None
        store = not is_leaf
        if lv.reuse_from is not None:
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode="load",
                    src_a=("S", lv.reuse_from),
                    src_b=None,
                    filter_lt=flt_lt,
                    filter_gt=flt_gt,
                    count_only=is_leaf,
                    store=store,
                )
            )
            continue
        if lv.base is not None:
            src: tuple[str, int] = ("S", lv.base)
            chain = [("set_int", p) for p in lv.extra_deps] + [
                ("set_diff", p) for p in lv.extra_anti
            ]
        else:
            src = ("N", lv.deps[0])
            chain = [("set_int", p) for p in lv.deps[1:]] + [
                ("set_diff", p) for p in lv.anti_deps
            ]
        if not chain:
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode="load",
                    src_a=src,
                    src_b=None,
                    filter_lt=flt_lt,
                    filter_gt=flt_gt,
                    count_only=is_leaf,
                    store=store,
                )
            )
            continue
        for i, (opcode, p) in enumerate(chain):
            last = i == len(chain) - 1
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode=opcode,
                    src_a=src if i == 0 else ("S", lv.position),
                    src_b=("N", p),
                    filter_lt=flt_lt if last else None,
                    filter_gt=flt_gt if last else None,
                    count_only=is_leaf and last,
                    store=store and last,
                )
            )
    return ops


def render_task_list(plan: MatchingPlan) -> str:
    """Full textual task list with a Figure-7a-style preamble."""
    lines = [
        f"; task list for pattern {plan.pattern.name} "
        f"({plan.collection} collection)",
        "xset_config GRAPH_BASE, CSR",
        f"xset_config TASKLIST, {len(compile_task_list(plan))} entries",
    ]
    lines += ["  " + op.render() for op in compile_task_list(plan)]
    lines.append("xset_run MAX_VERTEX")
    lines.append("xset_poll RESULT")
    return "\n".join(lines)


def _encode_src(ref: tuple[str, int] | None) -> int:
    if ref is None:
        return _NONE
    kind, idx = ref
    if kind == "S":
        if not 0 <= idx < 8:
            raise PlanError(f"stored-set index {idx} out of range")
        return idx
    if not 0 <= idx < 7:
        raise PlanError(f"neighbour position {idx} out of range")
    return idx + 8


def _decode_src(value: int) -> tuple[str, int] | None:
    if value == _NONE:
        return None
    if value < 8:
        return ("S", value)
    return ("N", value - 8)


def encode_task_op(op: TaskOp) -> int:
    """Pack one task-list entry into its 64-bit configuration word."""
    word = _OPCODES[op.opcode]
    word |= _encode_src(op.src_a) << 3
    word |= _encode_src(op.src_b) << 7
    word |= (op.filter_lt if op.filter_lt is not None else _NONE) << 11
    word |= (op.filter_gt if op.filter_gt is not None else _NONE) << 15
    word |= int(op.count_only) << 19
    word |= int(op.store) << 20
    word |= op.level << 21
    return word


def decode_task_op(word: int) -> TaskOp:
    """Inverse of :func:`encode_task_op`."""
    src_a = _decode_src((word >> 3) & 0xF)
    if src_a is None:
        raise PlanError("task op must have a source A")
    flt_lt = (word >> 11) & 0xF
    flt_gt = (word >> 15) & 0xF
    return TaskOp(
        level=(word >> 21) & 0xF,
        opcode=_OPNAMES[word & 0x7],
        src_a=src_a,
        src_b=_decode_src((word >> 7) & 0xF),
        filter_lt=None if flt_lt == _NONE else flt_lt,
        filter_gt=None if flt_gt == _NONE else flt_gt,
        count_only=bool((word >> 19) & 1),
        store=bool((word >> 20) & 1),
    )
