"""Task-list code generation: matching plan → X-SET hardware program.

Paper §4.2 step ②: the matching plan is "transformed into an executable
task list" whose entries name a set operation, its operands, the
symmetry-breaking filter and the count-only flag — the dispatcher decodes
exactly this record in Figure 10e (``R[0] <- set_int S0, G[v1], filter=v1,
count_only``).  This module compiles a :class:`MatchingPlan` into that task
list, renders it in the paper's textual form, and packs/unpacks a 64-bit
binary encoding of each entry (what ``xset_config`` would actually DMA into
the PE).

Plan-compiled software kernels
------------------------------
The same compilation idea applied to the software engines: where the
``batched`` backend interprets a generic level loop against the plan's
``LevelSpec`` tuples, :func:`emit_plan_source` emits *real NumPy source*
specialised to one plan — the loop nest is unrolled per level, candidate
filters are fused (a single symmetry bound compiles to one comparison, not
a ``min``-reduce over a one-element axis), bound/exclude positions and
labels are baked in as constants, and the adjacency probes appear as
straight-line statements.  :func:`compile_plan_kernel` ``exec``-compiles
that source and caches the result per :func:`kernel_cache_key` — plan
structure plus the graph's labelledness; none of the ``SystemConfig``
timing knobs reach the functional source, so every config shares one
kernel per plan.  The generated algebra replays
``FrontierExpander.expand`` exactly, statement for statement, so counts
*and* the analytic cycle aggregates are byte-identical to the ``batched``
engine (the ``codegen`` backend in :mod:`repro.engine.codegen` is built on
this guarantee).

Encoding layout (LSB first):

====== ======= ==========================================================
bits    field   meaning
====== ======= ==========================================================
0-2     opcode  0 load, 1 set_int, 2 set_diff
3-6     src_a   source A: 0-7 stored set S_k, 8-14 neighbour N(u_p)+8
7-10    src_b   source B, same encoding (15 = none)
11-14   flt_lt  position whose vertex upper-bounds candidates (15 = none)
15-18   flt_gt  position whose vertex lower-bounds candidates (15 = none)
19      count   count-only (no spawn)
20      store   store result for descendant reuse
21-24   level   plan level this op belongs to
====== ======= ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import PlanError
from .plan import LevelSpec, MatchingPlan

__all__ = ["TaskOp", "compile_task_list", "render_task_list",
           "encode_task_op", "decode_task_op",
           "CompiledKernel", "emit_plan_source", "compile_plan_kernel",
           "kernel_cache_key", "kernel_cache_info", "clear_kernel_cache"]

_NONE = 15
_OPCODES = {"load": 0, "set_int": 1, "set_diff": 2}
_OPNAMES = {v: k for k, v in _OPCODES.items()}


@dataclass(frozen=True)
class TaskOp:
    """One entry of the hardware task list."""

    level: int
    opcode: str                  # "load" | "set_int" | "set_diff"
    src_a: tuple[str, int]       # ("S", level) or ("N", position)
    src_b: tuple[str, int] | None
    filter_lt: int | None        # candidates < u[position]
    filter_gt: int | None        # candidates > u[position]
    count_only: bool
    store: bool

    def render(self) -> str:
        """The paper's Figure-10e textual form."""

        def src(ref: tuple[str, int]) -> str:
            kind, idx = ref
            return f"S{idx}" if kind == "S" else f"G[u{idx}]"

        parts = [f"R[{self.level}] <- {self.opcode} {src(self.src_a)}"]
        if self.src_b is not None:
            parts.append(f", {src(self.src_b)}")
        if self.filter_lt is not None:
            parts.append(f", filter<u{self.filter_lt}")
        if self.filter_gt is not None:
            parts.append(f", filter>u{self.filter_gt}")
        if self.count_only:
            parts.append(", count_only")
        if self.store:
            parts.append(", store")
        return "".join(parts)


def compile_task_list(plan: MatchingPlan) -> list[TaskOp]:
    """Compile every plan level into its hardware operations."""
    stop_level = {
        "enumerate": plan.depth - 1,
        "count_last": plan.depth - 1,
        "choose2": plan.depth - 2,
    }[plan.collection]
    ops: list[TaskOp] = []
    for lv in plan.levels[1 : stop_level + 1]:
        is_leaf = lv.position == stop_level
        # the hardware filter carries one bound register; under chained
        # restrictions the latest bounding position holds the tightest value
        flt_lt = max(lv.upper_bounds) if lv.upper_bounds else None
        flt_gt = min(lv.lower_bounds) if lv.lower_bounds else None
        store = not is_leaf
        if lv.reuse_from is not None:
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode="load",
                    src_a=("S", lv.reuse_from),
                    src_b=None,
                    filter_lt=flt_lt,
                    filter_gt=flt_gt,
                    count_only=is_leaf,
                    store=store,
                )
            )
            continue
        if lv.base is not None:
            src: tuple[str, int] = ("S", lv.base)
            chain = [("set_int", p) for p in lv.extra_deps] + [
                ("set_diff", p) for p in lv.extra_anti
            ]
        else:
            src = ("N", lv.deps[0])
            chain = [("set_int", p) for p in lv.deps[1:]] + [
                ("set_diff", p) for p in lv.anti_deps
            ]
        if not chain:
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode="load",
                    src_a=src,
                    src_b=None,
                    filter_lt=flt_lt,
                    filter_gt=flt_gt,
                    count_only=is_leaf,
                    store=store,
                )
            )
            continue
        for i, (opcode, p) in enumerate(chain):
            last = i == len(chain) - 1
            ops.append(
                TaskOp(
                    level=lv.position,
                    opcode=opcode,
                    src_a=src if i == 0 else ("S", lv.position),
                    src_b=("N", p),
                    filter_lt=flt_lt if last else None,
                    filter_gt=flt_gt if last else None,
                    count_only=is_leaf and last,
                    store=store and last,
                )
            )
    return ops


def render_task_list(plan: MatchingPlan) -> str:
    """Full textual task list with a Figure-7a-style preamble."""
    lines = [
        f"; task list for pattern {plan.pattern.name} "
        f"({plan.collection} collection)",
        "xset_config GRAPH_BASE, CSR",
        f"xset_config TASKLIST, {len(compile_task_list(plan))} entries",
    ]
    lines += ["  " + op.render() for op in compile_task_list(plan)]
    lines.append("xset_run MAX_VERTEX")
    lines.append("xset_poll RESULT")
    return "\n".join(lines)


def _encode_src(ref: tuple[str, int] | None) -> int:
    if ref is None:
        return _NONE
    kind, idx = ref
    if kind == "S":
        if not 0 <= idx < 8:
            raise PlanError(f"stored-set index {idx} out of range")
        return idx
    if not 0 <= idx < 7:
        raise PlanError(f"neighbour position {idx} out of range")
    return idx + 8


def _decode_src(value: int) -> tuple[str, int] | None:
    if value == _NONE:
        return None
    if value < 8:
        return ("S", value)
    return ("N", value - 8)


def encode_task_op(op: TaskOp) -> int:
    """Pack one task-list entry into its 64-bit configuration word."""
    word = _OPCODES[op.opcode]
    word |= _encode_src(op.src_a) << 3
    word |= _encode_src(op.src_b) << 7
    word |= (op.filter_lt if op.filter_lt is not None else _NONE) << 11
    word |= (op.filter_gt if op.filter_gt is not None else _NONE) << 15
    word |= int(op.count_only) << 19
    word |= int(op.store) << 20
    word |= op.level << 21
    return word


def decode_task_op(word: int) -> TaskOp:
    """Inverse of :func:`encode_task_op`."""
    src_a = _decode_src((word >> 3) & 0xF)
    if src_a is None:
        raise PlanError("task op must have a source A")
    flt_lt = (word >> 11) & 0xF
    flt_gt = (word >> 15) & 0xF
    return TaskOp(
        level=(word >> 21) & 0xF,
        opcode=_OPNAMES[word & 0x7],
        src_a=src_a,
        src_b=_decode_src((word >> 7) & 0xF),
        filter_lt=None if flt_lt == _NONE else flt_lt,
        filter_gt=None if flt_gt == _NONE else flt_gt,
        count_only=bool((word >> 19) & 1),
        store=bool((word >> 20) & 1),
    )


# -- plan-compiled software kernels ------------------------------------------


def _emit_bound(lv: LevelSpec, op: str, positions: tuple[int, ...]) -> str:
    """The fused bound predicate: one comparison for a single position,
    a reduce over the pattern-constant column tuple otherwise."""
    if len(positions) == 1:
        return f"cand {op} emb[owner, {positions[0]}]"
    reduce = "min" if op == "<" else "max"
    cols = ", ".join(str(p) for p in positions)
    return f"cand {op} emb[:, ({cols})].{reduce}(axis=1)[owner]"


def _emit_level(
    lv: LevelSpec, level: int, is_leaf: bool, collection: str,
    use_labels: bool,
) -> list[str]:
    """Source lines (function-body indent) for one unrolled plan level."""
    w = lines = []
    w.append(f"    # -- level {level}: {lv.describe()}")
    w.append("    if emb.shape[0] == 0:")
    w.append("        return levels")
    w.append("    n_rows = int(emb.shape[0])")
    w.append(
        f"    out = FrontierLevel(level={level}, tasks=n_rows, "
        "embeddings=emb[:0], count=0)"
    )
    w.append("    levels.append(out)")
    w.append(f"    src = emb[:, {lv.deps[0]}]")
    w.append("    cand, owner = gather_rows(graph, src)")
    w.append("    out.words_in += int(rw[src].sum())")
    # cheap per-candidate filters, fused into pattern-constant predicates
    predicates: list[str] = []
    if lv.upper_bounds:
        predicates.append(_emit_bound(lv, "<", lv.upper_bounds))
    if lv.lower_bounds:
        predicates.append(_emit_bound(lv, ">", lv.lower_bounds))
    for p in lv.exclude:
        predicates.append(f"cand != emb[owner, {p}]")
    if use_labels and lv.label is not None:
        predicates.append(f"graph.labels[cand] == {lv.label}")
    for i, pred in enumerate(predicates):
        w.append(f"    keep {'=' if i == 0 else '&='} {pred}")
    if predicates:
        w.append("    cand = cand[keep]")
        w.append("    owner = owner[keep]")
    # straight-line adjacency probes, one per remaining dependency
    for p, invert in (
        *((p, False) for p in lv.deps[1:]),
        *((p, True) for p in lv.anti_deps),
    ):
        w.append(f"    other_words = int(rw[emb[:, {p}]].sum())")
        w.append("    out.words_in += other_words")
        w.append("    out.set_ops += n_rows")
        w.append("    out.comparisons += int(cand.size) + other_words")
        probe = f"adjacent(emb[owner, {p}], cand)"
        w.append(f"    keep = {'~' if invert else ''}{probe}")
        w.append("    cand = cand[keep]")
        w.append("    owner = owner[keep]")
    w.append("    out.words_out += int(cand.size)")
    if is_leaf:
        if collection == "choose2":
            w.append("    sizes = np.bincount(owner, minlength=n_rows)")
            w.append("    out.count = int((sizes * (sizes - 1) // 2).sum())")
        else:
            w.append("    out.count = int(cand.size)")
        w.append("    return levels")
    else:
        w.append("    emb = np.column_stack([emb[owner], cand])")
        w.append("    out.embeddings = emb")
    w.append("")
    return lines


def emit_plan_source(plan: MatchingPlan, use_labels: bool = False) -> str:
    """Emit plan-specialised NumPy source for one frontier sweep.

    The generated module defines ``kernel(graph, adjacent, rw, emb)`` —
    *graph* the :class:`~repro.graph.csr.CSRGraph`, *adjacent* a bulk
    edge-existence oracle, *rw* the per-vertex row-word counts and *emb*
    the level-0 frontier (one root per row).  It returns the per-level
    :class:`~repro.engine.functional.FrontierLevel` records, identical in
    counts and aggregates to interpreting the plan with
    ``FrontierExpander.expand`` — but with the level loop unrolled, every
    bound/exclude/label constant inlined, and no per-level attribute
    dispatch.

    ``use_labels`` bakes the plan's label predicates in; pass False when
    the target graph is unlabelled (the interpreter skips them too, so the
    specialisation must match).
    """
    lines = [
        f'"""Plan-compiled kernel: pattern {plan.pattern.name}, '
        f"collection {plan.collection}, depth {plan.depth}"
        f"{', labelled' if use_labels else ''}.",
        "",
        "Generated by repro.patterns.codegen.emit_plan_source; do not edit.",
        '"""',
        "",
        "",
        "def kernel(graph, adjacent, rw, emb):",
        "    levels = []",
    ]
    for level in range(1, plan.stop_level + 1):
        lines += _emit_level(
            plan.levels[level],
            level,
            is_leaf=level == plan.stop_level,
            collection=plan.collection,
            use_labels=use_labels,
        )
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class CompiledKernel:
    """One exec-compiled plan kernel plus its provenance."""

    key: tuple
    source: str
    fn: Callable[..., Any]


#: compiled kernels, keyed by :func:`kernel_cache_key`
_KERNEL_CACHE: dict[tuple, CompiledKernel] = {}
_KERNEL_STATS = {"hits": 0, "misses": 0}


def kernel_cache_key(plan: MatchingPlan, use_labels: bool = False) -> tuple:
    """The cache identity of a compiled kernel.

    Only inputs that reach the *emitted source* participate: the plan's
    level structure, its collection mode and whether label predicates were
    baked in.  ``SystemConfig`` knobs (SIU kind, widths, frequency, PE
    counts) are timing-model parameters applied after the functional
    sweep, so distinct configs deliberately share one kernel per plan.
    """
    return (plan.levels, plan.collection, plan.stop_level, bool(use_labels))


def compile_plan_kernel(
    plan: MatchingPlan, use_labels: bool = False
) -> CompiledKernel:
    """Emit, ``exec``-compile and cache the kernel for ``plan``."""
    key = kernel_cache_key(plan, use_labels)
    cached = _KERNEL_CACHE.get(key)
    if cached is not None:
        _KERNEL_STATS["hits"] += 1
        return cached
    _KERNEL_STATS["misses"] += 1
    # imported here, not at module top: engine.functional itself imports
    # repro.patterns, and kernels are only compiled on first use anyway
    import numpy as np

    from ..engine.functional import FrontierLevel
    from ..setops.bulk import gather_rows

    source = emit_plan_source(plan, use_labels)
    namespace: dict[str, Any] = {
        "np": np,
        "gather_rows": gather_rows,
        "FrontierLevel": FrontierLevel,
        "__name__": f"repro.patterns.codegen.kernel_{plan.pattern.name}",
    }
    code = compile(
        source, f"<plan-kernel:{plan.pattern.name}:{plan.collection}>", "exec"
    )
    exec(code, namespace)  # noqa: S102 - our own emitted source
    kernel = CompiledKernel(key=key, source=source, fn=namespace["kernel"])
    _KERNEL_CACHE[key] = kernel
    return kernel


def kernel_cache_info() -> dict:
    """Cache statistics (observability for tests and debugging)."""
    return {
        "size": len(_KERNEL_CACHE),
        "hits": _KERNEL_STATS["hits"],
        "misses": _KERNEL_STATS["misses"],
    }


def clear_kernel_cache() -> None:
    """Drop every compiled kernel and reset the statistics."""
    _KERNEL_CACHE.clear()
    _KERNEL_STATS["hits"] = 0
    _KERNEL_STATS["misses"] = 0
