"""Brute-force embedding counting — the independent test oracle.

A direct backtracking matcher with none of the plan machinery: it tries all
injective vertex mappings that preserve pattern edges (and, in induced mode,
pattern non-edges).  Dividing the labelled count by ``|Aut(P)|`` gives the
number of distinct subgraphs, which must equal what plans + restrictions
produce.  Only suitable for small graphs; tests use it on graphs of tens of
vertices.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from .pattern import Pattern

__all__ = ["count_labeled_embeddings", "count_unique_embeddings"]


def count_labeled_embeddings(
    graph: CSRGraph, pattern: Pattern, induced: bool = False
) -> int:
    """Count injective mappings ``V(P) → V(G)`` preserving (non-)edges."""
    k = pattern.num_vertices
    n = graph.num_vertices
    adj = [set(int(w) for w in graph.neighbors(v)) for v in range(n)]
    mapping = [-1] * k
    used = [False] * n

    def ok(pv: int, gv: int) -> bool:
        if pattern.labels is not None and graph.labels is not None:
            if int(graph.labels[gv]) != pattern.labels[pv]:
                return False
        for prev in range(pv):
            has = mapping[prev] in adj[gv]
            wants = pattern.adjacent(prev, pv)
            if wants and not has:
                return False
            if induced and not wants and has:
                return False
        return True

    def recurse(pv: int) -> int:
        if pv == k:
            return 1
        total = 0
        for gv in range(n):
            if used[gv] or not ok(pv, gv):
                continue
            mapping[pv] = gv
            used[gv] = True
            total += recurse(pv + 1)
            used[gv] = False
        return total

    return recurse(0)


def count_unique_embeddings(
    graph: CSRGraph, pattern: Pattern, induced: bool = False
) -> int:
    """Distinct (automorphism-deduplicated) embeddings of ``pattern``."""
    labeled = count_labeled_embeddings(graph, pattern, induced)
    aut = pattern.automorphism_count()
    assert labeled % aut == 0, "labelled count must divide by |Aut|"
    return labeled // aut
