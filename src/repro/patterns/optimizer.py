"""Matching-order optimisation — the GraphPi planner role (paper §4.2 ①).

The search-tree size of a GPM plan depends heavily on the matching order:
intersecting early keeps candidate sets small.  This module estimates the
expected cost of a plan on a given data graph from its degree statistics and
exhaustively searches connected orders for the cheapest one, the strategy
plan generators like GraphPi/GraphZero employ.

The cost model is the standard independence approximation: with ``n``
vertices and mean degree ``d``, a random vertex is adjacent to a fixed
vertex with probability ``p = d / n``, so a candidate set constrained by
``k`` adjacency requirements has expected size ``n * p^k``; symmetry
restrictions roughly halve each bounded level.  The estimate only drives
*order selection* — actual execution is exact regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from ..errors import PlanError
from ..graph.csr import CSRGraph
from ..graph.stats import GraphStats, graph_stats
from .pattern import Pattern
from .plan import MatchingPlan, build_plan

__all__ = ["PlanCostEstimate", "estimate_plan_cost", "optimize_plan"]


@dataclass(frozen=True)
class PlanCostEstimate:
    """Expected work of one plan on one data graph."""

    order: tuple[int, ...]
    expected_tasks: float
    expected_set_ops: float
    expected_words: float

    @property
    def cost(self) -> float:
        """Scalar objective: streamed words dominate accelerator time."""
        return self.expected_words + 4.0 * self.expected_tasks


def estimate_plan_cost(
    plan: MatchingPlan, stats: GraphStats
) -> PlanCostEstimate:
    """Independence-approximation cost of ``plan`` on a graph like ``stats``."""
    n = max(stats.num_vertices, 2)
    d = max(2.0 * stats.num_edges / n, 0.1)  # mean degree
    p = min(d / n, 1.0)
    tasks = float(n)  # roots
    total_tasks = float(n)
    total_ops = 0.0
    total_words = float(n)  # root loads
    set_size = float(n)
    for lv in plan.levels[1:]:
        k = len(lv.deps)
        set_size = n * p**k
        # each strict bound keeps about half the candidates
        bound_factor = 0.5 ** (len(lv.upper_bounds) + len(lv.lower_bounds))
        # every task at this level performs its compiled set ops over
        # streams of roughly (parent set + neighbour list) words
        ops = lv.num_set_ops
        parent_size = n * p ** max(k - 1, 1)
        total_ops += tasks * ops
        total_words += tasks * (parent_size + ops * d)
        if lv.position < plan.depth - 1:
            tasks = tasks * max(set_size * bound_factor, 1e-9)
            total_tasks += tasks
    return PlanCostEstimate(
        order=plan.order,
        expected_tasks=total_tasks,
        expected_set_ops=total_ops,
        expected_words=total_words,
    )


def _connected_orders(pattern: Pattern):
    k = pattern.num_vertices
    for perm in permutations(range(k)):
        ok = all(
            any(pattern.adjacent(perm[j], perm[i]) for j in range(i))
            for i in range(1, k)
        )
        if ok:
            yield perm


def optimize_plan(
    pattern: Pattern,
    graph: CSRGraph | GraphStats,
    induced: bool | None = None,
    max_orders: int = 5040,
) -> MatchingPlan:
    """Pick the cheapest connected matching order for ``pattern``.

    Exhaustive over connected orders (patterns are ≤ ~7 vertices, so at most
    a few thousand candidates); falls back to the greedy heuristic order if
    the pattern admits none within ``max_orders``.
    """
    stats = graph if isinstance(graph, GraphStats) else graph_stats(graph)
    if pattern.num_vertices > 8:
        raise PlanError("order optimisation supports patterns up to 8 vertices")
    best: MatchingPlan | None = None
    best_cost = float("inf")
    for i, order in enumerate(_connected_orders(pattern)):
        if i >= max_orders:
            break
        plan = build_plan(pattern, induced=induced, order=order)
        cost = estimate_plan_cost(plan, stats).cost
        if cost < best_cost:
            best_cost = cost
            best = plan
    if best is None:
        best = build_plan(pattern, induced=induced)
    return best
