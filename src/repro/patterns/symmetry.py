"""Symmetry-breaking restriction generation (paper §2.2).

GPM plans avoid enumerating each embedding once per pattern automorphism by
adding order restrictions between symmetric pattern vertices — e.g. the
diamond's ``u1 > u2`` and ``u3 > u4`` in Figure 1b.  We implement the
GraphZero scheme the paper's plan generator (GraphPi) builds on:

For every non-identity automorphism ``σ``, take the smallest vertex ``v``
moved by ``σ`` and emit the restriction ``u_v > u_{σ(v)}``.  The resulting
restriction set admits exactly one representative per automorphism orbit
(the embedding whose tuple is lexicographically largest within its orbit),
so ``restricted count × |Aut(P)| = unrestricted count``.  That identity is
the property test pinning this module down.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pattern import Pattern

__all__ = ["Restriction", "symmetry_restrictions"]


@dataclass(frozen=True)
class Restriction:
    """Require ``u_greater > u_smaller`` in every reported embedding.

    Attributes name *pattern* vertices; the plan compiler rewrites them into
    per-level candidate filters once a matching order is fixed.
    """

    greater: int
    smaller: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"u{self.greater} > u{self.smaller}"


def symmetry_restrictions(pattern: Pattern) -> tuple[Restriction, ...]:
    """GraphZero-style symmetry-breaking restrictions for ``pattern``."""
    restrictions: set[Restriction] = set()
    identity = tuple(range(pattern.num_vertices))
    for sigma in pattern.automorphisms():
        if sigma == identity:
            continue
        for v in range(pattern.num_vertices):
            if sigma[v] != v:
                restrictions.add(Restriction(greater=v, smaller=sigma[v]))
                break
    # Drop mutually-contradictory pairs that a generator and its inverse can
    # produce ((a>b) together with (b>a) would zero the count): keep the
    # orientation whose "greater" vertex is smaller-indexed, matching the
    # lexicographically-largest-representative convention.
    cleaned: set[Restriction] = set()
    for r in restrictions:
        mirrored = Restriction(greater=r.smaller, smaller=r.greater)
        if mirrored in cleaned:
            continue
        cleaned.add(r)
    return tuple(sorted(cleaned, key=lambda r: (r.greater, r.smaller)))
