"""Pattern graphs, symmetry breaking, matching plans and reference execution."""

from .bruteforce import count_labeled_embeddings, count_unique_embeddings
from .codegen import (
    TaskOp,
    compile_task_list,
    decode_task_op,
    encode_task_op,
    render_task_list,
)
from .executor import (
    ExecutionStats,
    apply_filters,
    count_embeddings,
    enumerate_embeddings,
)
from .iep import (
    Choose,
    Const,
    Expression,
    MatchedInSet,
    PairIntersection,
    SetSize,
    count_with_expression,
)
from .optimizer import PlanCostEstimate, estimate_plan_cost, optimize_plan
from .pattern import MOTIF3, PATTERNS, Pattern, motif_patterns
from .plan import (
    DEFAULT_INDUCED,
    LevelSpec,
    MatchingPlan,
    build_plan,
    choose_order,
)
from .symmetry import Restriction, symmetry_restrictions

__all__ = [
    "Choose",
    "Const",
    "DEFAULT_INDUCED",
    "ExecutionStats",
    "Expression",
    "MatchedInSet",
    "PairIntersection",
    "SetSize",
    "apply_filters",
    "compile_task_list",
    "count_with_expression",
    "decode_task_op",
    "encode_task_op",
    "render_task_list",
    "TaskOp",
    "estimate_plan_cost",
    "optimize_plan",
    "PlanCostEstimate",
    "LevelSpec",
    "MOTIF3",
    "MatchingPlan",
    "PATTERNS",
    "Pattern",
    "Restriction",
    "build_plan",
    "choose_order",
    "count_embeddings",
    "count_labeled_embeddings",
    "count_unique_embeddings",
    "enumerate_embeddings",
    "motif_patterns",
    "symmetry_restrictions",
]
