"""Software reference executor for matching plans.

This is the set-centric DFS algorithm of Figure 1c run directly on NumPy —
the functional ground truth the hardware simulator is cross-validated
against, and the operation-count collector the CPU baseline cost models are
built on.  It is deliberately independent of the simulator's task machinery
so that agreement between the two is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import PlanError
from ..graph.csr import CSRGraph
from ..setops.reference import (
    difference_sorted,
    intersect_sorted,
    merge_comparison_count,
)
from .plan import MatchingPlan

__all__ = ["ExecutionStats", "apply_filters", "count_embeddings", "enumerate_embeddings"]


@dataclass
class ExecutionStats:
    """Aggregate set-operation statistics of one plan execution.

    These aggregates feed the CPU/GPU baseline cost models: CPU merge
    intersection work is proportional to ``merge_comparisons``; memory
    traffic is proportional to ``words_in``/``words_out``.
    """

    embeddings: int = 0
    intersections: int = 0
    differences: int = 0
    words_in: int = 0
    words_out: int = 0
    merge_comparisons: int = 0
    tasks: int = 0
    max_set_len: int = 0
    per_level_tasks: list[int] = field(default_factory=list)

    def record(self, kind: str, len_a: int, len_b: int, len_out: int) -> None:
        if kind == "set_int":
            self.intersections += 1
            common = len_out
        else:
            self.differences += 1
            common = len_a - len_out
        self.words_in += len_a + len_b
        self.words_out += len_out
        self.merge_comparisons += merge_comparison_count(len_a, len_b, common)
        if len_out > self.max_set_len:
            self.max_set_len = len_out


def apply_filters(
    s: np.ndarray,
    level,
    embedding: list[int],
    vertex_labels: np.ndarray | None = None,
) -> np.ndarray:
    """Apply bounds, distinctness exclusion and label constraints."""
    if level.upper_bounds:
        bound = min(embedding[p] for p in level.upper_bounds)
        s = s[: s.searchsorted(bound)]
    if level.lower_bounds:
        bound = max(embedding[p] for p in level.lower_bounds)
        s = s[s.searchsorted(bound, side="right") :]
    if level.exclude and s.size:
        drop = [embedding[p] for p in level.exclude]
        mask = np.isin(s, drop, invert=True, assume_unique=True)
        if not mask.all():
            s = s[mask]
    if level.label is not None and vertex_labels is not None and s.size:
        s = s[vertex_labels[s] == level.label]
    return s


def _run(
    graph: CSRGraph, plan: MatchingPlan, stats: ExecutionStats
) -> Iterator[tuple[int, ...]]:
    """Depth-first plan execution; yields embeddings in ``enumerate`` mode."""
    levels = plan.levels
    depth = plan.depth
    collection = plan.collection
    stop_level = plan.stop_level
    if stop_level < 1:
        raise PlanError("plan too shallow for its collection mode")
    embedding = [0] * depth
    stored: list[np.ndarray | None] = [None] * depth
    stats.per_level_tasks = [0] * depth
    neighbors = graph.neighbors
    vertex_labels = graph.labels
    root_label = levels[0].label

    def candidates(i: int) -> np.ndarray:
        lv = levels[i]
        if lv.reuse_from is not None:
            base = stored[lv.reuse_from]
            assert base is not None
            return base
        if lv.base is not None:
            s = stored[lv.base]
            assert s is not None
            intersect_with = lv.extra_deps
            subtract = lv.extra_anti
        else:
            s = neighbors(embedding[lv.deps[0]])
            intersect_with = lv.deps[1:]
            subtract = lv.anti_deps
        for p in intersect_with:
            other = neighbors(embedding[p])
            out = intersect_sorted(s, other)
            stats.record("set_int", int(s.size), int(other.size),
                         int(out.size))
            s = out
        for p in subtract:
            other = neighbors(embedding[p])
            out = difference_sorted(s, other)
            stats.record("set_diff", int(s.size), int(other.size),
                         int(out.size))
            s = out
        return s

    def recurse(i: int) -> Iterator[tuple[int, ...]]:
        stats.tasks += 1
        stats.per_level_tasks[i - 1] += 1
        raw = candidates(i)
        stored[i] = raw
        filt = apply_filters(raw, levels[i], embedding, vertex_labels)
        if i == stop_level:
            if collection == "enumerate":
                for v in filt:
                    embedding[i] = int(v)
                    yield tuple(embedding)
                    stats.embeddings += 1
            elif collection == "count_last":
                stats.embeddings += int(filt.size)
            else:  # choose2
                a = int(filt.size)
                stats.embeddings += a * (a - 1) // 2
            return
        for v in filt:
            embedding[i] = int(v)
            yield from recurse(i + 1)

    for root in range(graph.num_vertices):
        if (
            root_label is not None
            and vertex_labels is not None
            and int(vertex_labels[root]) != root_label
        ):
            continue
        embedding[0] = root
        stored[0] = None
        yield from recurse(1)


def count_embeddings(
    graph: CSRGraph, plan: MatchingPlan
) -> ExecutionStats:
    """Count pattern embeddings of ``plan`` in ``graph``; returns statistics.

    The returned :class:`ExecutionStats` carries the final count in
    ``embeddings`` alongside the operation aggregates.
    """
    stats = ExecutionStats()
    if plan.collection == "enumerate":
        for _ in _run(graph, plan, stats):
            pass
    else:
        for _ in _run(graph, plan, stats):  # generator yields nothing
            pass
    return stats


def enumerate_embeddings(
    graph: CSRGraph, plan: MatchingPlan
) -> Iterator[tuple[int, ...]]:
    """Yield every (restriction-canonical) embedding as a vertex tuple.

    Requires a plan built with ``collection="enumerate"``.
    """
    if plan.collection != "enumerate":
        raise PlanError(
            "enumerate_embeddings needs a plan with collection='enumerate'"
        )
    stats = ExecutionStats()
    yield from _run(graph, plan, stats)
