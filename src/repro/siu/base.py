"""Common interface of SIU cycle-cost models.

The event-driven simulator computes every candidate set *functionally* with
NumPy and asks an :class:`SIUCostModel` what the operation would have cost on
the modelled hardware.  Cost models work on *word streams*: under BitmapCSR
with width ``b`` a sorted vertex set of length ``n`` becomes one word per
distinct ``v // b`` block.  Each model's formulas are cross-validated against
the exact element-level pipelines in :mod:`repro.setops`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..setops.reference import intersect_count

__all__ = ["OpCost", "SIUCostModel", "block_keys", "consumed_extents", "merge_boundaries"]


@dataclass(frozen=True)
class OpCost:
    """Cycle cost of one set operation on one SIU.

    ``issue_cycles`` is how long the unit is occupied; ``pipeline_depth``
    is the additional fill latency; ``comparisons`` drives dynamic power.
    """

    issue_cycles: int
    pipeline_depth: int
    comparisons: int
    words_in: int
    words_out: int

    @property
    def total_cycles(self) -> int:
        return self.issue_cycles + self.pipeline_depth


def block_keys(vertices: np.ndarray, bitmap_width: int) -> np.ndarray:
    """Word-stream keys of a sorted vertex set under BitmapCSR.

    With ``bitmap_width == 0`` keys are the vertices themselves; otherwise
    they are the distinct block indices, one per emitted word.
    """
    v = np.asarray(vertices)
    if bitmap_width == 0 or v.size == 0:
        return v
    blocks = v // bitmap_width
    keep = np.empty(blocks.size, dtype=bool)
    keep[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
    return blocks[keep]


def consumed_extents(ka: np.ndarray, kb: np.ndarray) -> tuple[int, int]:
    """Elements consumed before each stream exhausts under tagged-merge order.

    ``c_a`` counts union elements consumed when stream A's last element
    leaves (A's own elements plus every B element strictly before it — ties
    sort L before R); ``c_b`` symmetrically includes equal-key A elements.
    These drive the order-aware SIU's early-termination cycle counts.
    """
    if ka.size == 0 or kb.size == 0:
        return int(ka.size), int(kb.size)
    c_a = int(ka.size) + int(np.searchsorted(kb, ka[-1], side="left"))
    c_b = int(kb.size) + int(np.searchsorted(ka, kb[-1], side="right"))
    return c_a, c_b


def merge_boundaries(
    ka: np.ndarray, kb: np.ndarray
) -> tuple[int, int, int]:
    """Merge-walk extents ``(i_end, j_end, matches)`` of two key streams.

    A two-pointer merge consumes ``i_end`` keys of ``a`` and ``j_end`` keys
    of ``b`` before one side exhausts; ``matches`` keys coincide.  These
    three numbers determine the exact step count of a merge-queue SIU and
    the segment-advance count of a systolic array.
    """
    if ka.size == 0 or kb.size == 0:
        return 0, 0, 0
    lim = min(int(ka[-1]), int(kb[-1]))
    i_end = int(np.searchsorted(ka, lim, side="right"))
    j_end = int(np.searchsorted(kb, lim, side="right"))
    matches = intersect_count(ka[:i_end], kb[:j_end])
    return i_end, j_end, matches


class SIUCostModel(ABC):
    """Cycle/area characteristics of one set-intersection unit design."""

    #: short architecture name used in reports ("order-aware", "merge", "sma")
    name: str = "siu"
    #: whether independent operations can overlap in the pipeline.  The
    #: feed-forward bitonic network accepts a new operation every cycle;
    #: a systolic merge array must drain between unrelated set pairs.
    pipelined_across_ops: bool = True

    def __init__(self, segment_width: int = 8, bitmap_width: int = 0) -> None:
        self.segment_width = segment_width
        self.bitmap_width = bitmap_width

    @property
    @abstractmethod
    def pipeline_depth(self) -> int:
        """Pipeline fill latency in cycles."""

    @property
    @abstractmethod
    def comparator_count(self) -> int:
        """Comparators instantiated (Table 1's resource column)."""

    @property
    @abstractmethod
    def throughput(self) -> int:
        """Peak elements consumed per cycle (Table 1's throughput column)."""

    @abstractmethod
    def cost_terms(
        self,
        wa: int,
        wb: int,
        i_end: int,
        j_end: int,
        matches: int,
        op: str,
        c_a: int | None = None,
        c_b: int | None = None,
    ) -> OpCost:
        """Cost from pre-computed word-stream lengths and merge boundaries.

        ``wa``/``wb`` are input stream lengths in words; ``i_end``/``j_end``
        and ``matches`` come from :func:`merge_boundaries` (or the
        simulator's equivalent derived from the functional result);
        ``c_a``/``c_b`` are the :func:`consumed_extents` (optional — models
        that need them fall back to ``i_end + j_end``).
        ``op`` ∈ {set_int, set_diff}.
        """

    def op_cost(
        self, a_vertices: np.ndarray, b_vertices: np.ndarray, op: str
    ) -> OpCost:
        """Cost of ``op`` on two sorted vertex sets (exact word streams)."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def _streams(
        self, a_vertices: np.ndarray, b_vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return (
            block_keys(a_vertices, self.bitmap_width),
            block_keys(b_vertices, self.bitmap_width),
        )

    def describe(self) -> str:
        return (
            f"{self.name}(N={self.segment_width}, b={self.bitmap_width}): "
            f"throughput={self.throughput}/cyc, depth={self.pipeline_depth}, "
            f"comparators={self.comparator_count}"
        )
