"""Analytic cycle-cost models of the three SIU microarchitectures.

Formulas mirror the exact pipelines in :mod:`repro.setops` (tests assert
agreement): the order-aware unit drains both streams at ``N`` words/cycle
through a ``2 + 2·log2 N`` deep pipeline; the merge queue walks one
comparison per cycle; the systolic merge array advances one ``N``-segment
per cycle through a ``2N``-deep array with ``N²`` comparators.

Two entry points exist per model: :meth:`SIUCostModel.op_cost` computes the
exact word-level boundaries from the vertex arrays (used by tests and small
studies), while :meth:`cost_terms` takes pre-computed stream lengths and
merge boundaries — the hot path the event-driven simulator uses, since it
already knows the functional result.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError
from .base import OpCost, SIUCostModel, consumed_extents, merge_boundaries

__all__ = ["OrderAwareSIU", "MergeQueueSIU", "SystolicSIU", "make_siu"]


def _check_op(op: str) -> None:
    if op not in ("set_int", "set_diff"):
        raise ConfigError(f"unknown set operation {op!r}")


class _WordCostMixin:
    """Shared exact-path plumbing: vertex arrays → word-level boundaries."""

    def op_cost(self, a_vertices, b_vertices, op: str) -> OpCost:
        _check_op(op)
        ka, kb = self._streams(a_vertices, b_vertices)
        i_end, j_end, matches = merge_boundaries(ka, kb)
        c_a, c_b = consumed_extents(ka, kb)
        return self.cost_terms(
            int(ka.size), int(kb.size), i_end, j_end, matches, op,
            c_a=c_a, c_b=c_b,
        )


class OrderAwareSIU(_WordCostMixin, SIUCostModel):
    """X-SET's order-aware SIU: bitonic merger + match-flag merge stage."""

    name = "order-aware"

    def __init__(self, segment_width: int = 8, bitmap_width: int = 0) -> None:
        if segment_width < 2 or segment_width & (segment_width - 1):
            raise ConfigError("segment_width must be a power of two >= 2")
        super().__init__(segment_width, bitmap_width)
        self._log_n = int(math.log2(segment_width))
        self._cmp_per_cycle = (
            segment_width + (segment_width // 2) * self._log_n + 1
        )

    @property
    def pipeline_depth(self) -> int:
        return 2 + 2 * self._log_n  # MIN + CAS·logN + Merge + Compact·logN

    @property
    def comparator_count(self) -> int:
        return self._cmp_per_cycle

    @property
    def throughput(self) -> int:
        return self.segment_width

    @property
    def compact_resource(self) -> int:
        """Binary-tree compactor: N·log2 N (paper §5.4.2)."""
        return self.segment_width * self._log_n

    def cost_terms(
        self, wa: int, wb: int, i_end: int, j_end: int, matches: int,
        op: str, c_a: int | None = None, c_b: int | None = None,
    ) -> OpCost:
        n = self.segment_width
        if c_a is None or c_b is None:
            c_a, c_b = wa + j_end, wb + i_end  # drain approximation
        # intersection stops as soon as either stream exhausts; difference
        # must drain all of A (B stops contributing once A is done)
        if op == "set_int":
            consumed = min(c_a, c_b) if (wa and wb) else 0
            out = matches
        else:
            consumed = c_a
            out = wa
        issue = (consumed + n - 1) // n
        return OpCost(
            issue_cycles=issue,
            pipeline_depth=self.pipeline_depth,
            comparisons=issue * self._cmp_per_cycle,
            words_in=wa + wb,
            words_out=out,
        )


class MergeQueueSIU(_WordCostMixin, SIUCostModel):
    """Single-comparator sequential merge queue (FlexMiner/FINGERS)."""

    name = "merge"

    def __init__(self, segment_width: int = 1, bitmap_width: int = 0) -> None:
        super().__init__(1, bitmap_width)

    pipeline_depth = 2
    comparator_count = 1
    throughput = 1

    def cost_terms(
        self, wa: int, wb: int, i_end: int, j_end: int, matches: int,
        op: str, c_a: int | None = None, c_b: int | None = None,
    ) -> OpCost:
        if op == "set_int":
            issue = i_end + j_end - matches
            out = matches
        else:
            issue = wa + j_end - matches
            out = wa
        issue = max(issue, 0)
        return OpCost(
            issue_cycles=issue,
            pipeline_depth=self.pipeline_depth,
            comparisons=issue,
            words_in=wa + wb,
            words_out=out,
        )


class SystolicSIU(_WordCostMixin, SIUCostModel):
    """DIMMining's systolic merge array: N²-comparator all-to-all segments."""

    name = "sma"
    # the array holds per-pair comparison state: it must fill and drain for
    # every operation, so independent ops cannot overlap (paper §7.4.1's
    # "higher setup latency")
    pipelined_across_ops = False

    def __init__(self, segment_width: int = 8, bitmap_width: int = 0) -> None:
        if segment_width < 2 or segment_width & (segment_width - 1):
            raise ConfigError("segment_width must be a power of two >= 2")
        super().__init__(segment_width, bitmap_width)

    @property
    def pipeline_depth(self) -> int:
        return 2 * self.segment_width

    @property
    def comparator_count(self) -> int:
        return self.segment_width**2

    @property
    def throughput(self) -> int:
        return self.segment_width

    @property
    def compact_resource(self) -> int:
        """Output compact triangle: N²/2 (paper §5.4.2)."""
        return self.segment_width**2 // 2

    def cost_terms(
        self, wa: int, wb: int, i_end: int, j_end: int, matches: int,
        op: str, c_a: int | None = None, c_b: int | None = None,
    ) -> OpCost:
        n = self.segment_width
        # one resident segment enters/retires per cycle
        issue = (i_end + n - 1) // n + (j_end + n - 1) // n
        out = matches
        if op == "set_diff":
            issue += (wa - i_end + n - 1) // n
            out = wa
        if wa and wb:
            issue = max(issue, 1)
        return OpCost(
            issue_cycles=issue,
            pipeline_depth=self.pipeline_depth,
            comparisons=issue * n * n,
            words_in=wa + wb,
            words_out=out,
        )


_SIU_KINDS = {
    "order-aware": OrderAwareSIU,
    "merge": MergeQueueSIU,
    "sma": SystolicSIU,
}


def make_siu(
    kind: str, segment_width: int = 8, bitmap_width: int = 0
) -> SIUCostModel:
    """Factory for SIU cost models by architecture name."""
    try:
        cls = _SIU_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown SIU kind {kind!r}; choose from {sorted(_SIU_KINDS)}"
        ) from None
    return cls(segment_width=segment_width, bitmap_width=bitmap_width)
