"""SIU cycle-cost models and hardware inventories."""

from .base import OpCost, SIUCostModel, block_keys, merge_boundaries
from .models import MergeQueueSIU, OrderAwareSIU, SystolicSIU, make_siu

__all__ = [
    "MergeQueueSIU",
    "OpCost",
    "OrderAwareSIU",
    "SIUCostModel",
    "SystolicSIU",
    "block_keys",
    "make_siu",
    "merge_boundaries",
]
