"""Cross-validation of the fast simulator against exact pipeline models.

The paper validates its fast SystemC simulator against RTL simulation on
small test cases (§7.1.1).  This module replays the same methodology one
level up: an :class:`ExactTaskExecutor` executes every task by *streaming
the actual word sequences through the element-level pipeline models* of
:mod:`repro.setops` (the "RTL" of this reproduction), while the production
:class:`~repro.sim.hwexec.HardwareTaskExecutor` uses the analytic cost
formulas.  :func:`cross_validate` runs a workload through both and reports
the cycle-count discrepancy, which tests pin to a small tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import SystemConfig
from ..graph import bitmapcsr
from ..graph.csr import CSRGraph
from ..patterns.plan import MatchingPlan
from ..setops.bitonic import OrderAwarePipeline
from ..setops.merge_queue import MergeQueuePipeline
from ..setops.systolic import SystolicMergeArray
from .accelerator import AcceleratorSim
from .hwexec import HardwareTaskExecutor, TaskOutcome

__all__ = ["ExactTaskExecutor", "CrossValidation", "cross_validate"]


def _exact_pipeline(config: SystemConfig):
    if config.siu_kind == "order-aware":
        return OrderAwarePipeline(config.segment_width, config.bitmap_width)
    if config.siu_kind == "sma":
        return SystolicMergeArray(config.segment_width, config.bitmap_width)
    return MergeQueuePipeline(config.bitmap_width)


class ExactTaskExecutor(HardwareTaskExecutor):
    """Task executor whose per-op cycle counts come from the exact pipelines.

    Much slower than the analytic executor (it materialises BitmapCSR word
    streams and walks them element by element), so it is reserved for
    validation on small graphs.
    """

    def __init__(self, graph, plan, siu, memory, config: SystemConfig,
                 task_overhead_cycles: int = 0) -> None:
        super().__init__(graph, plan, siu, memory,
                         task_overhead_cycles=task_overhead_cycles)
        self._pipe = _exact_pipeline(config)
        #: cumulative exact issue cycles measured op by op
        self.exact_issue_cycles = 0

    def execute(self, task, pe: int, now: float) -> TaskOutcome:
        # run the analytic path for the simulation itself...
        outcome = super().execute(task, pe, now)
        # ...then replay every op of this task through the exact pipeline
        lv = self.plan.levels[task.level]
        if lv.reuse_from is not None:
            return outcome
        emb = task.embedding
        if lv.base is not None:
            s = task.ancestor(lv.base).raw_set
            ops = [("intersect", p) for p in lv.extra_deps] + [
                ("difference", p) for p in lv.extra_anti
            ]
        else:
            s = self.graph.neighbors(emb[lv.deps[0]])
            ops = [("intersect", p) for p in lv.deps[1:]] + [
                ("difference", p) for p in lv.anti_deps
            ]
        width = self._width
        for exop, p in ops:
            b = self.graph.neighbors(emb[p])
            aw = bitmapcsr.encode(np.asarray(s, dtype=np.int64), width)
            bw = bitmapcsr.encode(np.asarray(b, dtype=np.int64), width)
            trace = self._pipe.run(aw, bw, exop)
            self.exact_issue_cycles += trace.issue_cycles
            s = bitmapcsr.decode(trace.result, width)
        return outcome


@dataclass(frozen=True)
class CrossValidation:
    """Result of one fast-vs-exact comparison."""

    analytic_cycles: float
    exact_issue_cycles: int
    analytic_comparisons: int
    embeddings_match: bool
    relative_issue_error: float


def cross_validate(
    graph: CSRGraph, plan: MatchingPlan, config: SystemConfig
) -> CrossValidation:
    """Run one workload through both executors and compare.

    The comparison metric is total *issue cycles* across all set operations
    — the quantity the analytic formulas approximate.  Memory timing and
    scheduling are identical in both runs by construction.
    """
    # analytic run
    sim = AcceleratorSim(graph, plan, config)
    report = sim.run()

    # exact replay
    from ..memory.hierarchy import MemoryHierarchy
    from ..siu.models import make_siu

    memory = MemoryHierarchy(config.memory_config())
    siu = make_siu(config.siu_kind, config.segment_width,
                   config.bitmap_width)
    exact = ExactTaskExecutor(
        graph, plan, siu, memory, config,
        task_overhead_cycles=config.task_overhead_cycles,
    )
    sim2 = AcceleratorSim(graph, plan, config)
    sim2.executor = exact
    report2 = sim2.run()

    # recompute analytic issue cycles from the cost model for the same ops
    analytic_issue = _analytic_issue_cycles(graph, plan, config)
    err = (
        abs(analytic_issue - exact.exact_issue_cycles)
        / max(exact.exact_issue_cycles, 1)
    )
    return CrossValidation(
        analytic_cycles=report.cycles,
        exact_issue_cycles=exact.exact_issue_cycles,
        analytic_comparisons=report.comparisons,
        embeddings_match=report.embeddings == report2.embeddings,
        relative_issue_error=err,
    )


def _analytic_issue_cycles(
    graph: CSRGraph, plan: MatchingPlan, config: SystemConfig
) -> int:
    """Total analytic issue cycles over every op of the workload."""
    from ..siu.base import consumed_extents, merge_boundaries
    from ..siu.models import make_siu

    siu = make_siu(config.siu_kind, config.segment_width,
                   config.bitmap_width)
    total = 0

    from ..patterns.executor import apply_filters
    from ..setops.reference import difference_sorted, intersect_sorted

    levels = plan.levels
    stop = {
        "enumerate": plan.depth - 1,
        "count_last": plan.depth - 1,
        "choose2": plan.depth - 2,
    }[plan.collection]
    embedding = [0] * plan.depth
    stored: list[np.ndarray | None] = [None] * plan.depth

    def candidates(i: int) -> np.ndarray:
        nonlocal total
        lv = levels[i]
        if lv.reuse_from is not None:
            base = stored[lv.reuse_from]
            assert base is not None
            return base
        if lv.base is not None:
            s = stored[lv.base]
            assert s is not None
            ints, subs = lv.extra_deps, lv.extra_anti
        else:
            s = graph.neighbors(embedding[lv.deps[0]])
            ints, subs = lv.deps[1:], lv.anti_deps
        for kind, p in [("set_int", q) for q in ints] + [
            ("set_diff", q) for q in subs
        ]:
            b = graph.neighbors(embedding[p])
            ka, kb = siu._streams(s, b)
            i_end, j_end, matches = merge_boundaries(ka, kb)
            c_a, c_b = consumed_extents(ka, kb)
            cost = siu.cost_terms(
                int(ka.size), int(kb.size), i_end, j_end, matches, kind,
                c_a=c_a, c_b=c_b,
            )
            total += cost.issue_cycles
            s = (
                intersect_sorted(s, b)
                if kind == "set_int"
                else difference_sorted(s, b)
            )
        return s

    def recurse(i: int) -> None:
        raw = candidates(i)
        stored[i] = raw
        if i == stop:
            return
        for v in apply_filters(raw, levels[i], embedding, graph.labels):
            embedding[i] = int(v)
            recurse(i + 1)

    root_label = levels[0].label
    for root in range(graph.num_vertices):
        if (
            root_label is not None
            and graph.labels is not None
            and int(graph.labels[root]) != root_label
        ):
            continue
        embedding[0] = root
        recurse(1)
    return total
