"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profile import ExecutionProfile

__all__ = ["SimReport"]


@dataclass
class SimReport:
    """Outcome of one accelerator simulation run.

    ``cycles`` is the simulated makespan; ``seconds`` converts at the
    configured clock.  Functional results (``embeddings``) are exact and are
    cross-checked against the software reference executor in tests.
    """

    config_name: str = ""
    graph_name: str = ""
    pattern_name: str = ""
    cycles: float = 0.0
    frequency_ghz: float = 1.0
    embeddings: int = 0
    tasks: int = 0
    set_ops: int = 0
    comparisons: int = 0
    words_in: int = 0
    words_out: int = 0
    siu_busy_cycles: float = 0.0
    num_sius: int = 1
    host_cycles: float = 0.0
    private_hits: int = 0
    private_misses: int = 0
    shared_hits: int = 0
    shared_misses: int = 0
    dram_bytes: int = 0
    peak_active_task_sets: int = 0
    per_pe_busy: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: execution profile attached when the run was observed
    #: (:mod:`repro.obs`); None on unobserved runs, excluded from equality
    profile: "ExecutionProfile | None" = field(
        default=None, repr=False, compare=False
    )
    #: side-channel annotations from the worker path (injected-fault
    #: events, cross-check outcomes); excluded from equality so resilience
    #: bookkeeping never perturbs report comparisons
    notes: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def seconds(self) -> float:
        """Simulated end-to-end time (accelerator + host share the clock)."""
        return (self.cycles + self.host_cycles) / (self.frequency_ghz * 1e9)

    @property
    def siu_utilization(self) -> float:
        """Mean busy fraction across every SIU in the system."""
        if self.cycles <= 0 or self.num_sius == 0:
            return 0.0
        return self.siu_busy_cycles / (self.cycles * self.num_sius)

    @property
    def dram_bandwidth_gbps(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.dram_bytes / self.cycles * self.frequency_ghz

    def summary(self) -> str:
        return (
            f"[{self.config_name}] {self.pattern_name} on {self.graph_name}: "
            f"{self.embeddings} embeddings in {self.cycles:.0f} cycles "
            f"({self.seconds * 1e3:.3f} ms @ {self.frequency_ghz} GHz), "
            f"{self.tasks} tasks, SIU util {self.siu_utilization:.1%}, "
            f"DRAM {self.dram_bandwidth_gbps:.1f} GB/s"
        )
