"""Event-driven accelerator simulation: PEs, RoCC interface, host model."""

from .accelerator import AcceleratorSim
from .hwexec import HardwareTaskExecutor, TaskOutcome
from .host import HostModel, run_on_soc
from .report import SimReport
from .rocc import RoCCInstruction, RoCCInterface
from .trace import ActivityTrace, TraceEvent
from .validation import CrossValidation, ExactTaskExecutor, cross_validate

__all__ = [
    "AcceleratorSim",
    "ActivityTrace",
    "TraceEvent",
    "HardwareTaskExecutor",
    "HostModel",
    "RoCCInstruction",
    "RoCCInterface",
    "CrossValidation",
    "ExactTaskExecutor",
    "SimReport",
    "TaskOutcome",
    "cross_validate",
    "run_on_soc",
]
