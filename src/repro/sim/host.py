"""Rocket-core host model: offload flow and over-deep pattern splitting.

The paper's §4.2 highlights two host responsibilities beyond configuration:

* **Result collection** — IEP expressions (e.g. the diamond's ``A(A-1)/2``)
  are evaluated on the RISC-V core; in this model that logic lives in the
  plan's collection mode and the host merely accounts a per-result cost.
* **Arbitrary pattern depth** — when a plan is deeper than the hardware
  scheduler supports, the CPU executes the initial plan levels in software
  and hands the resulting partial embeddings to the PEs as start tasks.

The host's software execution is charged with a simple scalar-merge cost
model (comparisons × cycles-per-comparison at the shared 1 GHz clock), which
is also the primitive the CPU baseline models build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.config import SystemConfig
from ..engine.base import get_engine
from ..obs import context as _obs
from ..graph.csr import CSRGraph
from ..patterns.executor import apply_filters
from ..patterns.plan import MatchingPlan
from ..sched.task import SimTask
from ..setops.reference import (
    difference_sorted,
    intersect_sorted,
    merge_comparison_count,
)
from .report import SimReport
from .rocc import RoCCInterface

__all__ = ["HostModel", "run_on_soc"]

#: host cycles per scalar merge comparison (in-order Rocket pipeline)
HOST_CYCLES_PER_COMPARISON = 2.0
#: host cycles to issue one RoCC instruction
HOST_ROCC_ISSUE_CYCLES = 4.0


@dataclass
class _PrefixResult:
    tasks: list[SimTask]
    host_cycles: float


class HostModel:
    """The Rocket core driving one X-SET accelerator."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.rocc = RoCCInterface(config)

    def _root_vertices(
        self, graph: CSRGraph, plan: MatchingPlan, roots
    ):
        """Label-filtered root vertices (all vertices when ``roots=None``)."""
        candidates = (
            range(graph.num_vertices)
            if roots is None
            else (int(v) for v in roots)
        )
        root_label = plan.levels[0].label
        labels = graph.labels
        if root_label is None or labels is None:
            return candidates
        return (v for v in candidates if int(labels[v]) == root_label)

    def _software_prefix(
        self,
        graph: CSRGraph,
        plan: MatchingPlan,
        hw_start_level: int,
        roots=None,
    ) -> _PrefixResult:
        """Execute plan levels below ``hw_start_level`` on the CPU."""
        cycles = 0.0
        tasks: list[SimTask] = []
        levels = plan.levels
        neighbors = graph.neighbors

        def expand(task: SimTask) -> None:
            nonlocal cycles
            if task.level == hw_start_level:
                tasks.append(task)
                return
            lv = levels[task.level]
            emb = task.embedding
            if lv.base is not None and lv.base >= 1:
                s = task.ancestor(lv.base).raw_set
                assert s is not None
                ints, subs = lv.extra_deps, lv.extra_anti
            else:
                s = neighbors(emb[lv.deps[0]])
                ints, subs = lv.deps[1:], lv.anti_deps
            for p in ints:
                b = neighbors(emb[p])
                out = intersect_sorted(s, b)
                cycles += HOST_CYCLES_PER_COMPARISON * merge_comparison_count(
                    int(s.size), int(b.size), int(out.size)
                )
                s = out
            for p in subs:
                b = neighbors(emb[p])
                out = difference_sorted(s, b)
                cycles += HOST_CYCLES_PER_COMPARISON * merge_comparison_count(
                    int(s.size), int(b.size), int(s.size) - int(out.size)
                )
                s = out
            task.raw_set = s
            task.raw_words = int(s.size)
            for v in apply_filters(s, lv, emb, graph.labels):
                expand(SimTask(level=task.level + 1, vertex=int(v),
                               parent=task))

        for root in self._root_vertices(graph, plan, roots):
            expand(SimTask(level=1, vertex=root, parent=None))
        return _PrefixResult(tasks=tasks, host_cycles=cycles)

    def run(
        self, graph: CSRGraph, plan: MatchingPlan, roots=None
    ) -> SimReport:
        """Full offload flow: configure → (prefix) → run → poll.

        ``roots`` restricts matching to search trees rooted at the given
        data vertices (used by the cluster layer's per-shard subqueries);
        the default ``None`` roots one tree per (label-valid) vertex.
        """
        self.rocc.config_graph(graph)
        self.rocc.config_tasklist(plan)
        host_cycles = 3 * HOST_ROCC_ISSUE_CYCLES
        start_tasks = None
        stop_level = plan.stop_level
        if stop_level > self.config.max_hw_levels:
            hw_start = stop_level - self.config.max_hw_levels + 1
            t0 = perf_counter()
            with _obs.span("host.prefix", hw_start_level=hw_start):
                prefix = self._software_prefix(graph, plan, hw_start, roots)
            ob = _obs.current()
            if ob is not None:
                ob.add_stage("host_prefix", perf_counter() - t0)
            start_tasks = prefix.tasks
            host_cycles += prefix.host_cycles
        elif roots is not None:
            start_tasks = [
                SimTask(level=1, vertex=v, parent=None)
                for v in self._root_vertices(graph, plan, roots)
            ]
        self.rocc.run(start_tasks=start_tasks)
        report = self.rocc.poll()
        report.host_cycles += host_cycles
        return report


def run_on_soc(
    graph: CSRGraph,
    plan: MatchingPlan,
    config: SystemConfig,
    roots: np.ndarray | None = None,
) -> SimReport:
    """Run a workload on the configured execution engine.

    ``config.engine`` selects the backend: the default ``event`` engine is
    the full SoC flow (host + RoCC + event-driven accelerator simulation);
    ``batched`` runs the vectorised frontier engine with analytic timing.
    ``engine="auto"`` resolves here to the static fastest-first preference
    (codegen > batched > event) — the query service resolves auto earlier,
    per query, against its live cost predictor and breaker board.
    ``roots`` optionally restricts matching to the given root vertices
    (every engine supports it; the cluster layer's per-shard subqueries
    are built on exactly this).
    """
    engine = config.engine
    if engine == "auto":
        from ..sched.adaptive.selector import auto_engine

        engine = auto_engine()
        # ship the resolved backend downstream: engines and reports must
        # never see the "auto" sentinel
        config = config.with_overrides(engine=engine)
    if roots is None:
        return get_engine(engine).run(graph, plan, config)
    return get_engine(engine).run(graph, plan, config, roots=roots)
