"""RoCC co-processor interface model (paper §4.2, Figure 7).

X-SET integrates into a Rocket-based SoC through the RoCC instruction
extension; the host CPU configures the PE, launches execution and polls for
results.  This module models that contract: a :class:`RoCCInterface` accepts
the custom instructions in order, validates the protocol (you cannot run
before configuring, poll before running, ...), records an instruction trace
and drives the accelerator simulator underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from ..core.config import SystemConfig
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..patterns.plan import MatchingPlan
from .accelerator import AcceleratorSim
from .report import SimReport

__all__ = ["RoCCInstruction", "RoCCInterface"]


class RoCCInstruction(Enum):
    """The xset_* custom instruction set of Figure 7a."""

    XSET_CONFIG_GRAPH = auto()     # ③ configure data-graph base/CSR layout
    XSET_CONFIG_TASKLIST = auto()  # ③ load the compiled task list
    XSET_RUN = auto()              # ④ start; operand = maximum root vertex
    XSET_POLL = auto()             # ⑤ retrieve result / completion flag


@dataclass
class _TraceEntry:
    instruction: RoCCInstruction
    operand: int


class RoCCInterface:
    """Instruction-level wrapper over the accelerator simulator."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.trace: list[_TraceEntry] = []
        self._graph: CSRGraph | None = None
        self._plan: MatchingPlan | None = None
        self._report: SimReport | None = None

    def _log(self, instr: RoCCInstruction, operand: int = 0) -> None:
        self.trace.append(_TraceEntry(instr, operand))

    def config_graph(self, graph: CSRGraph) -> None:
        """``xset_config`` for the data graph (stage ③)."""
        self._log(RoCCInstruction.XSET_CONFIG_GRAPH, graph.base_address)
        self._graph = graph
        self._report = None

    def config_tasklist(self, plan: MatchingPlan) -> None:
        """``xset_config`` for the compiled task list (stage ③)."""
        if self._graph is None:
            raise SimulationError("configure the graph before the task list")
        self._log(RoCCInstruction.XSET_CONFIG_TASKLIST, plan.depth)
        self._plan = plan
        self._report = None

    def run(self, max_vertex: int | None = None, start_tasks=None) -> None:
        """``xset_run`` (stage ④): launch GPM over roots ≤ ``max_vertex``."""
        if self._graph is None or self._plan is None:
            raise SimulationError("xset_run before configuration")
        self._log(
            RoCCInstruction.XSET_RUN,
            max_vertex if max_vertex is not None else self._graph.num_vertices,
        )
        graph = self._graph
        if max_vertex is not None and start_tasks is None:
            from ..sched.task import SimTask

            start_tasks = [
                SimTask(level=1, vertex=v, parent=None)
                for v in range(min(max_vertex, graph.num_vertices))
            ]
        sim = AcceleratorSim(graph, self._plan, self.config)
        self._report = sim.run(start_tasks)

    def poll(self) -> SimReport:
        """``xset_poll`` (stage ⑤): retrieve the completed run's report."""
        self._log(RoCCInstruction.XSET_POLL)
        if self._report is None:
            raise SimulationError("xset_poll before xset_run completed")
        return self._report
