"""Activity tracing: per-task execution spans and utilisation timelines.

When enabled, the simulator records one :class:`TraceEvent` per executed
task.  The trace supports the analyses an architecture paper leans on —
utilisation-over-time curves (how well the barrier-free scheduler keeps the
SIUs fed), per-level work distribution, and a terminal-friendly Gantt
rendering for small runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceEvent", "ActivityTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One task's execution span on one PE."""

    pe: int
    level: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ActivityTrace:
    """Collected execution spans of one simulation run."""

    num_pes: int
    sius_per_pe: int
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, pe: int, level: int, start: float, end: float) -> None:
        self.events.append(TraceEvent(pe=pe, level=level, start=start,
                                      end=end))

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def utilization_timeline(self, bins: int = 50) -> np.ndarray:
        """Mean busy fraction of all SIUs per time bin."""
        span = self.makespan
        if span <= 0 or not self.events:
            return np.zeros(bins)
        busy = np.zeros(bins)
        width = span / bins
        for e in self.events:
            first = int(e.start / width)
            last = min(int(e.end / width), bins - 1)
            for b in range(first, last + 1):
                lo = max(e.start, b * width)
                hi = min(e.end, (b + 1) * width)
                busy[b] += max(hi - lo, 0.0)
        capacity = width * self.num_pes * self.sius_per_pe
        return np.clip(busy / capacity, 0.0, 1.0)

    def level_histogram(self) -> dict[int, int]:
        """Number of executed tasks per search-tree level."""
        out: dict[int, int] = {}
        for e in self.events:
            out[e.level] = out.get(e.level, 0) + 1
        return dict(sorted(out.items()))

    def level_busy_cycles(self) -> dict[int, float]:
        """Total execution time attributed to each level."""
        out: dict[int, float] = {}
        for e in self.events:
            out[e.level] = out.get(e.level, 0.0) + e.duration
        return dict(sorted(out.items()))

    def utilization_ascii(self, bins: int = 60, height: int = 8) -> str:
        """Terminal sparkline of SIU utilisation over time."""
        timeline = self.utilization_timeline(bins)
        rows = []
        for h in range(height, 0, -1):
            threshold = h / height
            row = "".join(
                "█" if u >= threshold else " " for u in timeline
            )
            rows.append(f"{threshold:4.0%} |{row}|")
        rows.append("      " + "-" * (bins + 1))
        rows.append(f"      0 .. {self.makespan:.0f} cycles")
        return "\n".join(rows)

    def gantt_ascii(self, width: int = 80, max_pes: int = 8) -> str:
        """Per-PE occupancy chart (how many tasks overlap per time slot)."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        marks = " .:-=+*#%@"
        lines = []
        for pe in range(min(self.num_pes, max_pes)):
            slots = np.zeros(width)
            for e in self.events:
                if e.pe != pe:
                    continue
                first = int(e.start / span * (width - 1))
                last = int(e.end / span * (width - 1))
                slots[first : last + 1] += 1
            line = "".join(
                marks[min(int(s), len(marks) - 1)] for s in slots
            )
            lines.append(f"PE{pe:<3}|{line}|")
        return "\n".join(lines)
