"""Event-driven multi-PE accelerator simulator (paper §7.1 methodology).

The simulator advances a heap of task-completion events.  Each PE owns a
scheduler and ``sius_per_pe`` SIU slots; whenever a slot frees (or new work
arrives) the PE asks its scheduler for the next ready task, executes it
functionally + temporally through :class:`HardwareTaskExecutor`, and commits
the completion back — spawning children, accumulating counts and releasing
the slot.  Memory (private caches, shared cache, DRAM channels) is shared
mutable state, so PEs contend for bandwidth exactly when their events
interleave.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..core.config import SystemConfig
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..memory.hierarchy import MemoryHierarchy
from ..obs import context as _obs
from ..patterns.plan import MatchingPlan
from ..sched.policies import SchedulerBase, make_scheduler
from ..sched.task import SimTask
from ..siu.models import make_siu
from .hwexec import HardwareTaskExecutor
from .report import SimReport
from .trace import ActivityTrace

__all__ = ["AcceleratorSim"]


@dataclass
class _PEState:
    scheduler: SchedulerBase
    free_sius: int
    busy_cycles: float = 0.0
    count: int = 0


class AcceleratorSim:
    """One simulated run of a GPM workload on a configured accelerator."""

    def __init__(
        self,
        graph: CSRGraph,
        plan: MatchingPlan,
        config: SystemConfig,
        collect_trace: bool | None = None,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.config = config
        # default: collect the PE timeline exactly when an observation is
        # active (repro.obs); explicit True/False always wins
        if collect_trace is None:
            collect_trace = _obs.enabled()
        self.trace: ActivityTrace | None = (
            ActivityTrace(config.num_pes, config.sius_per_pe)
            if collect_trace
            else None
        )
        self.memory = MemoryHierarchy(config.memory_config())
        self.siu = make_siu(
            config.siu_kind, config.segment_width, config.bitmap_width
        )
        self.executor = HardwareTaskExecutor(
            graph,
            plan,
            self.siu,
            self.memory,
            task_overhead_cycles=config.task_overhead_cycles,
        )
        self._pes = [
            _PEState(
                scheduler=make_scheduler(
                    config.scheduler, **config.scheduler_kwargs()
                ),
                free_sius=config.sius_per_pe,
            )
            for _ in range(config.num_pes)
        ]

    # -- root distribution ----------------------------------------------------

    def _distribute_roots(
        self, start_tasks: list[SimTask] | None
    ) -> None:
        if start_tasks is None:
            root_label = self.plan.levels[0].label
            labels = self.graph.labels
            start_tasks = [
                SimTask(level=1, vertex=v, parent=None)
                for v in range(self.graph.num_vertices)
                if root_label is None
                or labels is None
                or int(labels[v]) == root_label
            ]
        buckets: list[list[SimTask]] = [[] for _ in self._pes]
        if self.config.root_partition == "degree-balanced":
            # greedy bin packing: heaviest subtrees first, least-loaded PE.
            # Root work is roughly proportional to root degree.
            degrees = self.graph.degrees
            load = [0.0] * len(self._pes)
            for task in sorted(
                start_tasks,
                key=lambda t: -int(degrees[t.vertex])
                if t.vertex < len(degrees)
                else 0,
            ):
                target = min(range(len(load)), key=load.__getitem__)
                buckets[target].append(task)
                load[target] += float(degrees[task.vertex]) + 1.0
        else:
            for i, task in enumerate(start_tasks):
                buckets[i % len(self._pes)].append(task)
        for pe, bucket in zip(self._pes, buckets):
            pe.scheduler.push_roots(bucket)

    # -- main loop ------------------------------------------------------------

    def run(self, start_tasks: list[SimTask] | None = None) -> SimReport:
        """Simulate to completion; returns the metrics report."""
        with _obs.span(
            "sim.accelerator",
            graph=self.graph.name,
            pattern=self.plan.pattern.name,
            pes=self.config.num_pes,
            sius_per_pe=self.config.sius_per_pe,
        ):
            report = self._run(start_tasks)
        ob = _obs.current()
        if ob is not None and self.trace is not None:
            ob.add_activity(self.trace)
        return report

    def _run(self, start_tasks: list[SimTask] | None = None) -> SimReport:
        t_wall = _time.perf_counter()
        self._distribute_roots(start_tasks)
        report = SimReport(
            config_name=self.config.name,
            graph_name=self.graph.name,
            pattern_name=self.plan.pattern.name,
            frequency_ghz=self.config.frequency_ghz,
            num_sius=self.config.num_pes * self.config.sius_per_pe,
        )
        heap: list = []
        seq = 0

        def dispatch(pe_idx: int, now: float) -> None:
            nonlocal seq
            pe = self._pes[pe_idx]
            sched = pe.scheduler
            while pe.free_sius > 0:
                task = sched.pop()
                if task is None:
                    return
                stall = getattr(sched, "pending_stall", 0)
                if stall:
                    sched.pending_stall = 0
                start = now + sched.dispatch_overhead + stall
                outcome = self.executor.execute(task, pe_idx, start)
                finish = start + outcome.elapsed
                release = start + outcome.occupancy
                pe.free_sius -= 1
                pe.busy_cycles += outcome.occupancy
                if self.trace is not None:
                    self.trace.record(pe_idx, task.level, start, finish)
                pe.count += outcome.count_delta
                report.tasks += 1
                report.set_ops += outcome.set_ops
                report.comparisons += outcome.comparisons
                report.words_in += outcome.words_in
                report.words_out += outcome.words_out
                heapq.heappush(
                    heap, (release, seq, "free", pe_idx, None, None)
                )
                seq += 1
                heapq.heappush(
                    heap,
                    (finish, seq, "done", pe_idx, task, outcome.children),
                )
                seq += 1

        now = 0.0
        for pe_idx in range(len(self._pes)):
            dispatch(pe_idx, now)
        while heap:
            when, _, kind, pe_idx, task, children = heapq.heappop(heap)
            now = when
            pe = self._pes[pe_idx]
            if kind == "free":
                pe.free_sius += 1
            else:
                pe.scheduler.on_complete(task)
                if children is not None and len(children):
                    kids = [
                        SimTask(
                            level=task.level + 1, vertex=int(v), parent=task
                        )
                        for v in children
                    ]
                    pe.scheduler.push_children(task, kids)
            dispatch(pe_idx, now)

        for pe in self._pes:
            if not pe.scheduler.drained:
                raise SimulationError(
                    "scheduler finished with work outstanding — "
                    "dependency tracking bug"
                )

        report.cycles = now
        report.embeddings = sum(pe.count for pe in self._pes)
        report.siu_busy_cycles = sum(pe.busy_cycles for pe in self._pes)
        report.per_pe_busy = [pe.busy_cycles for pe in self._pes]
        report.peak_active_task_sets = max(
            (
                getattr(pe.scheduler, "peak_active_sets", 0)
                for pe in self._pes
            ),
            default=0,
        )
        for cache in self.memory.private:
            report.private_hits += cache.stats.hits
            report.private_misses += cache.stats.misses
        report.shared_hits = self.memory.shared.stats.hits
        report.shared_misses = self.memory.shared.stats.misses
        report.dram_bytes = self.memory.dram.stats.bytes_transferred
        report.wall_seconds = _time.perf_counter() - t_wall
        return report
