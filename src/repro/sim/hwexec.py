"""Hardware task execution: functional result + cycle cost of one task.

Each task computes the candidate set for one level of the matching plan.
Since the engine-layer refactor this module is a thin composition of the two
layers in :mod:`repro.engine`:

* the **functional layer** (:func:`repro.engine.functional.expand_task`)
  computes the exact candidate set with the NumPy reference kernels;
* the **temporal layer** (:class:`repro.engine.temporal.TaskCostAnnotator`)
  charges the modelled hardware time — SIU cost terms plus memory stream
  timings — against the shared memory hierarchy state.

Word-stream lengths (BitmapCSR words per set) are pre-computed per graph row
and cached per intermediate set, and the merge boundaries the cost formulas
need are derived from the functional result — the simulator never re-derives
what it already knows, which keeps per-task overhead low.

``TASK_DISPATCH_CYCLES``/``TASK_COMMIT_CYCLES`` and :class:`TaskOutcome`
now live in :mod:`repro.engine.temporal`; they are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

import numpy as np

from ..engine.functional import (
    expand_task,
    row_word_counts,
    set_stream_words,
)
from ..engine.temporal import (
    TASK_COMMIT_CYCLES,
    TASK_DISPATCH_CYCLES,
    TaskCostAnnotator,
    TaskOutcome,
)
from ..graph.csr import CSRGraph
from ..memory.hierarchy import MemoryHierarchy
from ..obs import context as _obs
from ..patterns.plan import MatchingPlan
from ..siu.base import SIUCostModel

__all__ = [
    "TASK_COMMIT_CYCLES",
    "TASK_DISPATCH_CYCLES",
    "TaskOutcome",
    "HardwareTaskExecutor",
]


def _row_word_counts(graph: CSRGraph, width: int) -> np.ndarray:
    """BitmapCSR words per neighbour row (compat alias for the engine layer)."""
    return row_word_counts(graph, width)


class HardwareTaskExecutor:
    """Executes tasks functionally while charging modelled hardware time."""

    def __init__(
        self,
        graph: CSRGraph,
        plan: MatchingPlan,
        siu: SIUCostModel,
        memory: MemoryHierarchy,
        task_overhead_cycles: int = 0,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.siu = siu
        self.memory = memory
        self.task_overhead = task_overhead_cycles
        self.stop_level = plan.stop_level
        self._width = siu.bitmap_width
        self._row_words = row_word_counts(graph, self._width)
        self._annotator = TaskCostAnnotator(
            graph,
            siu,
            memory,
            self._row_words,
            task_overhead_cycles=task_overhead_cycles,
        )
        # guarded hot-path hook: pinned once at construction so the
        # per-task fast path below is a single None check when disabled
        self._obs = _obs.current()

    def set_words(self, vertices: np.ndarray) -> int:
        """Stream length in BitmapCSR words of an arbitrary sorted set."""
        return set_stream_words(vertices, self._width)

    def execute(self, task, pe: int, now: float) -> TaskOutcome:
        """Run one task on PE ``pe`` starting at time ``now``."""
        expansion = expand_task(self.graph, self.plan, task)
        outcome = self._annotator.annotate(expansion, task, pe, now)
        if self._obs is not None:
            self._obs.level_add(
                task.level,
                tasks=1,
                elements=outcome.words_in,
                comparisons=outcome.comparisons,
            )
        return outcome
