"""Hardware task execution: functional result + cycle cost of one task.

Each task computes the candidate set for one level of the matching plan.
The functional result comes from the NumPy reference kernels (so counts are
exact); the cycle cost combines the configured SIU model's compute cost with
the memory hierarchy's stream timings, mirroring the Order-Aware SIU's
micro-architecture (Figure 8): both input streams are fetched in parallel
through the private cache while the core pipeline consumes them, so one
operation costs ``max(first word latencies) + max(compute issue, memory
occupancy) + pipeline depth``.

Word-stream lengths (BitmapCSR words per set) are pre-computed per graph row
and cached per intermediate set, and the merge boundaries the cost formulas
need are derived from the functional result — the simulator never re-derives
what it already knows, which keeps per-task overhead low.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.hierarchy import MemoryHierarchy
from ..patterns.executor import apply_filters
from ..patterns.plan import MatchingPlan
from ..setops.reference import difference_sorted, intersect_sorted
from ..siu.base import SIUCostModel

__all__ = ["TaskOutcome", "HardwareTaskExecutor"]

#: fixed cycles for task setup (frame read + operation dispatch, Fig. 10e)
TASK_DISPATCH_CYCLES = 2
#: fixed cycles to commit a result back to the task tree
TASK_COMMIT_CYCLES = 1


@dataclass
class TaskOutcome:
    """What executing one task produced.

    ``elapsed`` is the task's completion latency (when its children become
    ready); ``occupancy`` is how long it blocks the SIU — a fully pipelined
    unit frees up while its last operation drains, so the final operation's
    pipeline-depth tail is latency but not occupancy.
    """

    elapsed: float
    occupancy: float
    count_delta: int
    children: np.ndarray  # vertices to spawn at the next level
    set_ops: int
    comparisons: int
    words_in: int
    words_out: int


def _row_word_counts(graph: CSRGraph, width: int) -> np.ndarray:
    """BitmapCSR words per neighbour row, computed in one vectorised pass."""
    if width == 0:
        return graph.degrees.astype(np.int64)
    idx = graph.indices.astype(np.int64) // width
    if idx.size == 0:
        return np.zeros(graph.num_vertices, dtype=np.int64)
    flag = np.ones(idx.size, dtype=np.int64)
    flag[1:] = (idx[1:] != idx[:-1]).astype(np.int64)
    starts = graph.indptr[:-1]
    flag[starts[starts < idx.size]] = 1
    csum = np.concatenate([[0], np.cumsum(flag)])
    return csum[graph.indptr[1:]] - csum[graph.indptr[:-1]]


class HardwareTaskExecutor:
    """Executes tasks functionally while charging modelled hardware time."""

    def __init__(
        self,
        graph: CSRGraph,
        plan: MatchingPlan,
        siu: SIUCostModel,
        memory: MemoryHierarchy,
        task_overhead_cycles: int = 0,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.siu = siu
        self.memory = memory
        self.task_overhead = task_overhead_cycles
        self.stop_level = {
            "enumerate": plan.depth - 1,
            "count_last": plan.depth - 1,
            "choose2": plan.depth - 2,
        }[plan.collection]
        self._width = siu.bitmap_width
        self._row_words = _row_word_counts(graph, self._width)

    def set_words(self, vertices: np.ndarray) -> int:
        """Stream length in BitmapCSR words of an arbitrary sorted set."""
        n = int(vertices.size)
        if self._width == 0 or n == 0:
            return n
        blocks = vertices // self._width
        return 1 + int(np.count_nonzero(blocks[1:] != blocks[:-1]))

    def execute(self, task, pe: int, now: float) -> TaskOutcome:
        """Run one task on PE ``pe`` starting at time ``now``."""
        lv = self.plan.levels[task.level]
        emb = task.embedding
        graph = self.graph
        memory = self.memory
        siu = self.siu
        throughput = siu.throughput
        elapsed = float(TASK_DISPATCH_CYCLES + self.task_overhead)
        tail_depth = 0.0
        set_ops = 0
        comparisons = 0
        words_in = 0
        words_out = 0

        if lv.reuse_from is not None:
            # Candidate set already materialised by an ancestor: stream it
            # back out of the candidate buffer, no SIU computation.
            anc = task.ancestor(lv.reuse_from)
            s = anc.raw_set
            assert s is not None
            w = anc.raw_words
            mem = memory.stream_read(now + elapsed, pe, anc.scratch_addr, w)
            scan = -(-w // throughput)
            elapsed += mem.first_latency + max(scan, mem.stream_cycles)
            words_in += w
        else:
            if lv.base is not None:
                anc = task.ancestor(lv.base)
                s = anc.raw_set
                assert s is not None
                src_addr, src_words = anc.scratch_addr, anc.raw_words
                op_deps, op_antis = lv.extra_deps, lv.extra_anti
            else:
                u = emb[lv.deps[0]]
                s = graph.neighbors(u)
                src_addr = graph.row_address(u)
                src_words = int(self._row_words[u])
                op_deps, op_antis = lv.deps[1:], lv.anti_deps
            mem_a = memory.stream_read(now + elapsed, pe, src_addr, src_words)
            words_in += src_words
            pending_first = mem_a.first_latency
            pending_stream = mem_a.stream_cycles
            wa = src_words
            if not (op_deps or op_antis):
                # pure load: stream the neighbour list through the unit
                scan = -(-src_words // throughput)
                elapsed += pending_first + max(scan, pending_stream)
            for kind, p in (
                *(("set_int", p) for p in op_deps),
                *(("set_diff", p) for p in op_antis),
            ):
                u = emb[p]
                b = graph.neighbors(u)
                wb = int(self._row_words[u])
                mem_b = memory.stream_read(
                    now + elapsed, pe, graph.row_address(u), wb
                )
                words_in += wb
                out = (
                    intersect_sorted(s, b)
                    if kind == "set_int"
                    else difference_sorted(s, b)
                )
                na, nb, nout = int(s.size), int(b.size), int(out.size)
                # merge boundaries at vertex level, scaled to word streams
                if na and nb:
                    lim = min(int(s[-1]), int(b[-1]))
                    i_end = int(s.searchsorted(lim, side="right"))
                    j_end = int(b.searchsorted(lim, side="right"))
                    c_a = na + int(b.searchsorted(int(s[-1]), side="left"))
                    c_b = nb + int(s.searchsorted(int(b[-1]), side="right"))
                    matches = nout if kind == "set_int" else na - nout
                    if self._width:
                        ra, rb = wa / na, wb / nb
                        i_end = min(round(i_end * ra), wa)
                        j_end = min(round(j_end * rb), wb)
                        c_a = wa + min(round((c_a - na) * rb), wb)
                        c_b = wb + min(round((c_b - nb) * ra), wa)
                        matches = min(
                            round(matches * min(ra, rb)), i_end, j_end
                        )
                else:
                    i_end = j_end = matches = 0
                    c_a, c_b = na, nb
                cost = siu.cost_terms(
                    wa, wb, i_end, j_end, matches, kind, c_a=c_a, c_b=c_b
                )
                elapsed += (
                    max(pending_first, mem_b.first_latency)
                    + max(
                        cost.issue_cycles, pending_stream, mem_b.stream_cycles
                    )
                    + cost.pipeline_depth
                )
                tail_depth = (
                    float(cost.pipeline_depth)
                    if siu.pipelined_across_ops
                    else 0.0
                )
                set_ops += 1
                comparisons += cost.comparisons
                s = out
                wa = self.set_words(s)
                # subsequent ops read the previous result from the unit's
                # local buffer: no further memory latency on the A side
                pending_first = 0.0
                pending_stream = 0.0

        filt = apply_filters(s, lv, emb, graph.labels)
        count = 0
        children: np.ndarray = filt[:0]
        if task.level == self.stop_level:
            if self.plan.collection == "choose2":
                a = int(filt.size)
                count = a * (a - 1) // 2
            else:
                count = int(filt.size)
            elapsed += TASK_COMMIT_CYCLES
        else:
            # store the raw candidate set for descendants, spawn children
            task.raw_set = s
            task.raw_words = self.set_words(s)
            if task.raw_words:
                task.scratch_addr = memory.allocate_scratch(
                    pe, task.raw_words
                )
                wr = memory.stream_write(
                    now + elapsed, pe, task.scratch_addr, task.raw_words
                )
                elapsed += wr.stream_cycles
                words_out += task.raw_words
            children = filt
            elapsed += TASK_COMMIT_CYCLES
        return TaskOutcome(
            elapsed=elapsed,
            occupancy=max(elapsed - tail_depth, 1.0),
            count_delta=count,
            children=children,
            set_ops=set_ops,
            comparisons=comparisons,
            words_in=words_in,
            words_out=words_out,
        )
