"""Command-line interface: ``python -m repro <command>``.

Gives the library a shell-level surface mirroring the paper artifact's
``xset_systemc_simulator <dataset> <pattern> [--cfg ...]`` entry point::

    python -m repro count --dataset WV --pattern 3CF --scale 0.25
    python -m repro compare --dataset PP --pattern DIA --scale 0.2
    python -m repro datasets
    python -m repro config
    python -m repro area
    python -m repro plan --pattern DIA
    python -m repro engines
    python -m repro serve --mode process --nodes 60
    python -m repro stats --dataset WV --pattern 3CF
    python -m repro trace --export out.json
    python -m repro health --chaos --prometheus
    python -m repro cluster --shards 4 --kill 2
    python -m repro top --shards 3 --iterations 2
    python -m repro flight --dump

``stats`` and ``health`` accept ``--json`` for machine-readable output.

Pass ``-v``/``-vv`` (or set ``REPRO_LOG=INFO``/``DEBUG``) to surface the
library's log output — worker retries, crashes and job timeouts are
logged rather than printed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

_SYSTEMS = ("xset", "flexminer", "fingers", "shogun")


def _jsonable(obj):
    """Best-effort conversion of report dataclasses to JSON-safe values."""
    import dataclasses
    import enum

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.name.lower()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _config_for(name: str, overrides: dict):
    from .core.config import (
        fingers_config,
        flexminer_config,
        shogun_config,
        xset_default,
    )

    factory = {
        "xset": xset_default,
        "flexminer": flexminer_config,
        "fingers": fingers_config,
        "shogun": shogun_config,
    }[name]
    return factory(**overrides)


def _cmd_count(args: argparse.Namespace) -> int:
    from .core.api import XSetAccelerator
    from .graph.datasets import load_dataset
    from .patterns.pattern import PATTERNS

    overrides = {}
    if args.pes:
        overrides["num_pes"] = args.pes
    if args.sius:
        overrides["sius_per_pe"] = args.sius
    if args.engine:
        overrides["engine"] = args.engine
    config = _config_for(args.system, overrides)
    graph = load_dataset(args.dataset, scale=args.scale)
    accel = XSetAccelerator(config)
    report = accel.count(graph, PATTERNS[args.pattern.upper()])
    print(report.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .baselines.accelerators import compare_accelerators
    from .graph.datasets import load_dataset
    from .patterns.pattern import PATTERNS

    graph = load_dataset(args.dataset, scale=args.scale)
    cmp = compare_accelerators(graph, PATTERNS[args.pattern.upper()])
    flex = cmp.seconds("flexminer")
    print(f"{args.pattern} on {args.dataset} (scale {args.scale}):")
    for system in _SYSTEMS:
        report = cmp.reports[system]
        print(
            f"  {system:<10} {report.cycles:>14.0f} cycles   "
            f"{flex / report.seconds:>6.2f}x vs FlexMiner"
        )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .graph.datasets import dataset_table

    print(f"{'name':<6}{'#nodes':>10}{'#edges':>11}"
          f"{'avg deg':>9}{'max deg':>9}{'skew':>8}")
    for st in dataset_table(scale=args.scale):
        print(
            f"{st.name:<6}{st.num_vertices:>10}{st.num_edges:>11}"
            f"{st.avg_degree:>9.2f}{st.max_degree:>9}{st.skew:>8.2f}"
        )
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    from .core.config import config_table

    print(config_table(_config_for(args.system, {})))
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from .hw.area import pe_area_breakdown

    breakdown = pe_area_breakdown()
    for key, mm2 in breakdown.items():
        print(f"{key:<10}{mm2:>8.3f} mm^2")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from .analysis.reporting import experiment_summary

    print(experiment_summary())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .patterns.pattern import PATTERNS
    from .patterns.plan import build_plan

    print(build_plan(PATTERNS[args.pattern.upper()]).describe())
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from .core.config import SystemConfig
    from .engine import engine_descriptions

    default = SystemConfig().engine
    descriptions = engine_descriptions()
    width = max(len(name) for name in descriptions)
    for name, description in sorted(descriptions.items()):
        marker = "*" if name == default else " "
        print(f"{marker} {name:<{width}}  {description}")
    print("(* = default engine; select with --engine / "
          "SystemConfig(engine=...))")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Demo the query service: a batch of jobs over generated graphs."""
    from .graph.generators import erdos_renyi
    from .patterns.pattern import PATTERNS
    from .service import QueryService

    patterns = [PATTERNS[name] for name in ("3CF", "4CF", "TT", "CYC",
                                            "DIA", "WEDGE", "HOUSE", "C5")]
    graphs = [
        erdos_renyi(args.nodes, args.degree, seed=seed,
                    name=f"er{args.nodes}-{seed}")
        for seed in (11, 23)
    ]
    with QueryService(
        mode=args.mode,
        max_workers=args.workers or None,
    ) as service:
        handles = []
        for graph in graphs:
            gid = service.register_graph(graph)
            handles += [
                service.submit(gid, p, engine=args.engine) for p in patterns
            ]
        # a second wave of identical queries exercises the result cache
        for graph in graphs:
            handles += [
                service.submit(graph.name, p, engine=args.engine)
                for p in patterns
            ]
        for handle in handles:
            report = handle.result(timeout=600)
            origin = "cache" if handle.from_cache else handle.engine
            print(
                f"{handle.pattern_name:<6} on {handle.graph_id:<10} "
                f"{report.embeddings:>10} embeddings   [{origin}]"
            )
        print()
        print(service.stats().summary())
    return 0


def _traced_query(args: argparse.Namespace):
    """Run one query through an inline traced service; returns the service.

    Shared by ``stats`` and ``trace``: the caller reads the profile /
    trace off the returned (still-open) service and must shut it down.
    """
    from .graph.datasets import load_dataset
    from .patterns.pattern import PATTERNS
    from .service import QueryService

    graph = load_dataset(args.dataset, scale=args.scale)
    service = QueryService(mode="inline", observability=True)
    gid = service.register_graph(graph)
    service.count(gid, PATTERNS[args.pattern.upper()], engine=args.engine)
    return service


def _cmd_stats(args: argparse.Namespace) -> int:
    from .analysis.reporting import render_profile

    with _traced_query(args) as service:
        if args.json:
            import json

            print(json.dumps(_jsonable(service.stats()), indent=2,
                             sort_keys=True))
            return 0
        profiles = service.profiles()
        if profiles:
            print(render_profile(profiles[-1]))
            print()
        print(service.stats().summary())
        if args.prometheus:
            print()
            print(service.metrics_text())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    with _traced_query(args) as service:
        events = service.export_trace()
        spans = sum(1 for e in events if e.get("cat") == "span")
        pe = sum(1 for e in events if e.get("cat") == "pe")
        if args.export:
            service.export_trace(args.export)
            print(
                f"wrote {args.export}: {spans} spans, {pe} PE activity "
                f"events (open at https://ui.perfetto.dev)"
            )
        else:
            import json

            print(json.dumps({"traceEvents": events,
                              "displayTimeUnit": "ms"}))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Run a demo workload and print the service's health report.

    With ``--chaos`` the service runs the hardened resilience profile
    (fallback routing, 100% cross-checking, fail-fast breakers) with a
    deterministic seeded fault plan armed — crashes, corrupted counts and
    memory stalls — so the report shows the degradation machinery doing
    its job.  Without it, a clean service reports ``healthy`` across the
    board.
    """
    from .graph.generators import erdos_renyi
    from .patterns.pattern import PATTERNS
    from .resilience import (
        FaultKind,
        FaultPlan,
        FaultSpec,
        ResilienceConfig,
    )
    from .service import QueryService

    resilience = (
        ResilienceConfig.hardened(verify_fraction=1.0)
        if args.chaos
        else ResilienceConfig()
    )
    graph = erdos_renyi(
        args.nodes, args.degree, seed=7, name="health-demo"
    )
    patterns = [PATTERNS[n] for n in ("3CF", "TT", "DIA", "WEDGE", "CYC")]
    with QueryService(mode="inline", resilience=resilience) as service:
        gid = service.register_graph(graph)
        if args.chaos:
            service.arm_faults(FaultPlan(seed=args.seed, specs=(
                FaultSpec(site="worker.run", kind=FaultKind.CRASH,
                          rate=0.4, max_fires=2),
                FaultSpec(site=f"engine.{args.engine}",
                          kind=FaultKind.CORRUPT, rate=0.4, bit=2),
                FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                          rate=0.25, factor=8.0),
            )))
        for pattern in patterns:
            try:
                report = service.count(
                    gid, pattern, engine=args.engine, use_cache=False
                )
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                if not args.json:
                    print(f"{pattern.name:<6} FAILED "
                          f"[{type(exc).__name__}: {exc}]")
            else:
                if args.json:
                    continue
                notes = getattr(report, "notes", {})
                tags = sorted(notes.get("injected", {}))
                if notes.get("crosscheck", {}).get("mismatch"):
                    tags.append("crosscheck-recovered")
                suffix = f"   [{', '.join(tags)}]" if tags else ""
                print(f"{pattern.name:<6} {report.embeddings:>10} "
                      f"embeddings{suffix}")
        if args.json:
            import json

            payload = _jsonable(service.health())
            payload["flight"] = service.flight.counts()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print()
        print(service.health().summary())
        if args.prometheus:
            print()
            print(service.metrics_text())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Demo the sharded query cluster on a generated graph.

    Shards a graph across ``--shards`` workers, runs a few patterns
    through the coordinator's scatter/gather path, and prints the merged
    counts next to a single-node reference so the exactly-once boundary
    accounting is visible.  With ``--kill N`` one shard is killed before
    the last pattern to demonstrate degraded (partial) operation.
    """
    from .cluster import LocalCluster
    from .core.config import xset_default
    from .graph.generators import erdos_renyi
    from .patterns.pattern import PATTERNS
    from .patterns.plan import build_plan
    from .sim.host import run_on_soc

    config = xset_default(engine=args.engine)
    graph = erdos_renyi(
        args.nodes, args.degree, seed=13, name="cluster-demo"
    )
    patterns = [PATTERNS[n] for n in ("3CF", "4CF", "DIA", "TT")]
    with LocalCluster(
        num_shards=args.shards,
        config=config,
        transport=args.transport,
        mode=args.mode,
        max_workers=1,
        replicas=args.replicas,
    ) as cluster:
        coord = cluster.coordinator
        gid = coord.register_graph(graph)
        replicas_note = (
            f" x{args.replicas} replicas" if args.replicas > 1 else ""
        )
        print(
            f"{graph.name}: {graph.num_vertices} vertices sharded "
            f"{args.shards} ways{replicas_note} over {args.transport!r} "
            f"({args.mode}-mode workers)"
        )
        for i, pattern in enumerate(patterns):
            if args.kill >= 0 and i == len(patterns) - 1:
                name = cluster.kill_shard(args.kill)
                print(f"-- killed {name} --")
            reference = run_on_soc(
                graph, build_plan(pattern), config
            ).embeddings
            report = coord.query(gid, pattern)
            info = report.notes["cluster"]
            status = (
                f"PARTIAL (lost {', '.join(info['failed_shards'])})"
                if info["partial"]
                else f"exact, matches single-node {reference}"
            )
            if info.get("failovers"):
                status += f", {info['failovers']} failover(s)"
            print(
                f"{pattern.name:<6} {report.embeddings:>10} embeddings "
                f"from {info['ok']}/{info['queried']} shards   [{status}]"
            )
        print()
        print(coord.health().summary())
    return 0


def _demo_cluster(args: argparse.Namespace, **extra):
    """A small observability-enabled LocalCluster over a generated graph."""
    from .cluster import LocalCluster
    from .graph.generators import erdos_renyi

    cluster = LocalCluster(
        num_shards=args.shards,
        observability=True,
        max_workers=1,
        **extra,
    )
    graph = erdos_renyi(
        args.nodes, args.degree, seed=13, name="obs-demo"
    )
    gid = cluster.coordinator.register_graph(graph)
    return cluster, gid


def _cmd_top(args: argparse.Namespace) -> int:
    """Live cluster dashboard: health, SLOs, shard stats, flight counts.

    Polls a demo cluster ``--iterations`` times (bounded so CI can run
    it), driving one query per tick so the SLO windows and federated
    metrics have fresh samples to show.  Think ``top(1)`` for the
    scatter/gather plane.
    """
    import time as _time

    from .patterns.pattern import PATTERNS

    patterns = [PATTERNS[n] for n in ("3CF", "TT", "DIA", "WEDGE")]
    cluster, gid = _demo_cluster(args)
    with cluster:
        coord = cluster.coordinator
        for tick in range(args.iterations):
            pattern = patterns[tick % len(patterns)]
            report = coord.query(gid, pattern, use_cache=False)
            health = coord.health()
            print(f"-- tick {tick + 1}/{args.iterations} "
                  f"({pattern.name}: {report.embeddings} embeddings) --")
            print(health.summary())
            stats = coord.stats()
            for name in sorted(stats):
                st = stats[name]
                line = (
                    f"  {name}: queries={st['queries']} mode={st['mode']}"
                    if st is not None
                    else f"  {name}: UNREACHABLE"
                )
                print(line)
            counts = coord.flight.counts()
            if counts:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(counts.items())
                )
                print(f"  flight: {rendered}")
            if tick + 1 < args.iterations and args.interval > 0:
                _time.sleep(args.interval)
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    """Chaos demo surfacing the flight recorder's job-lifecycle ring.

    Kills one shard mid-run, drives enough queries to trip its breaker,
    and prints the coordinator's flight-event ring.  With ``--dump`` the
    full ring is written to a JSON file (the same format the recorder
    auto-dumps when cluster health degrades).
    """
    from .patterns.pattern import PATTERNS

    cluster, gid = _demo_cluster(args)
    with cluster:
        coord = cluster.coordinator
        coord.query(gid, PATTERNS["3CF"], use_cache=False)
        killed = cluster.kill_shard(args.kill)
        print(f"killed {killed}; driving queries through the hole...")
        for name in ("TT", "DIA"):
            coord.query(gid, PATTERNS[name], use_cache=False)
        health = coord.health()
        print(health.summary())
        print()
        print(f"flight recorder ({len(coord.flight)} events):")
        for event in coord.flight:
            data = ", ".join(
                f"{k}={v}" for k, v in sorted(event.data.items())
            )
            print(f"  {event.kind:<18} {data}")
        if args.dump is not None:
            path = coord.flight.dump(args.dump or None, reason="cli")
            print()
            print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="X-SET graph pattern matching accelerator (reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log more (-v: INFO, -vv: DEBUG); see also REPRO_LOG",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="count a pattern on a dataset")
    count.add_argument("--dataset", default="WV")
    count.add_argument("--pattern", default="3CF")
    count.add_argument("--scale", type=float, default=0.25)
    count.add_argument("--system", choices=_SYSTEMS, default="xset")
    count.add_argument("--pes", type=int, default=0)
    count.add_argument("--sius", type=int, default=0)
    from .engine import available_engines

    # "auto" resolves per query from the cost model (see repro.sched.adaptive)
    engine_choices = ("auto", *available_engines())

    count.add_argument(
        "--engine",
        choices=engine_choices,
        default="",
        help="execution backend (see `python -m repro engines`)",
    )
    count.set_defaults(func=_cmd_count)

    compare = sub.add_parser(
        "compare", help="run all four accelerators on one workload"
    )
    compare.add_argument("--dataset", default="PP")
    compare.add_argument("--pattern", default="3CF")
    compare.add_argument("--scale", type=float, default=0.2)
    compare.set_defaults(func=_cmd_compare)

    datasets = sub.add_parser("datasets", help="print the Table-3 stand-ins")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.set_defaults(func=_cmd_datasets)

    config = sub.add_parser("config", help="print a system configuration")
    config.add_argument("--system", choices=_SYSTEMS, default="xset")
    config.set_defaults(func=_cmd_config)

    area = sub.add_parser("area", help="print the PE area breakdown")
    area.set_defaults(func=_cmd_area)

    plan = sub.add_parser("plan", help="print a pattern's matching plan")
    plan.add_argument("--pattern", default="DIA")
    plan.set_defaults(func=_cmd_plan)

    results = sub.add_parser(
        "results", help="consolidated report of regenerated tables/figures"
    )
    results.set_defaults(func=_cmd_results)

    engines = sub.add_parser(
        "engines", help="list registered execution-engine backends"
    )
    engines.set_defaults(func=_cmd_engines)

    serve = sub.add_parser(
        "serve",
        help="demo the async query service on generated graphs",
    )
    serve.add_argument(
        "--mode", choices=("process", "thread", "inline"), default="process"
    )
    serve.add_argument("--workers", type=int, default=0,
                       help="pool size (default: one per CPU)")
    serve.add_argument("--nodes", type=int, default=60,
                       help="vertices per generated demo graph")
    serve.add_argument("--degree", type=float, default=8.0,
                       help="average degree of the demo graphs")
    serve.add_argument("--engine", choices=engine_choices,
                       default="batched")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="run one traced query and print its execution profile",
    )
    stats.add_argument("--dataset", default="WV")
    stats.add_argument("--pattern", default="3CF")
    stats.add_argument("--scale", type=float, default=0.25)
    stats.add_argument("--engine", choices=engine_choices,
                       default="event")
    stats.add_argument("--prometheus", action="store_true",
                       help="also dump the metrics registry in "
                            "Prometheus text format")
    stats.add_argument("--json", action="store_true",
                       help="print the stats snapshot as JSON")
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="run one traced query and export a Chrome/Perfetto trace",
    )
    trace.add_argument("--dataset", default="WV")
    trace.add_argument("--pattern", default="3CF")
    trace.add_argument("--scale", type=float, default=0.25)
    trace.add_argument("--engine", choices=engine_choices,
                       default="event")
    trace.add_argument("--export", default="",
                       help="write the trace JSON here (default: stdout)")
    trace.set_defaults(func=_cmd_trace)

    health = sub.add_parser(
        "health",
        help="run a demo workload and print the service health report",
    )
    health.add_argument("--nodes", type=int, default=60,
                        help="vertices of the generated demo graph")
    health.add_argument("--degree", type=float, default=8.0,
                        help="average degree of the demo graph")
    health.add_argument("--engine", choices=engine_choices,
                        default="batched")
    health.add_argument("--chaos", action="store_true",
                        help="arm a deterministic fault plan under the "
                             "hardened resilience profile")
    health.add_argument("--seed", type=int, default=1234,
                        help="fault-plan seed used with --chaos")
    health.add_argument("--prometheus", action="store_true",
                        help="also dump the metrics registry in "
                             "Prometheus text format")
    health.add_argument("--json", action="store_true",
                        help="print the health report (plus flight-event "
                             "counts) as JSON")
    health.set_defaults(func=_cmd_health)

    cluster = sub.add_parser(
        "cluster",
        help="demo the sharded query cluster (scatter/gather matching)",
    )
    cluster.add_argument("--shards", type=int, default=4,
                         help="number of shard workers")
    cluster.add_argument("--nodes", type=int, default=200,
                         help="vertices of the generated demo graph")
    cluster.add_argument("--degree", type=float, default=10.0,
                         help="average degree of the demo graph")
    cluster.add_argument("--engine", choices=engine_choices,
                         default="batched")
    cluster.add_argument("--transport", choices=("inproc", "tcp"),
                         default="inproc",
                         help="comm transport between coordinator and "
                              "shards")
    cluster.add_argument("--mode",
                         choices=("inline", "thread", "process"),
                         default="inline",
                         help="worker pool mode inside each shard")
    cluster.add_argument("--replicas", type=int, default=1,
                         help="workers per shard group; >= 2 enables "
                              "automatic failover when a replica dies")
    cluster.add_argument("--kill", type=int, default=-1,
                         help="chaos: kill this shard index before the "
                              "last pattern (-1 = don't)")
    cluster.set_defaults(func=_cmd_cluster)

    top = sub.add_parser(
        "top",
        help="live cluster dashboard: health, SLOs, shards, flight counts",
    )
    top.add_argument("--shards", type=int, default=3,
                     help="number of shard workers in the demo cluster")
    top.add_argument("--nodes", type=int, default=120,
                     help="vertices of the generated demo graph")
    top.add_argument("--degree", type=float, default=8.0,
                     help="average degree of the demo graph")
    top.add_argument("--iterations", type=int, default=3,
                     help="dashboard refreshes before exiting")
    top.add_argument("--interval", type=float, default=0.0,
                     help="seconds to sleep between refreshes")
    top.set_defaults(func=_cmd_top)

    flight = sub.add_parser(
        "flight",
        help="chaos demo printing the coordinator's flight-event ring",
    )
    flight.add_argument("--shards", type=int, default=3,
                        help="number of shard workers in the demo cluster")
    flight.add_argument("--nodes", type=int, default=120,
                        help="vertices of the generated demo graph")
    flight.add_argument("--degree", type=float, default=8.0,
                        help="average degree of the demo graph")
    flight.add_argument("--kill", type=int, default=1,
                        help="shard index to kill mid-run")
    flight.add_argument("--dump", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="write the flight ring to PATH "
                             "(default: flight-coordinator.json)")
    flight.set_defaults(func=_cmd_flight)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from .obs.logsetup import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
