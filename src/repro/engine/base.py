"""The ``Engine`` interface and backend registry.

An execution engine turns ``(graph, plan, config)`` into a
:class:`~repro.sim.report.SimReport`.  Every engine computes the *same exact
embedding counts* (the functional layer is shared — see
:mod:`repro.engine.functional`); engines differ only in how they organise
the work and how they model time:

``event``
    The cycle-approximate event-driven simulator (heap of task-completion
    events, per-task memory streams, scheduler contention).  The reference
    for architectural studies.
``batched``
    Level-synchronous frontier expansion with vectorised NumPy kernels and
    aggregate analytic cycle charging.  Orders of magnitude faster in wall
    clock; use it when only counts (or a coarse cycle estimate for a
    design-space sweep) are needed.
``codegen``
    The same frontier algebra, but emitted as plan-specialised NumPy
    source and ``exec``-compiled (fused filters, pre-bound symmetry
    breaks, unrolled level loop).  Counts and cycle aggregates identical
    to ``batched``; lowest dispatch overhead of the three.

Backends self-register through :func:`register_engine`; the built-ins are
registered lazily by dotted path so importing this module stays cheap and
free of circular imports.  A future backend (multiprocess sharding, GPU
kernels, ...) is one ``@register_engine`` away.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from importlib import import_module
from typing import TYPE_CHECKING, Callable

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..core.config import SystemConfig
    from ..graph.csr import CSRGraph
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = [
    "Engine",
    "available_engines",
    "engine_descriptions",
    "get_engine",
    "register_engine",
]


class Engine(ABC):
    """One way of executing a matching plan against a data graph."""

    #: registry key and the value of ``SystemConfig.engine`` that selects it
    name: str = "engine"

    #: one-line human description shown by ``python -m repro engines``;
    #: falls back to the first line of the class docstring when empty
    description: str = ""

    @abstractmethod
    def run(
        self,
        graph: "CSRGraph",
        plan: "MatchingPlan",
        config: "SystemConfig",
        roots: "np.ndarray | None" = None,
    ) -> "SimReport":
        """Execute the workload and return the metrics report.

        ``report.embeddings`` must equal the software reference count for
        any engine; timing fields are engine-specific models.  ``roots``
        optionally restricts the search to embeddings rooted at the given
        vertices (the cluster layer's partitioned matching relies on
        this); ``None`` means every vertex roots a search tree.
        """


#: instantiated / registered engine classes by name
_REGISTRY: dict[str, type[Engine]] = {}

#: engine instances by name — engines are stateless, one instance suffices
_INSTANCES: dict[str, Engine] = {}

#: built-in backends resolved on first use ("module:attribute")
_LAZY: dict[str, str] = {
    "event": "repro.engine.event:EventEngine",
    "batched": "repro.engine.batched:BatchedEngine",
    "codegen": "repro.engine.codegen:CodegenEngine",
}


def register_engine(cls: type[Engine]) -> type[Engine]:
    """Class decorator adding an :class:`Engine` subclass to the registry."""
    name = getattr(cls, "name", None)
    if not name or name == Engine.name:
        raise ConfigError(
            f"engine class {cls.__name__} must define a unique 'name'"
        )
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    _LAZY.pop(name, None)
    return cls


def available_engines() -> tuple[str, ...]:
    """Names accepted by ``SystemConfig.engine`` / ``--engine``."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY)))


def _engine_class(name: str) -> type[Engine]:
    """Resolve (importing lazily if needed) the class behind ``name``."""
    cls = _REGISTRY.get(name)
    if cls is None:
        target = _LAZY.get(name)
        if target is None:
            raise ConfigError(
                f"unknown execution engine {name!r}; "
                f"available: {', '.join(available_engines())}"
            )
        module, _, attr = target.partition(":")
        cls = getattr(import_module(module), attr)
        _REGISTRY[name] = cls
    return cls


def engine_descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for every registered backend.

    Resolves lazy backends (imports their modules), so keep this off the
    library's hot import path — it exists for CLI/introspection surfaces.
    """
    out: dict[str, str] = {}
    for name in available_engines():
        cls = _engine_class(name)
        desc = cls.description or (cls.__doc__ or "").strip().splitlines()[0]
        out[name] = desc.strip()
    return out


def get_engine(name: str) -> Engine:
    """The engine registered under ``name`` (one cached instance per name)."""
    engine = _INSTANCES.get(name)
    if engine is not None:
        return engine
    engine = _engine_class(name)()
    _INSTANCES[name] = engine
    return engine
