"""Functional layer: exact candidate-set expansion, no timing.

This module is the single source of truth for *what* a task computes —
which stored/neighbour set seeds the candidate set, which neighbour rows are
intersected or subtracted on top, and which bound/distinctness/label filters
prune the survivors.  Both execution engines consume it:

* the ``event`` backend expands one task at a time
  (:func:`expand_task`) and hands the per-operation records to the temporal
  layer for exact cycle annotation;
* the ``batched`` backend expands a whole frontier level at once with the
  bulk kernels in :mod:`repro.setops.bulk`, charging analytic cycles in
  aggregate;
* the ``codegen`` backend replays the same per-level algebra from
  plan-specialised compiled source (:mod:`repro.patterns.codegen`), using
  :class:`FrontierExpander` only for its adjacency oracle and row-word
  geometry.

Nothing here touches the memory hierarchy, the SIU models or the clock, so
these kernels are trivially reusable by future backends (multiprocess
sharding, GPU, ...) that only need the functional result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.executor import apply_filters
from ..patterns.plan import LevelSpec, MatchingPlan
from ..setops.bulk import (
    bulk_adjacency,
    bulk_adjacency_bits,
    edge_keys,
    gather_rows,
    packed_adjacency,
)
from ..setops.reference import difference_sorted, intersect_sorted

__all__ = [
    "SetOpRecord",
    "TaskExpansion",
    "expand_task",
    "leaf_count",
    "row_word_counts",
    "set_stream_words",
    "FrontierLevel",
    "expand_frontier",
]


# -- word-stream geometry (BitmapCSR) ---------------------------------------


def row_word_counts(graph: CSRGraph, width: int) -> np.ndarray:
    """BitmapCSR words per neighbour row, computed in one vectorised pass."""
    if width == 0:
        return graph.degrees.astype(np.int64)
    idx = graph.indices.astype(np.int64) // width
    if idx.size == 0:
        return np.zeros(graph.num_vertices, dtype=np.int64)
    flag = np.ones(idx.size, dtype=np.int64)
    flag[1:] = (idx[1:] != idx[:-1]).astype(np.int64)
    starts = graph.indptr[:-1]
    flag[starts[starts < idx.size]] = 1
    csum = np.concatenate([[0], np.cumsum(flag)])
    return csum[graph.indptr[1:]] - csum[graph.indptr[:-1]]


def set_stream_words(vertices: np.ndarray, width: int) -> int:
    """Stream length in BitmapCSR words of an arbitrary sorted set."""
    n = int(vertices.size)
    if width == 0 or n == 0:
        return n
    blocks = vertices // width
    return 1 + int(np.count_nonzero(blocks[1:] != blocks[:-1]))


# -- per-task expansion (event backend) -------------------------------------


@dataclass
class SetOpRecord:
    """One set operation of a task, functionally resolved.

    The temporal layer derives the operation's merge boundaries (and hence
    its exact cycle cost) from the three arrays — the simulator never
    re-derives what the functional layer already knows.
    """

    kind: str  # "set_int" | "set_diff"
    operand_vertex: int  # data vertex whose neighbour row is the B stream
    a: np.ndarray  # input set before the operation
    b: np.ndarray  # the neighbour row
    out: np.ndarray  # result


@dataclass
class TaskExpansion:
    """Functional outcome of one task: candidate set, ops, children."""

    #: how the seed set was obtained: "reuse" (ancestor's stored set, no
    #: computation), "stored" (ancestor's set extended by extra ops) or
    #: "neighbors" (a fresh neighbour-row load)
    mode: str
    #: ancestor level for "reuse"/"stored" modes
    source_level: int | None
    #: data vertex whose row seeds the set in "neighbors" mode
    source_vertex: int | None
    ops: list[SetOpRecord]
    result: np.ndarray  # final candidate set, before filters
    filtered: np.ndarray  # after bound/distinctness/label filters
    is_leaf: bool
    count: int  # leaf count contribution (0 for interior tasks)


def leaf_count(filtered_size: int, collection: str) -> int:
    """Embeddings contributed by one leaf task's filtered candidate set."""
    if collection == "choose2":
        return filtered_size * (filtered_size - 1) // 2
    return filtered_size  # enumerate / count_last


def expand_task(
    graph: CSRGraph, plan: MatchingPlan, task
) -> TaskExpansion:
    """Compute one task's candidate set (exact, no timing).

    For interior tasks the raw (pre-filter) set is stored on the task so
    descendants can extend it (prefix reuse / ``reuse_from``).
    """
    lv = plan.levels[task.level]
    emb = task.embedding
    ops: list[SetOpRecord] = []
    source_level: int | None = None
    source_vertex: int | None = None

    if lv.reuse_from is not None:
        mode = "reuse"
        source_level = lv.reuse_from
        s = task.ancestor(lv.reuse_from).raw_set
        assert s is not None
    else:
        if lv.base is not None:
            mode = "stored"
            source_level = lv.base
            s = task.ancestor(lv.base).raw_set
            assert s is not None
            op_deps, op_antis = lv.extra_deps, lv.extra_anti
        else:
            mode = "neighbors"
            source_vertex = emb[lv.deps[0]]
            s = graph.neighbors(source_vertex)
            op_deps, op_antis = lv.deps[1:], lv.anti_deps
        for kind, p in (
            *(("set_int", p) for p in op_deps),
            *(("set_diff", p) for p in op_antis),
        ):
            u = emb[p]
            b = graph.neighbors(u)
            out = (
                intersect_sorted(s, b)
                if kind == "set_int"
                else difference_sorted(s, b)
            )
            ops.append(SetOpRecord(kind=kind, operand_vertex=u, a=s, b=b,
                                   out=out))
            s = out

    filt = apply_filters(s, lv, emb, graph.labels)
    is_leaf = task.level == plan.stop_level
    if is_leaf:
        count = leaf_count(int(filt.size), plan.collection)
    else:
        count = 0
        task.raw_set = s  # descendants extend / re-read this set
    return TaskExpansion(
        mode=mode,
        source_level=source_level,
        source_vertex=source_vertex,
        ops=ops,
        result=s,
        filtered=filt,
        is_leaf=is_leaf,
        count=count,
    )


# -- whole-frontier expansion (batched backend) ------------------------------


@dataclass
class FrontierLevel:
    """One level-synchronous expansion step and its aggregate statistics.

    ``embeddings`` holds the surviving partial embeddings *after* this
    level's filters (one row per search-tree node); on the leaf level it is
    empty and ``count`` carries the closed-form embedding total instead.
    Aggregates (``words_*``, ``set_ops``, ``comparisons``) feed the
    analytic temporal model.
    """

    level: int
    tasks: int
    embeddings: np.ndarray
    count: int = 0
    set_ops: int = 0
    comparisons: int = 0
    words_in: int = 0
    words_out: int = 0


class FrontierExpander:
    """Reusable bulk expansion state for one ``(graph, plan)`` pair."""

    def __init__(
        self, graph: CSRGraph, plan: MatchingPlan, bitmap_width: int = 0
    ) -> None:
        self.graph = graph
        self.plan = plan
        # adjacency oracle: packed bitset (one byte gather per query) for
        # small graphs, sorted edge-key binary search beyond the size cap
        self._adj_bits = packed_adjacency(graph)
        self._keys = None if self._adj_bits is not None else edge_keys(graph)
        self._row_words = row_word_counts(graph, bitmap_width)

    @property
    def row_words(self) -> np.ndarray:
        """BitmapCSR words per neighbour row (indexable by vertex)."""
        return self._row_words

    def adjacent(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Boolean mask: does the edge ``(u[i], v[i])`` exist?

        Public because compiled plan kernels (``repro.patterns.codegen``)
        take it as their adjacency oracle.
        """
        if self._adj_bits is not None:
            return bulk_adjacency_bits(self._adj_bits, u, v)
        assert self._keys is not None
        return bulk_adjacency(self._keys, self.graph.num_vertices, u, v)

    def roots(self, vertices: np.ndarray | None = None) -> np.ndarray:
        """Level-0 frontier: one single-column row per (label-valid) root."""
        graph = self.graph
        # int32 embeddings: vertex IDs fit and the frontier matrices are
        # the engine's memory/bandwidth bottleneck
        if vertices is None:
            vertices = np.arange(graph.num_vertices, dtype=np.int32)
        else:
            vertices = np.asarray(vertices, dtype=np.int32)
        root_label = self.plan.levels[0].label
        if root_label is not None and graph.labels is not None:
            vertices = vertices[graph.labels[vertices] == root_label]
        return vertices.reshape(-1, 1)

    def expand(self, level: int, emb: np.ndarray) -> FrontierLevel:
        """Expand every row of ``emb`` through plan level ``level`` at once.

        Prefix-reuse annotations (``base``/``reuse_from``) are cache
        optimisations for the one-task-at-a-time engines; the bulk
        formulation computes each level directly from its full
        ``deps``/``anti_deps`` (algebraically identical), so every level is
        a gather plus a sequence of bulk masks.
        """
        graph = self.graph
        lv: LevelSpec = self.plan.levels[level]
        n_rows = int(emb.shape[0])
        out = FrontierLevel(
            level=level, tasks=n_rows, embeddings=emb[:0], count=0
        )
        if n_rows == 0:
            return out
        rw = self._row_words
        src = emb[:, lv.deps[0]]
        cand, owner = gather_rows(graph, src)
        out.words_in += int(rw[src].sum())
        # cheap per-candidate filters first — bounds, distinctness, labels
        # (bulk apply_filters) — to shrink the frontier before the dominant
        # adjacency probes; every filter is an independent per-element
        # predicate, so the surviving set is order-invariant
        keep = np.ones(cand.size, dtype=bool)
        if lv.upper_bounds:
            bound = emb[:, lv.upper_bounds].min(axis=1)
            keep &= cand < bound[owner]
        if lv.lower_bounds:
            bound = emb[:, lv.lower_bounds].max(axis=1)
            keep &= cand > bound[owner]
        for p in lv.exclude:
            keep &= cand != emb[owner, p]
        if lv.label is not None and graph.labels is not None:
            keep &= graph.labels[cand] == lv.label
        cand = cand[keep]
        owner = owner[keep]
        # bulk intersections / differences against the other matched rows
        for masks, invert in ((lv.deps[1:], False), (lv.anti_deps, True)):
            for p in masks:
                # one B-stream read per task (row), as the event engine does
                other_words = int(rw[emb[:, p]].sum())
                out.words_in += other_words
                out.set_ops += n_rows
                out.comparisons += int(cand.size) + other_words
                keep = self.adjacent(emb[owner, p], cand)
                if invert:
                    np.logical_not(keep, out=keep)
                cand = cand[keep]
                owner = owner[keep]
        out.words_out += int(cand.size)
        if level == self.plan.stop_level:
            if self.plan.collection == "choose2":
                sizes = np.bincount(owner, minlength=n_rows)
                out.count = int((sizes * (sizes - 1) // 2).sum())
            else:
                out.count = int(cand.size)
        else:
            out.embeddings = np.column_stack([emb[owner], cand])
        return out


def expand_frontier(
    graph: CSRGraph,
    plan: MatchingPlan,
    roots: np.ndarray | None = None,
    bitmap_width: int = 0,
) -> list[FrontierLevel]:
    """Run a full level-by-level expansion; returns the per-level records."""
    ex = FrontierExpander(graph, plan, bitmap_width)
    emb = ex.roots(roots)
    levels: list[FrontierLevel] = []
    for level in range(1, plan.stop_level + 1):
        step = ex.expand(level, emb)
        levels.append(step)
        emb = step.embeddings
    return levels
