"""Pluggable execution engines: functional expansion × temporal modelling.

The engine layer splits plan execution into two orthogonal concerns —

* :mod:`repro.engine.functional`: exact candidate-set expansion (what the
  hardware computes), shared by every backend;
* :mod:`repro.engine.temporal`: cycle-cost annotation (how long it takes),
  exact per-task for the event simulator, aggregate-analytic for batched
  and codegen execution —

and registers concrete backends behind one :class:`Engine` interface
(``event``, ``batched`` and ``codegen`` — the last runs plan-compiled
NumPy kernels emitted by :mod:`repro.patterns.codegen`).  Select a backend
with ``SystemConfig(engine="batched")``, ``XSetAccelerator(engine=
"batched")`` or ``python -m repro count --engine codegen``.
"""

from .base import (
    Engine,
    available_engines,
    engine_descriptions,
    get_engine,
    register_engine,
)

__all__ = [
    "Engine",
    "available_engines",
    "engine_descriptions",
    "get_engine",
    "register_engine",
]
