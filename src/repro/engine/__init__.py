"""Pluggable execution engines: functional expansion × temporal modelling.

The engine layer splits plan execution into two orthogonal concerns —

* :mod:`repro.engine.functional`: exact candidate-set expansion (what the
  hardware computes), shared by every backend;
* :mod:`repro.engine.temporal`: cycle-cost annotation (how long it takes),
  exact per-task for the event simulator, aggregate-analytic for batched
  execution —

and registers concrete backends behind one :class:`Engine` interface.
Select a backend with ``SystemConfig(engine="batched")``,
``XSetAccelerator(engine="batched")`` or ``python -m repro count
--engine batched``.
"""

from .base import (
    Engine,
    available_engines,
    engine_descriptions,
    get_engine,
    register_engine,
)

__all__ = [
    "Engine",
    "available_engines",
    "engine_descriptions",
    "get_engine",
    "register_engine",
]
