"""The ``codegen`` backend: plan-compiled NumPy kernel execution.

Where the ``batched`` engine interprets a generic level loop against the
plan's :class:`~repro.patterns.plan.LevelSpec` records, this backend runs
*compiled* source emitted by
:func:`repro.patterns.codegen.emit_plan_source`: the level loop is
unrolled, symmetry-break bounds and distinctness/label filters are fused
into pattern-constant predicates, and the adjacency probes are
straight-line statements — the software analogue of the paper's claim
that specialising the execution substrate to the (pattern-constant) plan
is where the raw speed lives.

The emitted algebra replays ``FrontierExpander.expand`` statement for
statement, so embedding counts *and* the per-level aggregates feeding the
analytic temporal model are byte-identical to the ``batched`` engine; the
two backends differ only in dispatch overhead.  Kernels are cached per
plan structure (see :func:`repro.patterns.codegen.kernel_cache_key`), so
the one-time emission + ``exec`` cost amortises across runs, root chunks
and configs.

Roots are processed in chunks (same policy as ``batched``) so peak
frontier memory stays bounded.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING

import numpy as np

from ..obs import context as _obs
from ..patterns.codegen import compile_plan_kernel
from ..resilience import faults as _faults
from ..siu.models import make_siu
from .base import Engine, register_engine
from .batched import ROOT_CHUNK
from .functional import FrontierExpander, FrontierLevel
from .temporal import annotate_frontier_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SystemConfig
    from ..graph.csr import CSRGraph
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = ["CodegenEngine"]


@register_engine
class CodegenEngine(Engine):
    """Whole-frontier execution through exec-compiled plan kernels."""

    name = "codegen"
    description = (
        "plan-compiled NumPy kernels — the plan's loop nest, fused filters "
        "and symmetry bounds emitted as source and exec-compiled per "
        "pattern; counts and cycle aggregates identical to 'batched'"
    )

    def __init__(self, root_chunk: int = ROOT_CHUNK) -> None:
        self.root_chunk = max(int(root_chunk), 1)

    def run(
        self,
        graph: "CSRGraph",
        plan: "MatchingPlan",
        config: "SystemConfig",
        roots: np.ndarray | None = None,
    ) -> "SimReport":
        from ..sim.report import SimReport

        t_wall = _time.perf_counter()
        ob = _obs.current()
        # fault site "engine.codegen": CRASH/HANG fire before the sweep,
        # CORRUPT flips a bit in the final count after it (soft error)
        inj = _faults.active()
        if inj is not None:
            inj.fire("engine.codegen")
        siu = make_siu(
            config.siu_kind, config.segment_width, config.bitmap_width
        )
        # the expander supplies the graph-side state the kernel closes
        # over: the adjacency oracle, row-word geometry and root filter
        expander = FrontierExpander(graph, plan, siu.bitmap_width)
        kernel = compile_plan_kernel(
            plan, use_labels=graph.labels is not None
        )
        all_roots = expander.roots(roots)
        merged = [
            FrontierLevel(level=lv, tasks=0, embeddings=np.zeros((0, 0)))
            for lv in range(1, plan.stop_level + 1)
        ]
        if ob is None:
            self._sweep(kernel, expander, all_roots, merged, None)
        else:
            with ob.tracer.span(
                "engine.codegen",
                graph=graph.name,
                pattern=plan.pattern.name,
                roots=int(all_roots.shape[0]),
            ):
                self._sweep(kernel, expander, all_roots, merged, ob)
        report = SimReport(
            config_name=config.name,
            graph_name=graph.name,
            pattern_name=plan.pattern.name,
            frequency_ghz=config.frequency_ghz,
            num_sius=config.num_pes * config.sius_per_pe,
        )
        annotate_frontier_report(report, merged, graph, config, siu)
        if inj is not None:
            inj.corrupt("engine.codegen", report)
        report.wall_seconds = _time.perf_counter() - t_wall
        return report

    def _sweep(
        self,
        kernel,
        expander: FrontierExpander,
        all_roots: np.ndarray,
        merged: list[FrontierLevel],
        ob,
    ) -> None:
        """Run the compiled kernel once per root chunk into ``merged``."""
        graph = expander.graph
        adjacent = expander.adjacent
        rw = expander.row_words
        for start in range(0, all_roots.shape[0], self.root_chunk):
            emb = all_roots[start : start + self.root_chunk]
            # one call covers every level for this chunk — the unrolled
            # kernel returns as soon as a frontier empties
            steps = kernel.fn(graph, adjacent, rw, emb)
            for step in steps:
                agg = merged[step.level - 1]
                agg.tasks += step.tasks
                agg.count += step.count
                agg.set_ops += step.set_ops
                agg.comparisons += step.comparisons
                agg.words_in += step.words_in
                agg.words_out += step.words_out
                if ob is not None:
                    ob.level_add(
                        step.level,
                        tasks=step.tasks,
                        elements=step.words_in,
                        comparisons=step.comparisons,
                    )
