"""Temporal layer: cycle costs charged on top of functional outcomes.

Two cost annotators live here, one per execution style:

:class:`TaskCostAnnotator`
    The exact per-task model the ``event`` engine uses.  It walks the
    :class:`~repro.engine.functional.TaskExpansion` op records, streams the
    corresponding word sequences through the (stateful) memory hierarchy and
    asks the configured SIU model for each operation's cost — mirroring the
    Order-Aware SIU microarchitecture (Figure 8): both input streams fetch
    in parallel through the private cache while the core pipeline consumes
    them, so one operation costs ``max(first word latencies) + max(compute
    issue, memory occupancy) + pipeline depth``.

:func:`annotate_frontier_report`
    The aggregate analytic model the ``batched`` engine uses.  It converts
    per-level word/op totals into cycle estimates assuming perfectly
    load-balanced SIUs and bandwidth-limited DRAM streaming — good enough
    to rank design points in a sweep, and orders of magnitude cheaper than
    event-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..memory.hierarchy import MemoryHierarchy
from ..siu.base import SIUCostModel
from .functional import FrontierLevel, TaskExpansion, set_stream_words

__all__ = [
    "TASK_DISPATCH_CYCLES",
    "TASK_COMMIT_CYCLES",
    "WORD_BYTES",
    "TaskOutcome",
    "TaskCostAnnotator",
    "annotate_frontier_report",
]

#: fixed cycles for task setup (frame read + operation dispatch, Fig. 10e)
TASK_DISPATCH_CYCLES = 2
#: fixed cycles to commit a result back to the task tree
TASK_COMMIT_CYCLES = 1
#: bytes per stream word (vertex IDs / BitmapCSR words are 32-bit)
WORD_BYTES = 4


@dataclass
class TaskOutcome:
    """What executing one task produced.

    ``elapsed`` is the task's completion latency (when its children become
    ready); ``occupancy`` is how long it blocks the SIU — a fully pipelined
    unit frees up while its last operation drains, so the final operation's
    pipeline-depth tail is latency but not occupancy.
    """

    elapsed: float
    occupancy: float
    count_delta: int
    children: np.ndarray  # vertices to spawn at the next level
    set_ops: int
    comparisons: int
    words_in: int
    words_out: int


class TaskCostAnnotator:
    """Exact per-task cycle charging against shared memory state."""

    def __init__(
        self,
        graph: CSRGraph,
        siu: SIUCostModel,
        memory: MemoryHierarchy,
        row_words: np.ndarray,
        task_overhead_cycles: int = 0,
    ) -> None:
        self.graph = graph
        self.siu = siu
        self.memory = memory
        self.task_overhead = task_overhead_cycles
        self._width = siu.bitmap_width
        self._row_words = row_words

    def annotate(
        self, expansion: TaskExpansion, task, pe: int, now: float
    ) -> TaskOutcome:
        """Charge hardware time for one functionally-expanded task."""
        graph = self.graph
        memory = self.memory
        siu = self.siu
        throughput = siu.throughput
        elapsed = float(TASK_DISPATCH_CYCLES + self.task_overhead)
        tail_depth = 0.0
        set_ops = 0
        comparisons = 0
        words_in = 0
        words_out = 0

        if expansion.mode == "reuse":
            # Candidate set already materialised by an ancestor: stream it
            # back out of the candidate buffer, no SIU computation.
            anc = task.ancestor(expansion.source_level)
            w = anc.raw_words
            mem = memory.stream_read(now + elapsed, pe, anc.scratch_addr, w)
            scan = -(-w // throughput)
            elapsed += mem.first_latency + max(scan, mem.stream_cycles)
            words_in += w
        else:
            if expansion.mode == "stored":
                anc = task.ancestor(expansion.source_level)
                src_addr, src_words = anc.scratch_addr, anc.raw_words
            else:
                u = expansion.source_vertex
                src_addr = graph.row_address(u)
                src_words = int(self._row_words[u])
            mem_a = memory.stream_read(now + elapsed, pe, src_addr, src_words)
            words_in += src_words
            pending_first = mem_a.first_latency
            pending_stream = mem_a.stream_cycles
            wa = src_words
            if not expansion.ops:
                # pure load: stream the neighbour list through the unit
                scan = -(-src_words // throughput)
                elapsed += pending_first + max(scan, pending_stream)
            for rec in expansion.ops:
                u = rec.operand_vertex
                wb = int(self._row_words[u])
                mem_b = memory.stream_read(
                    now + elapsed, pe, graph.row_address(u), wb
                )
                words_in += wb
                s, b, out = rec.a, rec.b, rec.out
                na, nb, nout = int(s.size), int(b.size), int(out.size)
                # merge boundaries at vertex level, scaled to word streams
                if na and nb:
                    lim = min(int(s[-1]), int(b[-1]))
                    i_end = int(s.searchsorted(lim, side="right"))
                    j_end = int(b.searchsorted(lim, side="right"))
                    c_a = na + int(b.searchsorted(int(s[-1]), side="left"))
                    c_b = nb + int(s.searchsorted(int(b[-1]), side="right"))
                    matches = nout if rec.kind == "set_int" else na - nout
                    if self._width:
                        ra, rb = wa / na, wb / nb
                        i_end = min(round(i_end * ra), wa)
                        j_end = min(round(j_end * rb), wb)
                        c_a = wa + min(round((c_a - na) * rb), wb)
                        c_b = wb + min(round((c_b - nb) * ra), wa)
                        matches = min(
                            round(matches * min(ra, rb)), i_end, j_end
                        )
                else:
                    i_end = j_end = matches = 0
                    c_a, c_b = na, nb
                cost = siu.cost_terms(
                    wa, wb, i_end, j_end, matches, rec.kind,
                    c_a=c_a, c_b=c_b,
                )
                elapsed += (
                    max(pending_first, mem_b.first_latency)
                    + max(
                        cost.issue_cycles, pending_stream, mem_b.stream_cycles
                    )
                    + cost.pipeline_depth
                )
                tail_depth = (
                    float(cost.pipeline_depth)
                    if siu.pipelined_across_ops
                    else 0.0
                )
                set_ops += 1
                comparisons += cost.comparisons
                wa = set_stream_words(out, self._width)
                # subsequent ops read the previous result from the unit's
                # local buffer: no further memory latency on the A side
                pending_first = 0.0
                pending_stream = 0.0

        children: np.ndarray = expansion.filtered[:0]
        if expansion.is_leaf:
            elapsed += TASK_COMMIT_CYCLES
        else:
            # store the raw candidate set for descendants, spawn children
            task.raw_words = set_stream_words(expansion.result, self._width)
            if task.raw_words:
                task.scratch_addr = memory.allocate_scratch(
                    pe, task.raw_words
                )
                wr = memory.stream_write(
                    now + elapsed, pe, task.scratch_addr, task.raw_words
                )
                elapsed += wr.stream_cycles
                words_out += task.raw_words
            children = expansion.filtered
            elapsed += TASK_COMMIT_CYCLES
        return TaskOutcome(
            elapsed=elapsed,
            occupancy=max(elapsed - tail_depth, 1.0),
            count_delta=expansion.count,
            children=children,
            set_ops=set_ops,
            comparisons=comparisons,
            words_in=words_in,
            words_out=words_out,
        )


def annotate_frontier_report(
    report,
    levels: list[FrontierLevel],
    graph: CSRGraph,
    config,
    siu: SIUCostModel,
) -> None:
    """Fill a ``SimReport``'s timing fields from aggregate frontier stats.

    The model assumes the per-level work spreads perfectly over every SIU
    (issue cycles proportional to streamed words, plus fixed per-task
    dispatch/commit overhead) and overlaps with a bandwidth-limited DRAM
    stream; each level contributes ``max(compute, memory)`` plus one
    pipeline fill.  Deliberately optimistic about load balance — this is a
    throughput estimate for sweeps, not an event-accurate makespan.
    """
    num_sius = max(config.num_pes * config.sius_per_pe, 1)
    throughput = max(siu.throughput, 1)
    per_task = (
        TASK_DISPATCH_CYCLES + TASK_COMMIT_CYCLES
        + config.task_overhead_cycles
    )
    bytes_per_cycle = (
        config.dram.channels * config.dram.bytes_per_cycle_per_channel
    )
    busy = 0.0
    cycles = 0.0
    for st in levels:
        issue = st.words_in / throughput + st.tasks * per_task
        mem_cycles = st.words_in * WORD_BYTES / bytes_per_cycle
        cycles += max(issue / num_sius, mem_cycles) + siu.pipeline_depth
        busy += issue
        report.tasks += st.tasks
        report.set_ops += st.set_ops
        report.comparisons += st.comparisons
        report.words_in += st.words_in
        report.words_out += st.words_out
        report.embeddings += st.count
    report.cycles = cycles
    report.siu_busy_cycles = busy
    report.num_sius = num_sius
    # cold-stream estimate: adjacency touched once, plus spilled frontiers
    report.dram_bytes = WORD_BYTES * (
        int(graph.indices.size) + report.words_out
    )
    report.per_pe_busy = [busy / config.num_pes] * config.num_pes
