"""The ``event`` backend: the cycle-approximate event-driven simulator.

This is the full SoC flow the library has always modelled — Rocket-core
host (result collection, over-deep pattern splitting), RoCC instruction
protocol, and the heap-driven multi-PE accelerator simulation with shared
memory contention.  Reports are byte-for-byte identical to the
pre-engine-layer code path; the engine class is a thin adapter that gives
that path a registry name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import context as _obs
from ..resilience import faults as _faults
from .base import Engine, register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SystemConfig
    from ..graph.csr import CSRGraph
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = ["EventEngine"]


@register_engine
class EventEngine(Engine):
    """Event-driven cycle-approximate execution (host + RoCC + PEs)."""

    name = "event"
    description = (
        "cycle-approximate event-driven SoC simulation "
        "(host + RoCC + PEs) — the reference for architectural studies"
    )

    def run(
        self,
        graph: "CSRGraph",
        plan: "MatchingPlan",
        config: "SystemConfig",
        roots=None,
    ) -> "SimReport":
        from ..sim.host import HostModel

        # fault site "engine.event": CRASH/HANG before the simulation,
        # CORRUPT on the final count after it; the "memory.stream" site
        # inside the hierarchy fires during the run itself
        inj = _faults.active()
        if inj is not None:
            inj.fire("engine.event")
        with _obs.span(
            "engine.event", graph=graph.name, pattern=plan.pattern.name
        ):
            report = HostModel(config).run(graph, plan, roots=roots)
        if inj is not None:
            inj.corrupt("engine.event", report)
        return report
