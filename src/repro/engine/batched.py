"""The ``batched`` backend: vectorised level-synchronous frontier expansion.

Instead of simulating one task-completion event at a time, this engine
expands the whole search frontier level by level with the bulk kernels in
:mod:`repro.setops.bulk` — one grouped neighbour gather plus a handful of
boolean masks per level, regardless of how many tasks the level contains.
Functional results (embedding counts) are exact and identical to the
``event`` engine and the software reference; cycles are charged in
aggregate by the analytic model in
:func:`repro.engine.temporal.annotate_frontier_report`.

Use it when you want counts (``XSetAccelerator.count``) or a fast
design-space sweep; use ``event`` when the cycle-level interactions
(scheduling, cache contention, load imbalance) are the object of study.

Roots are processed in chunks so peak frontier memory stays bounded on
graphs whose intermediate frontiers would otherwise explode.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING

import numpy as np

from ..obs import context as _obs
from ..resilience import faults as _faults
from ..siu.models import make_siu
from .base import Engine, register_engine
from .functional import FrontierExpander, FrontierLevel
from .temporal import annotate_frontier_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SystemConfig
    from ..graph.csr import CSRGraph
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = ["BatchedEngine", "ROOT_CHUNK"]

#: roots expanded per sweep — bounds peak frontier memory while keeping
#: every NumPy call large enough to amortise its dispatch overhead
ROOT_CHUNK = 4096


@register_engine
class BatchedEngine(Engine):
    """Whole-frontier execution with aggregate analytic timing."""

    name = "batched"
    description = (
        "vectorised level-synchronous frontier expansion with analytic "
        "timing — orders of magnitude faster when only counts matter"
    )

    def __init__(self, root_chunk: int = ROOT_CHUNK) -> None:
        self.root_chunk = max(int(root_chunk), 1)

    def run(
        self,
        graph: "CSRGraph",
        plan: "MatchingPlan",
        config: "SystemConfig",
        roots: np.ndarray | None = None,
    ) -> "SimReport":
        from ..sim.report import SimReport

        t_wall = _time.perf_counter()
        # guarded hot-path hook: with no active observation this is one
        # attribute load, and no span / accumulator code runs at all
        ob = _obs.current()
        # fault site "engine.batched": CRASH/HANG fire before the sweep,
        # CORRUPT flips a bit in the final count after it (soft error)
        inj = _faults.active()
        if inj is not None:
            inj.fire("engine.batched")
        siu = make_siu(
            config.siu_kind, config.segment_width, config.bitmap_width
        )
        expander = FrontierExpander(graph, plan, siu.bitmap_width)
        all_roots = expander.roots(roots)
        # one aggregate record per plan level, merged across root chunks
        merged = [
            FrontierLevel(level=lv, tasks=0, embeddings=np.zeros((0, 0)))
            for lv in range(1, plan.stop_level + 1)
        ]
        if ob is None:
            self._sweep(expander, all_roots, plan, merged, None)
        else:
            with ob.tracer.span(
                "engine.batched",
                graph=graph.name,
                pattern=plan.pattern.name,
                roots=int(all_roots.shape[0]),
            ):
                self._sweep(expander, all_roots, plan, merged, ob)
        report = SimReport(
            config_name=config.name,
            graph_name=graph.name,
            pattern_name=plan.pattern.name,
            frequency_ghz=config.frequency_ghz,
            num_sius=config.num_pes * config.sius_per_pe,
        )
        annotate_frontier_report(report, merged, graph, config, siu)
        if inj is not None:
            inj.corrupt("engine.batched", report)
        report.wall_seconds = _time.perf_counter() - t_wall
        return report

    def _sweep(
        self,
        expander: FrontierExpander,
        all_roots: np.ndarray,
        plan: "MatchingPlan",
        merged: list[FrontierLevel],
        ob,
    ) -> None:
        """Expand every root chunk level by level into ``merged``."""
        for start in range(0, all_roots.shape[0], self.root_chunk):
            emb = all_roots[start : start + self.root_chunk]
            for step_idx, level in enumerate(
                range(1, plan.stop_level + 1)
            ):
                if ob is None:
                    step = expander.expand(level, emb)
                else:
                    with ob.tracer.span(
                        f"engine.level{level}", level=level
                    ):
                        step = expander.expand(level, emb)
                    ob.level_add(
                        level,
                        tasks=step.tasks,
                        elements=step.words_in,
                        comparisons=step.comparisons,
                    )
                agg = merged[step_idx]
                agg.tasks += step.tasks
                agg.count += step.count
                agg.set_ops += step.set_ops
                agg.comparisons += step.comparisons
                agg.words_in += step.words_in
                agg.words_out += step.words_out
                emb = step.embeddings
                if emb.shape[0] == 0:
                    break
