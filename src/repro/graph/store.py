"""Buffer backends for :class:`CSRGraph`: heap arrays vs shared memory.

A CSR graph is just three NumPy arrays (``indptr``, ``indices`` and the
optional ``labels``), and :class:`~repro.graph.csr.CSRGraph` accepts any
contiguous buffer for them.  This module provides the *shared-memory
backend*: the arrays are copied once into a single
:mod:`multiprocessing.shared_memory` segment, and any process on the
machine can then reconstruct the graph as zero-copy views over that
segment — no pickling, no per-worker duplication, near-instant attach.

Three pieces cooperate:

:class:`GraphSegment`
    The *creator-side* owner.  ``GraphSegment.create(graph)`` allocates one
    POSIX shm segment (named after ``graph.fingerprint()``), copies the CSR
    arrays in, and is responsible for eventually calling :meth:`unlink` —
    the segment outlives the creating process otherwise.
:class:`SharedGraphRef`
    The tiny picklable handle that travels to workers instead of the graph:
    segment name plus the geometry needed to slice it back into arrays.
:class:`AttachedGraph`
    The *worker-side* view.  ``attach_graph(ref)`` opens the segment by
    name and builds a :class:`CSRGraph` whose ``indptr``/``indices`` arrays
    alias the shared buffer directly.  The attachment keeps the mapping
    alive for as long as the graph is used; :meth:`AttachedGraph.close`
    releases this process's mapping (never the segment itself).

Lifecycle contract: exactly one process — the creator — unlinks.  Workers
only ever ``close()``.  On CPython < 3.13 merely *attaching* a segment
registers it with the ``resource_tracker``, which would unlink it when the
worker exits while the creator still serves it; :func:`attach_graph`
therefore unregisters the attachment immediately (the standard workaround,
see cpython#82300).

Segments can be disabled wholesale with the ``REPRO_DISABLE_SHM``
environment variable, in which case the service layer falls back to its
pickle path.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "AttachedGraph",
    "GraphSegment",
    "SharedGraphRef",
    "attach_graph",
    "share_graph",
    "shm_available",
]

#: set (to any value) to force the pickle path everywhere
DISABLE_ENV = "REPRO_DISABLE_SHM"

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import resource_tracker, shared_memory

    _HAVE_SHM = True
except ImportError:  # pragma: no cover - exotic platforms only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    _HAVE_SHM = False

#: distinguishes segments of concurrent processes sharing one fingerprint
_SEQ = itertools.count()


def shm_available() -> bool:
    """True when the shared-memory backend can be used at all."""
    return _HAVE_SHM and not os.environ.get(DISABLE_ENV)


def _align8(nbytes: int) -> int:
    """Round a byte offset up to the next 8-byte boundary."""
    return (nbytes + 7) & ~7


def _untrack(shm) -> None:
    """Drop a *attached* segment from this process's resource tracker.

    Attaching registers the name with the tracker on CPython < 3.13, and
    the tracker unlinks everything still registered when its last client
    exits — which would tear the segment out from under the creator the
    first time a pool worker dies.  Only the creator may unlink.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _quiet_close(shm) -> None:
    """Close a mapping, tolerating live NumPy views of its buffer.

    ``mmap.close`` refuses while exported pointers exist (``BufferError``);
    the mapping is then reclaimed when the last view is garbage-collected
    instead.  The handles are dropped here so ``SharedMemory.__del__``
    doesn't retry the close and surface the same error as an unraisable
    exception at GC time.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None


def _retrack(shm) -> None:
    """Re-register a segment just before the creator unlinks it.

    Under the fork start method every process shares one tracker, so a
    worker's :func:`_untrack` also removed the *creator's* registration;
    ``SharedMemory.unlink`` then unregisters a name the tracker no longer
    holds and the tracker process prints a KeyError traceback.  Re-adding
    the name (idempotent — the tracker keeps a set) keeps that silent.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


@dataclass(frozen=True)
class SharedGraphRef:
    """Everything a worker needs to attach to a shared graph (picklable).

    The segment layout is deterministic given the geometry below:
    ``indptr`` (int64, ``num_vertices + 1``) at offset 0, ``indices``
    (int32, ``num_indices``) next, then — 8-byte aligned — the optional
    ``labels`` (int64, ``num_vertices``).
    """

    segment: str
    fingerprint: str
    name: str
    base_address: int
    num_vertices: int
    num_indices: int
    has_labels: bool

    @property
    def indptr_bytes(self) -> int:
        return 8 * (self.num_vertices + 1)

    @property
    def indices_offset(self) -> int:
        return self.indptr_bytes

    @property
    def labels_offset(self) -> int:
        return _align8(self.indices_offset + 4 * self.num_indices)

    @property
    def total_bytes(self) -> int:
        size = self.indices_offset + 4 * self.num_indices
        if self.has_labels:
            size = self.labels_offset + 8 * self.num_vertices
        return size


class GraphSegment:
    """Creator-side owner of one shared-memory segment holding a graph.

    The creator is the only process allowed to :meth:`unlink`; everyone
    else attaches through :func:`attach_graph` and merely closes.
    """

    def __init__(self, shm, ref: SharedGraphRef) -> None:
        self._shm = shm
        self.ref = ref
        self._unlinked = False

    @classmethod
    def create(cls, graph: CSRGraph) -> "GraphSegment":
        """Copy ``graph``'s arrays into a fresh shared-memory segment."""
        if not shm_available():
            raise GraphFormatError(
                "shared-memory graph store unavailable "
                f"(missing support or {DISABLE_ENV} set)"
            )
        fingerprint = graph.fingerprint()
        ref = SharedGraphRef(
            # keyed by content fingerprint; pid + sequence make the name
            # unique across concurrent services sharing a machine
            segment=f"xset-{os.getpid():x}-{next(_SEQ):x}-"
            f"{fingerprint[:16]}",
            fingerprint=fingerprint,
            name=graph.name,
            base_address=graph.base_address,
            num_vertices=graph.num_vertices,
            num_indices=int(graph.indices.size),
            has_labels=graph.labels is not None,
        )
        shm = shared_memory.SharedMemory(
            name=ref.segment, create=True, size=ref.total_bytes
        )
        try:
            buf = shm.buf
            _view(buf, np.int64, 0, ref.num_vertices + 1)[:] = graph.indptr
            _view(buf, np.int32, ref.indices_offset, ref.num_indices)[:] = (
                graph.indices
            )
            if graph.labels is not None:
                _view(buf, np.int64, ref.labels_offset, ref.num_vertices)[
                    :
                ] = graph.labels
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, ref)

    @property
    def nbytes(self) -> int:
        return self.ref.total_bytes

    def unlink(self) -> None:
        """Release this process's mapping and remove the segment (idempotent).

        Safe while workers are still attached: POSIX keeps the memory alive
        until the last mapping closes; only the *name* disappears, so no new
        attach can start.
        """
        if self._unlinked:
            return
        self._unlinked = True
        _quiet_close(self._shm)
        _retrack(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "unlinked" if self._unlinked else f"{self.nbytes}B"
        return f"GraphSegment({self.ref.segment!r}, {state})"


class AttachedGraph:
    """Worker-side attachment: a :class:`CSRGraph` aliasing the segment."""

    def __init__(self, ref: SharedGraphRef, shm, graph: CSRGraph) -> None:
        self.ref = ref
        self._shm = shm
        self.graph = graph

    def close(self) -> None:
        """Release this process's mapping (the segment itself survives).

        With live NumPy views of the buffer the mapping lingers until the
        views are garbage-collected — see :func:`_quiet_close`.
        """
        _quiet_close(self._shm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttachedGraph({self.ref.segment!r}, n={self.ref.num_vertices})"


def _view(buf, dtype, offset: int, count: int) -> np.ndarray:
    """A typed zero-copy view of ``count`` items at ``offset`` in ``buf``."""
    return np.frombuffer(buf, dtype=dtype, count=count, offset=offset)


def share_graph(graph: CSRGraph) -> GraphSegment:
    """Copy ``graph`` into shared memory; returns the owning segment."""
    return GraphSegment.create(graph)


def attach_graph(ref: SharedGraphRef) -> AttachedGraph:
    """Attach to a shared graph by reference — zero-copy, no validation cost
    beyond :class:`CSRGraph`'s structural checks.

    Raises ``FileNotFoundError`` when the creator already unlinked the
    segment (e.g. the graph was unregistered while this job was queued).
    """
    if not _HAVE_SHM:  # pragma: no cover - exotic platforms only
        raise GraphFormatError("shared-memory graph store unavailable")
    shm = shared_memory.SharedMemory(name=ref.segment)
    _untrack(shm)  # only the creator unlinks; see module docstring
    try:
        buf = shm.buf
        indptr = _view(buf, np.int64, 0, ref.num_vertices + 1)
        indices = _view(buf, np.int32, ref.indices_offset, ref.num_indices)
        labels = (
            _view(buf, np.int64, ref.labels_offset, ref.num_vertices)
            if ref.has_labels
            else None
        )
        graph = CSRGraph(
            indptr=indptr,
            indices=indices,
            name=ref.name,
            base_address=ref.base_address,
            labels=labels,
        )
    except BaseException:
        shm.close()
        raise
    return AttachedGraph(ref, shm, graph)
