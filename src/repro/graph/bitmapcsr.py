"""BitmapCSR: the hybrid set format used by X-SET's datapath (paper §5.2).

Each 32-bit element packs a ``b``-bit *bitmap* in the low bits and a
``32 - b``-bit *block index* in the high bits.  A vertex ``x`` maps to block
``k = x // b`` with bit ``x % b`` set, so one element can represent up to
``b`` consecutive vertices.  Comparators in the SIU only inspect the index
field (narrower comparisons → smaller area), and equal-index elements combine
bitmaps with AND (intersection) or AND-NOT (difference), giving intra-element
parallelism.  ``width = 0`` degrades to the conventional CSR format where
each word is a plain vertex ID.

Functions here are the *functional* model; cycle costs are attributed by the
SIU models, which consume the word counts these functions report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphFormatError

__all__ = [
    "VALID_WIDTHS",
    "BitmapSet",
    "encode",
    "decode",
    "intersect_words",
    "difference_words",
    "count_vertices",
    "encoded_length",
]

#: bitmap widths supported by the hardware (0 = plain CSR)
VALID_WIDTHS = (0, 1, 2, 4, 8, 16)


def _check_width(width: int) -> None:
    if width not in VALID_WIDTHS:
        raise GraphFormatError(
            f"bitmap width must be one of {VALID_WIDTHS}, got {width}"
        )


def encode(vertices: np.ndarray, width: int) -> np.ndarray:
    """Encode a sorted vertex array into BitmapCSR words.

    Returns an ``int64`` array of packed words ``(block << width) | bitmap``
    sorted by block index (the input order is preserved blockwise, so sorted
    vertices produce sorted words).
    """
    _check_width(width)
    v = np.asarray(vertices, dtype=np.int64)
    if width == 0:
        return v.copy()
    if v.size == 0:
        return np.zeros(0, dtype=np.int64)
    blocks = v // width
    bits = np.int64(1) << (v % width)
    # Sorted input ⇒ equal blocks are adjacent; OR bits per block.
    boundaries = np.flatnonzero(np.diff(blocks)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [v.size]])
    words = np.empty(starts.size, dtype=np.int64)
    for i, (s, e) in enumerate(zip(starts, ends)):
        words[i] = (blocks[s] << width) | np.bitwise_or.reduce(bits[s:e])
    return words


def decode(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`encode`; returns a sorted vertex array."""
    _check_width(width)
    w = np.asarray(words, dtype=np.int64)
    if width == 0:
        return w.copy()
    out: list[int] = []
    mask = (1 << width) - 1
    for word in w:
        block = int(word) >> width
        bmp = int(word) & mask
        base = block * width
        while bmp:
            low = bmp & -bmp
            out.append(base + low.bit_length() - 1)
            bmp ^= low
    return np.asarray(out, dtype=np.int64)


def _split(words: np.ndarray, width: int) -> tuple[np.ndarray, np.ndarray]:
    if width == 0:
        return words, np.ones_like(words)
    mask = (1 << width) - 1
    return words >> width, words & mask


def _merge_blocks(
    a: np.ndarray, b: np.ndarray, width: int, op: str
) -> np.ndarray:
    """Shared kernel for word-level intersection/difference on block index."""
    ka, ba = _split(np.asarray(a, dtype=np.int64), width)
    kb, bb = _split(np.asarray(b, dtype=np.int64), width)
    # positions of matching blocks via merge on sorted keys
    idx = np.searchsorted(kb, ka)
    idx_c = np.clip(idx, 0, max(kb.size - 1, 0))
    match = (idx < kb.size) & (kb[idx_c] == ka) if kb.size else np.zeros(
        ka.shape, dtype=bool
    )
    if op == "and":
        bits = np.where(match, ba & bb[idx_c] if kb.size else 0, 0)
        keep = bits != 0
        return (ka[keep] << width) | bits[keep] if width else ka[keep]
    if op == "andnot":
        bits = np.where(match, ba & ~bb[idx_c] if kb.size else ba, ba)
        keep = bits != 0
        return (ka[keep] << width) | bits[keep] if width else ka[keep]
    raise GraphFormatError(f"unknown op {op!r}")


def intersect_words(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Word-level intersection of two sorted BitmapCSR streams."""
    _check_width(width)
    if width == 0:
        return np.intersect1d(a, b, assume_unique=True)
    return _merge_blocks(a, b, width, "and")


def difference_words(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Word-level difference ``a - b`` of two sorted BitmapCSR streams."""
    _check_width(width)
    if width == 0:
        return np.setdiff1d(a, b, assume_unique=True)
    return _merge_blocks(a, b, width, "andnot")


def count_vertices(words: np.ndarray, width: int) -> int:
    """Number of vertices represented by a word stream (popcount sum)."""
    _check_width(width)
    w = np.asarray(words, dtype=np.int64)
    if width == 0:
        return int(w.size)
    mask = (1 << width) - 1
    bits = (w & mask).astype(np.uint64)
    return int(sum(int(x).bit_count() for x in bits))


def encoded_length(vertices: np.ndarray, width: int) -> int:
    """Words needed to encode ``vertices`` without materialising them.

    Equal to the number of distinct ``v // width`` blocks.
    """
    _check_width(width)
    v = np.asarray(vertices, dtype=np.int64)
    if width == 0 or v.size == 0:
        return int(v.size)
    return int(np.unique(v // width).size)


@dataclass(frozen=True)
class BitmapSet:
    """A sorted vertex set carried in BitmapCSR form.

    Thin value object pairing the packed words with their bitmap width so the
    scheduler's candidate buffers and the SIUs agree on the encoding.
    """

    words: np.ndarray
    width: int

    @classmethod
    def from_vertices(cls, vertices: np.ndarray, width: int) -> "BitmapSet":
        return cls(words=encode(vertices, width), width=width)

    @property
    def num_words(self) -> int:
        return int(np.asarray(self.words).size)

    @property
    def num_vertices(self) -> int:
        return count_vertices(self.words, self.width)

    def vertices(self) -> np.ndarray:
        return decode(self.words, self.width)

    def intersect(self, other: "BitmapSet") -> "BitmapSet":
        if self.width != other.width:
            raise GraphFormatError("bitmap widths differ")
        return BitmapSet(
            intersect_words(self.words, other.words, self.width), self.width
        )

    def difference(self, other: "BitmapSet") -> "BitmapSet":
        if self.width != other.width:
            raise GraphFormatError("bitmap widths differ")
        return BitmapSet(
            difference_words(self.words, other.words, self.width), self.width
        )
