"""Synthetic graph generators.

The paper evaluates on seven real-world SNAP/GraMi graphs.  Those files are
not redistributable inside this offline reproduction, so
:mod:`repro.graph.datasets` builds deterministic synthetic stand-ins with the
generators below, tuned to match each dataset's published statistics
(Table 3): vertex/edge counts, average degree, maximum degree and degree
skew.  The generators are all implemented from scratch on NumPy; the only
randomness source is an explicit seed, so every dataset is reproducible
bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_degree_sequence",
    "configuration_model",
    "powerlaw_graph",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def erdos_renyi(
    num_vertices: int, avg_degree: float, seed: int = 0, name: str = "er"
) -> CSRGraph:
    """Uniform random graph with the requested expected average degree."""
    if num_vertices < 2:
        return CSRGraph.empty(max(num_vertices, 0), name=name)
    rng = _rng(seed)
    target_edges = int(round(num_vertices * avg_degree / 2))
    # Oversample to survive dedup / self-loop removal.
    k = int(target_edges * 1.2) + 16
    u = rng.integers(0, num_vertices, size=k, dtype=np.int64)
    v = rng.integers(0, num_vertices, size=k, dtype=np.int64)
    mask = u != v
    edges = np.stack([u[mask], v[mask]], axis=1)[:target_edges]
    return CSRGraph.from_edges(num_vertices, map(tuple, edges), name=name)


def barabasi_albert(
    num_vertices: int, edges_per_vertex: int, seed: int = 0, name: str = "ba"
) -> CSRGraph:
    """Preferential-attachment graph (linearised Barabási–Albert).

    Each new vertex attaches to ``edges_per_vertex`` targets drawn from the
    running endpoint list, which realises degree-proportional sampling.
    """
    m = edges_per_vertex
    if num_vertices <= m:
        raise GraphFormatError("barabasi_albert needs num_vertices > m")
    rng = _rng(seed)
    targets = list(range(m))
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    for v in range(m, num_vertices):
        for t in targets:
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * m)
        idx = rng.integers(0, len(repeated), size=m)
        targets = [repeated[int(i)] for i in idx]
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def powerlaw_degree_sequence(
    num_vertices: int,
    avg_degree: float,
    max_degree: int,
    seed: int = 0,
) -> np.ndarray:
    """Degree sequence with a truncated power-law tail and a chosen mean.

    The exponent of ``p(k) ∝ k^-alpha`` on ``[1, max_degree]`` is found by
    bisection so the distribution mean equals ``avg_degree``; the largest
    sampled entry is then pinned to ``max_degree`` so the hub the paper's
    datasets rely on (e.g. Youtube's 28754-degree vertex) is present.
    """
    if max_degree < 1:
        raise GraphFormatError("max_degree must be >= 1")
    if not (1.0 <= avg_degree <= max_degree):
        raise GraphFormatError("avg_degree must lie in [1, max_degree]")
    ks = np.arange(1, max_degree + 1, dtype=np.float64)

    def mean_for(alpha: float) -> float:
        w = ks**-alpha
        return float((ks * w).sum() / w.sum())

    lo, hi = 0.01, 6.0  # mean is decreasing in alpha on this range
    if avg_degree >= mean_for(lo):
        alpha = lo
    elif avg_degree <= mean_for(hi):
        alpha = hi
    else:
        for _ in range(60):
            mid = (lo + hi) / 2
            if mean_for(mid) > avg_degree:
                lo = mid
            else:
                hi = mid
        alpha = (lo + hi) / 2
    w = ks**-alpha
    p = w / w.sum()
    rng = _rng(seed)
    deg = rng.choice(ks.astype(np.int64), size=num_vertices, p=p)
    deg[int(np.argmax(deg))] = max_degree
    if deg.sum() % 2:  # configuration model needs an even stub count
        deg[int(np.argmin(deg))] += 1
    return deg.astype(np.int64)


def configuration_model(
    degrees: np.ndarray, seed: int = 0, name: str = "config"
) -> CSRGraph:
    """Simple-graph configuration model: pair stubs, drop loops/multi-edges.

    The realised degrees are therefore slightly below the prescribed ones for
    heavy-tailed sequences, matching standard practice.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.sum() % 2:
        raise GraphFormatError("degree sequence must have an even sum")
    rng = _rng(seed)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    mask = pairs[:, 0] != pairs[:, 1]
    return CSRGraph.from_edges(
        degrees.size, map(tuple, pairs[mask]), name=name
    )


def powerlaw_graph(
    num_vertices: int,
    avg_degree: float,
    max_degree: int,
    seed: int = 0,
    name: str = "powerlaw",
    triangle_boost: float = 0.0,
) -> CSRGraph:
    """Power-law graph with tuned mean/max degree.

    ``triangle_boost`` in [0, 1] optionally closes that fraction of open
    wedges around random vertices, raising clustering the way real social
    graphs do — clique-heavy patterns (4CF/5CF) need non-trivial triangle
    density to exercise deep search trees.
    """
    deg = powerlaw_degree_sequence(num_vertices, avg_degree, max_degree, seed)
    g = configuration_model(deg, seed=seed + 1, name=name)
    if triangle_boost <= 0.0:
        return g
    rng = _rng(seed + 2)
    extra: list[tuple[int, int]] = []
    n_close = int(triangle_boost * g.num_edges)
    candidates = rng.integers(0, num_vertices, size=n_close * 2)
    for v in candidates:
        row = g.neighbors(int(v))
        if row.size < 2:
            continue
        i, j = rng.integers(0, row.size, size=2)
        if i != j:
            extra.append((int(row[i]), int(row[j])))
        if len(extra) >= n_close:
            break
    if not extra:
        return g
    all_edges = list(g.edges()) + extra
    return CSRGraph.from_edges(num_vertices, all_edges, name=name)
