"""Graph substrate: CSR storage, shared-memory store, BitmapCSR, datasets."""

from .algorithms import (
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_order,
    global_clustering,
    k_core,
    largest_component,
    relabeled_by_degeneracy,
)
from .bitmapcsr import (
    VALID_WIDTHS,
    BitmapSet,
    count_vertices,
    decode,
    difference_words,
    encode,
    encoded_length,
    intersect_words,
)
from .csr import CSRGraph, edges_to_csr
from .datasets import DATASETS, DatasetSpec, dataset_names, dataset_table, load_dataset
from .generators import (
    barabasi_albert,
    configuration_model,
    erdos_renyi,
    powerlaw_degree_sequence,
    powerlaw_graph,
)
from .interop import from_networkx, to_networkx
from .io import load_edge_list, save_edge_list
from .stats import GraphStats, degree_skewness, graph_stats
from .store import (
    AttachedGraph,
    GraphSegment,
    SharedGraphRef,
    attach_graph,
    share_graph,
    shm_available,
)

__all__ = [
    "VALID_WIDTHS",
    "AttachedGraph",
    "GraphSegment",
    "SharedGraphRef",
    "attach_graph",
    "share_graph",
    "shm_available",
    "connected_components",
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "global_clustering",
    "k_core",
    "largest_component",
    "relabeled_by_degeneracy",
    "BitmapSet",
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "GraphStats",
    "barabasi_albert",
    "configuration_model",
    "count_vertices",
    "dataset_names",
    "dataset_table",
    "decode",
    "degree_skewness",
    "difference_words",
    "edges_to_csr",
    "encode",
    "encoded_length",
    "erdos_renyi",
    "from_networkx",
    "graph_stats",
    "intersect_words",
    "load_dataset",
    "load_edge_list",
    "powerlaw_degree_sequence",
    "powerlaw_graph",
    "save_edge_list",
    "to_networkx",
]
