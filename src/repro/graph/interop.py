"""NetworkX interoperability.

Downstream users usually hold their graphs as ``networkx.Graph`` objects;
these converters move them in and out of the library's CSR representation
(including vertex labels) without making the core depend on NetworkX — the
import happens lazily and only here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise GraphFormatError(
            "networkx is required for graph interop (pip install networkx)"
        ) from exc
    return networkx


def from_networkx(
    nx_graph: "networkx.Graph",
    label_attr: str | None = None,
    name: str | None = None,
) -> tuple[CSRGraph, dict[Hashable, int]]:
    """Convert an undirected NetworkX graph to :class:`CSRGraph`.

    Node identifiers may be arbitrary hashables; they are compacted to dense
    IDs in sorted-as-string order.  Returns ``(graph, node_to_id)`` so
    callers can translate embeddings back.  If ``label_attr`` is given, that
    node attribute becomes the vertex label (values are interned to dense
    integer label IDs).
    """
    nx = _require_networkx()
    if nx_graph.is_directed():
        raise GraphFormatError("only undirected graphs are supported")
    nodes = sorted(nx_graph.nodes, key=str)
    node_to_id = {node: i for i, node in enumerate(nodes)}
    edges = [
        (node_to_id[u], node_to_id[v]) for u, v in nx_graph.edges if u != v
    ]
    graph = CSRGraph.from_edges(
        len(nodes), edges, name=name or str(nx_graph.name or "networkx")
    )
    if label_attr is not None:
        values = [nx_graph.nodes[node].get(label_attr) for node in nodes]
        interned: dict[Hashable, int] = {}
        labels = np.empty(len(nodes), dtype=np.int64)
        for i, value in enumerate(values):
            labels[i] = interned.setdefault(value, len(interned))
        graph = graph.with_labels(labels)
    return graph, node_to_id


def to_networkx(
    graph: CSRGraph, label_attr: str | None = None
) -> "networkx.Graph":
    """Convert a :class:`CSRGraph` to ``networkx.Graph``.

    Labels (if present) are attached as the ``label_attr`` node attribute
    (default attribute name ``"label"``).
    """
    nx = _require_networkx()
    out = nx.Graph(name=graph.name)
    out.add_nodes_from(range(graph.num_vertices))
    out.add_edges_from(graph.edges())
    if graph.labels is not None:
        attr = label_attr or "label"
        for v in range(graph.num_vertices):
            out.nodes[v][attr] = int(graph.labels[v])
    return out
