"""Classic graph algorithms used by GPM preprocessing and analysis.

GPM systems lean on a small toolbox of structural algorithms: degeneracy
(k-core) orderings bound clique-enumeration work, connected components let
workloads skip isolated fragments, and clustering coefficients characterise
how triangle-dense a workload will be.  All are implemented from scratch on
the CSR representation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRGraph

__all__ = [
    "core_numbers",
    "degeneracy_order",
    "degeneracy",
    "k_core",
    "connected_components",
    "largest_component",
    "global_clustering",
    "relabeled_by_degeneracy",
]


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex (Matula–Beck peeling, O(m))."""
    n = graph.num_vertices
    degree = graph.degrees.copy()
    max_deg = int(degree.max()) if n else 0
    # bucket sort vertices by current degree
    bins = [0] * (max_deg + 2)
    for d in degree:
        bins[int(d)] += 1
    starts = [0] * (max_deg + 2)
    acc = 0
    for d in range(max_deg + 1):
        starts[d] = acc
        acc += bins[d]
    pos = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    fill = starts.copy()
    for v in range(n):
        d = int(degree[v])
        pos[v] = fill[d]
        order[fill[d]] = v
        fill[d] += 1
    core = degree.astype(np.int64).copy()
    cur_deg = degree.astype(np.int64).copy()
    bin_start = starts.copy()
    for i in range(n):
        v = int(order[i])
        core[v] = cur_deg[v]
        for w in graph.neighbors(v):
            w = int(w)
            if cur_deg[w] > cur_deg[v]:
                dw = int(cur_deg[w])
                # swap w with the first vertex of its bin, shrink the bin
                first = bin_start[dw]
                u = int(order[first])
                if u != w:
                    order[first], order[pos[w]] = w, u
                    pos[u], pos[w] = pos[w], first
                bin_start[dw] += 1
                cur_deg[w] -= 1
    return core


def degeneracy_order(graph: CSRGraph) -> np.ndarray:
    """Vertices in a degeneracy (smallest-last peeling) order."""
    n = graph.num_vertices
    core = core_numbers(graph)
    # peeling order: stable sort by (core number, degree)
    return np.lexsort((graph.degrees, core)).astype(np.int64)


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy = max core number."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max())


def k_core(graph: CSRGraph, k: int) -> CSRGraph:
    """Induced subgraph on vertices with core number ≥ k."""
    core = core_numbers(graph)
    keep = np.flatnonzero(core >= k)
    return graph.induced_subgraph(keep.tolist())


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (BFS labelling)."""
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for s in range(n):
        if comp[s] != -1:
            continue
        comp[s] = next_id
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                w = int(w)
                if comp[w] == -1:
                    comp[w] = next_id
                    queue.append(w)
        next_id += 1
    return comp


def largest_component(graph: CSRGraph) -> CSRGraph:
    """Induced subgraph of the largest connected component."""
    comp = connected_components(graph)
    if comp.size == 0:
        return graph
    counts = np.bincount(comp)
    big = int(np.argmax(counts))
    return graph.induced_subgraph(np.flatnonzero(comp == big).tolist())


def global_clustering(graph: CSRGraph) -> float:
    """Transitivity: 3 × triangles / wedges (0.0 for wedge-free graphs)."""
    from ..patterns.executor import count_embeddings
    from ..patterns.pattern import PATTERNS
    from ..patterns.plan import build_plan

    triangles = count_embeddings(
        graph, build_plan(PATTERNS["3CF"])
    ).embeddings
    deg = graph.degrees.astype(np.int64)
    wedges = int((deg * (deg - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangles / wedges


def relabeled_by_degeneracy(graph: CSRGraph) -> CSRGraph:
    """Relabel so vertex IDs follow the reverse degeneracy order.

    Clique plans with ``u_{i+1} < u_i`` restrictions then expand each vertex
    against only its ~degeneracy() later neighbours — the standard bound for
    clique enumeration.
    """
    order = degeneracy_order(graph)[::-1]
    rank = np.empty_like(order)
    rank[order] = np.arange(graph.num_vertices)
    edges = [
        (int(rank[u]), int(rank[v])) for u, v in graph.edges()
    ]
    out = CSRGraph.from_edges(
        graph.num_vertices, edges, name=f"{graph.name}-degen"
    )
    out.base_address = graph.base_address
    return out
