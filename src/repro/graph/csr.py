"""Compressed Sparse Row (CSR) graph representation.

All of X-SET's set-centric processing operates on *sorted* adjacency lists:
the order-aware SIU exploits exactly this property.  :class:`CSRGraph` is the
canonical in-memory format for the whole library — undirected simple graphs
stored as two NumPy arrays (``indptr``, ``indices``) with every neighbour row
sorted ascending.

The class also carries the address-space model used by the memory-hierarchy
simulator: each vertex's neighbour list occupies a contiguous region of a
flat 32-bit word address space, so a cache line of ``line_words`` words holds
that many consecutive neighbour IDs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import GraphFormatError

__all__ = ["CSRGraph", "edges_to_csr"]


def _as_edge_array(edges: Iterable[tuple[int, int]]) -> np.ndarray:
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError("edges must be an iterable of (u, v) pairs")
    return arr


def edges_to_csr(
    num_vertices: int, edges: Iterable[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Build sorted CSR arrays for an *undirected* simple graph.

    Self-loops and duplicate edges are removed.  Returns ``(indptr, indices)``
    where ``indptr`` has length ``num_vertices + 1``.
    """
    arr = _as_edge_array(edges)
    if arr.size:
        if arr.min() < 0 or arr.max() >= num_vertices:
            raise GraphFormatError(
                f"edge endpoint out of range [0, {num_vertices})"
            )
        arr = arr[arr[:, 0] != arr[:, 1]]  # drop self loops
    if arr.size == 0:
        return (
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
        )
    # Symmetrize, then deduplicate via a packed 64-bit key.
    both = np.concatenate([arr, arr[:, ::-1]], axis=0)
    key = both[:, 0] * np.int64(num_vertices) + both[:, 1]
    key = np.unique(key)
    src = (key // num_vertices).astype(np.int64)
    dst = (key % num_vertices).astype(np.int32)
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # keys were sorted by (src, dst) so dst is already row-sorted
    return indptr, dst


@dataclass
class CSRGraph:
    """An undirected simple graph in sorted-CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``v`` spans
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of neighbour IDs, sorted ascending within each row.
    name:
        Optional human-readable dataset name (used in reports).
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = "graph"
    #: base word address of the adjacency array in the simulated address space
    base_address: int = 0x1000_0000
    #: optional per-vertex labels (int array of length n) for labelled GPM
    labels: np.ndarray | None = None
    _degrees: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr does not span indices")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.labels is not None:
            self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
            if self.labels.shape != (self.indptr.size - 1,):
                raise GraphFormatError("labels must have one entry per vertex")
        self._degrees = np.diff(self.indptr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a graph from an undirected edge list (dedup + symmetrize)."""
        indptr, indices = edges_to_csr(num_vertices, edges)
        return cls(indptr=indptr, indices=indices, name=name)

    @classmethod
    def empty(cls, num_vertices: int, name: str = "empty") -> "CSRGraph":
        """A graph with ``num_vertices`` isolated vertices."""
        return cls(
            indptr=np.zeros(num_vertices + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int32),
            name=name,
        )

    # -- basic queries -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice in CSR)."""
        return self.indices.size // 2

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self._degrees[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour row of ``v`` (a zero-copy view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    def fingerprint(self) -> str:
        """Stable content hash of the graph's structure and labels.

        Two graphs share a fingerprint iff they have identical ``indptr``,
        ``indices`` and ``labels`` arrays — ``name`` and ``base_address``
        are presentation/simulation concerns and deliberately excluded.
        The service layer keys its result cache on this value, so any edge
        edit (which changes the CSR arrays) invalidates cached counts.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(np.int64(self.num_vertices).tobytes())
        h.update(np.ascontiguousarray(self.indptr).tobytes())
        h.update(np.ascontiguousarray(self.indices).tobytes())
        if self.labels is not None:
            h.update(b"labels")
            h.update(np.ascontiguousarray(self.labels).tobytes())
        return h.hexdigest()

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < int(v):
                    yield (u, int(v))

    # -- address-space model ----------------------------------------------

    def row_address(self, v: int) -> int:
        """Word address of vertex ``v``'s neighbour row."""
        return self.base_address + int(self.indptr[v])

    def row_extent(self, v: int) -> tuple[int, int]:
        """``(word address, length in words)`` of the neighbour row."""
        return self.row_address(v), self.degree(v)

    # -- transforms ---------------------------------------------------------

    def with_labels(self, labels) -> "CSRGraph":
        """Copy of this graph carrying per-vertex labels (shares arrays)."""
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            name=self.name,
            base_address=self.base_address,
            labels=np.asarray(labels, dtype=np.int64),
        )

    def label_of(self, v: int) -> int | None:
        """Vertex ``v``'s label, or None for unlabelled graphs."""
        if self.labels is None:
            return None
        return int(self.labels[v])

    def relabeled_by_degree(self, descending: bool = True) -> "CSRGraph":
        """Return an isomorphic copy with vertices relabelled by degree.

        Degree-descending relabelling is the standard GPM preprocessing step:
        symmetry-breaking restrictions of the form ``u_i < u_j`` then prune
        high-degree vertices early, shrinking the search tree.
        """
        order = np.argsort(-self._degrees if descending else self._degrees,
                           kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(self.num_vertices)
        remapped = []
        for new_id, old_id in enumerate(order):
            for w in self.neighbors(int(old_id)):
                nw = int(rank[int(w)])
                if new_id < nw:
                    remapped.append((new_id, nw))
        out = CSRGraph.from_edges(self.num_vertices, remapped,
                                  name=f"{self.name}-degsorted")
        out.base_address = self.base_address
        if self.labels is not None:
            new_labels = np.empty_like(self.labels)
            new_labels[rank] = self.labels
            out.labels = new_labels
        return out

    def induced_subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Induced subgraph on ``vertices`` with IDs compacted to 0..k-1."""
        keep = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        rank = {int(v): i for i, v in enumerate(keep)}
        edges = []
        for u in keep:
            for w in self.neighbors(int(u)):
                w = int(w)
                if w in rank and int(u) < w:
                    edges.append((rank[int(u)], rank[w]))
        return CSRGraph.from_edges(len(keep), edges,
                                   name=f"{self.name}-induced")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )
