"""Registry of the paper's evaluation datasets (Table 3) as synthetic stand-ins.

The paper evaluates on seven real-world graphs from SNAP/GraMi.  This offline
reproduction cannot download them, so each is replaced by a deterministic
synthetic graph generated to match its published statistics: average degree
(= m/n, the paper's convention), degree skew, and the presence/absence of an
extreme hub.  The four large graphs (MI, YT, PA, LJ) are additionally scaled
down so that full end-to-end simulations finish in seconds rather than the
1500 CPU-core-hours the paper's artifact budget lists; the scale factor for
each is recorded in its spec and in EXPERIMENTS.md.

What this substitution preserves (and why it is enough): every performance
phenomenon the paper attributes to a dataset is a function of the matched
statistics — degree skew drives task-tree irregularity (the barrier-free
scheduler's advantage), average degree drives set lengths (the order-aware
SIU's advantage), and working-set size relative to cache drives the memory
behaviour.  Absolute embedding counts differ from the real graphs; speedup
*ratios* between architectures on the same stand-in are the quantity compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .csr import CSRGraph
from .generators import powerlaw_graph
from .stats import GraphStats, graph_stats

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_table",
           "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Generation recipe for one Table-3 stand-in."""

    key: str          # short code used throughout the paper (PP, WV, ...)
    full_name: str    # dataset name as printed in Table 3
    num_vertices: int  # stand-in size (post scaling)
    avg_degree: float  # target m/n, from Table 3
    max_degree: int    # stand-in hub degree (scaled with the graph)
    triangle_boost: float  # wedge-closure fraction ≈ clustering level
    seed: int
    paper_vertices: float  # published size, for the reproduction report
    paper_edges: float
    paper_skew: float
    scale_note: str = "full size"


# Stand-in sizes keep the small graphs at full scale and shrink the large
# ones; max degrees are scaled to preserve hub-to-size ratio / skew ordering.
DATASETS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        DatasetSpec("PP", "p2p-Gnutella04", 10_876, 3.68, 103, 0.05, 11,
                    1.09e4, 4.00e4, 2.15),
        DatasetSpec("WV", "WikiVote", 7_115, 14.57, 1_065, 0.30, 12,
                    7.12e3, 1.04e5, 5.14),
        DatasetSpec("AS", "AstroPh", 9_000, 10.55, 360, 0.50, 13,
                    1.88e4, 1.98e5, 3.85, "scaled 2x"),
        DatasetSpec("MI", "MiCo", 8_000, 11.18, 420, 0.30, 14,
                    9.66e4, 1.08e6, 8.48, "scaled 12x"),
        DatasetSpec("YT", "Youtube", 15_000, 2.63, 2_200, 0.10, 15,
                    1.13e6, 2.99e6, 232.0, "scaled 75x"),
        DatasetSpec("PA", "Patents", 15_000, 4.38, 240, 0.10, 16,
                    3.77e6, 1.65e7, 6.75, "scaled 250x"),
        DatasetSpec("LJ", "LiveJournal", 15_000, 14.23, 1_800, 0.30, 17,
                    4.85e6, 6.90e7, 30.9, "scaled 320x"),
    ]
}


def dataset_names() -> list[str]:
    """Dataset keys in the paper's Table-3 order."""
    return list(DATASETS)


@lru_cache(maxsize=32)
def load_dataset(key: str, scale: float = 1.0) -> CSRGraph:
    """Generate (and cache) the stand-in for dataset ``key``.

    ``scale`` < 1 shrinks the vertex count proportionally (hub degree scales
    with it) — the parameter sweeps in Figures 16–19 use smaller instances to
    keep total bench time low.  Graphs are degree-descending relabelled, the
    standard GPM preprocessing step all compared systems apply.
    """
    spec = DATASETS[key.upper()]
    n = max(int(spec.num_vertices * scale), 64)
    max_deg = max(int(spec.max_degree * scale), 8)
    max_deg = min(max_deg, n - 1)
    # avg_degree is m/n; the generator targets mean degree 2m/n.
    # triangle_boost adds ~0.8*boost*m extra closure edges; compensate so the
    # realised m/n still tracks Table 3's Avg Deg column.
    mean_degree = 2.0 * spec.avg_degree / (1.0 + 0.8 * spec.triangle_boost)
    g = powerlaw_graph(
        num_vertices=n,
        avg_degree=min(mean_degree, max_deg),
        max_degree=max_deg,
        seed=spec.seed,
        name=spec.key,
        triangle_boost=spec.triangle_boost,
    )
    g = g.relabeled_by_degree()
    g.name = spec.key
    return g


def dataset_table(scale: float = 1.0) -> list[GraphStats]:
    """Statistics of all stand-ins, in Table-3 row order."""
    return [graph_stats(load_dataset(key, scale)) for key in DATASETS]
