"""Degree-distribution statistics for data graphs.

Table 3 of the paper characterises each dataset by node/edge counts, average
and maximum degree, and *skew* — the adjusted Fisher–Pearson skewness
coefficient (Joanes & Gill 1998, the measure the paper cites).  The synthetic
dataset generators in :mod:`repro.graph.datasets` are tuned against these
statistics, so they live in their own module with no simulator dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "degree_skewness", "graph_stats"]


def degree_skewness(degrees: np.ndarray) -> float:
    """Adjusted Fisher-Pearson skewness (G1) of a degree sample.

    Matches ``scipy.stats.skew(x, bias=False)``; implemented directly so the
    core library does not depend on SciPy.  Returns 0.0 for degenerate
    samples (fewer than 3 values or zero variance).
    """
    x = np.asarray(degrees, dtype=np.float64)
    n = x.size
    if n < 3:
        return 0.0
    mean = x.mean()
    m2 = np.mean((x - mean) ** 2)
    if m2 == 0.0:
        return 0.0
    m3 = np.mean((x - mean) ** 3)
    g1 = m3 / m2**1.5
    return float(g1 * math.sqrt(n * (n - 1)) / (n - 2))


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the shape of the paper's Table 3."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    skew: float

    def row(self) -> str:
        """One formatted Table-3 row."""
        return (
            f"{self.name:<18} {self.num_vertices:>9.2E} {self.num_edges:>9.2E}"
            f" {self.avg_degree:>8.2f} {self.max_degree:>8d} {self.skew:>7.2f}"
        )


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute Table-3-style statistics for ``graph``."""
    deg = graph.degrees
    max_deg = int(deg.max()) if deg.size else 0
    # Table 3 reports Avg Deg as m/n (edges counted once), not mean degree.
    n = graph.num_vertices
    avg_deg = graph.num_edges / n if n else 0.0
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=avg_deg,
        max_degree=max_deg,
        skew=degree_skewness(deg),
    )
