"""Edge-list I/O in the SNAP text format the paper's datasets ship in.

Lines are ``u<ws>v`` pairs; ``#`` comments and blank lines are ignored;
graphs are treated as undirected simple graphs (duplicates and self-loops
dropped), matching the preprocessing GPM systems apply to the SNAP files.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list"]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def load_edge_list(path: str | Path, name: str | None = None) -> CSRGraph:
    """Load an undirected graph from a (possibly gzipped) edge-list file.

    Vertex IDs are compacted to the dense range ``0..n-1`` in first-seen
    order of the sorted original IDs, the convention GPM systems use.
    """
    path = Path(path)
    raw: list[tuple[int, int]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                raw.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id"
                ) from exc
    ids = sorted({u for e in raw for u in e})
    remap = {old: new for new, old in enumerate(ids)}
    edges = [(remap[u], remap[v]) for u, v in raw]
    return CSRGraph.from_edges(len(ids), edges, name=name or path.stem)


def save_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write each undirected edge once as ``u v`` lines."""
    path = Path(path)
    with _open_text(path, "w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def edges_from_pairs(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Normalise an iterable of pairs to a concrete, validated edge list."""
    out = []
    for u, v in pairs:
        out.append((int(u), int(v)))
    return out
