"""Edge-list I/O in the SNAP text format the paper's datasets ship in.

Lines are ``u<ws>v`` pairs; ``#`` comments and blank lines are ignored;
graphs are treated as undirected simple graphs (duplicates and self-loops
dropped), matching the preprocessing GPM systems apply to the SNAP files.

Malformed inputs fail loudly with a typed
:class:`~repro.errors.GraphFormatError` carrying the offending line
number: negative vertex ids, files that declare vertex/edge counts in
their header comment (SNAP's ``# Nodes: N Edges: M`` or this module's
own ``# name: N vertices, M edges``) that contradict the edges actually
present, and files with no edges at all.  A truncated download that
silently loads as a smaller graph corrupts every downstream count — the
resilience layer's cross-checks can catch a corrupted *datapath*, but
only the loader can catch corrupted *input*.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path
from typing import Iterable

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list"]

#: SNAP dataset convention: ``# Nodes: 7115 Edges: 103689``
_HEADER_SNAP = re.compile(
    r"nodes:\s*(\d+)\s+edges:\s*(\d+)", re.IGNORECASE
)
#: this module's own save format: ``# name: 7115 vertices, 100762 edges``
_HEADER_SAVE = re.compile(
    r":\s*(\d+)\s+vertices,\s*(\d+)\s+edges", re.IGNORECASE
)


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _parse_header(line: str) -> tuple[int, int] | None:
    """Declared ``(vertices, edges)`` from a comment line, if present."""
    m = _HEADER_SNAP.search(line) or _HEADER_SAVE.search(line)
    if m is None:
        return None
    return int(m.group(1)), int(m.group(2))


def load_edge_list(path: str | Path, name: str | None = None) -> CSRGraph:
    """Load an undirected graph from a (possibly gzipped) edge-list file.

    Vertex IDs are compacted to the dense range ``0..n-1`` in first-seen
    order of the sorted original IDs, the convention GPM systems use.

    Raises :class:`~repro.errors.GraphFormatError` (with the line number
    where applicable) on negative or non-integer vertex ids, on a header
    that declares counts inconsistent with the file's own edges, and on
    files containing no edges.
    """
    path = Path(path)
    raw: list[tuple[int, int]] = []
    declared: tuple[int, int] | None = None
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                if declared is None and line:
                    declared = _parse_header(line)
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: negative vertex id in "
                    f"({u}, {v}); ids must be >= 0"
                )
            raw.append((u, v))
    if not raw:
        raise GraphFormatError(
            f"{path}: no edges found (empty or comment-only edge list)"
        )
    ids = sorted({u for e in raw for u in e})
    if declared is not None:
        decl_vertices, decl_edges = declared
        # the unique undirected simple edges the file actually contains,
        # the same normalisation CSRGraph.from_edges applies
        unique = {
            (u, v) if u < v else (v, u) for u, v in raw if u != v
        }
        if len(unique) != decl_edges:
            raise GraphFormatError(
                f"{path}: header declares {decl_edges} edges but the "
                f"file contains {len(unique)} unique undirected edges "
                f"(truncated or corrupted download?)"
            )
        if decl_vertices < len(ids):
            raise GraphFormatError(
                f"{path}: header declares {decl_vertices} vertices but "
                f"the edges reference {len(ids)} distinct ids"
            )
    remap = {old: new for new, old in enumerate(ids)}
    edges = [(remap[u], remap[v]) for u, v in raw]
    return CSRGraph.from_edges(len(ids), edges, name=name or path.stem)


def save_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write each undirected edge once as ``u v`` lines."""
    path = Path(path)
    with _open_text(path, "w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def edges_from_pairs(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Normalise an iterable of pairs to a concrete, validated edge list."""
    out = []
    for u, v in pairs:
        out.append((int(u), int(v)))
    return out
