"""Shared experiment-running helpers used by the benchmark harness.

Every figure/table regeneration in ``benchmarks/`` is a thin wrapper over
these: run a grid of (dataset, pattern, configuration) workloads, collect
reports, and format the paper-style rows.  Dataset scales default to values
that keep the whole suite at laptop timescales; pass ``scale=1.0`` for the
full stand-in sizes (EXPERIMENTS.md records which scale each recorded run
used).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.config import SystemConfig, xset_default
from ..graph.datasets import load_dataset
from ..patterns.pattern import PATTERNS, Pattern
from ..patterns.plan import MatchingPlan, build_plan
from ..sim.host import run_on_soc
from ..sim.report import SimReport

__all__ = [
    "DEFAULT_BENCH_SCALE",
    "BENCH_PATTERNS",
    "BENCH_DATASETS",
    "geomean",
    "run_workload",
    "run_grid",
    "format_table",
    "plan_cache",
]

#: default down-scale applied to dataset stand-ins inside benchmarks
DEFAULT_BENCH_SCALE = 0.25
#: the pattern set used by the end-to-end figures (5CF/3MF run separately)
BENCH_PATTERNS = ("3CF", "4CF", "CYC", "DIA", "TT")
#: datasets used by the end-to-end figures (Table 3 keys)
BENCH_DATASETS = ("PP", "WV", "AS", "MI", "YT", "PA", "LJ")

_plan_cache: dict[tuple[str, bool | None], MatchingPlan] = {}


def plan_cache(pattern: Pattern, induced: bool | None = None) -> MatchingPlan:
    """Memoised plan construction (plans are pure functions of the pattern)."""
    key = (pattern.name, induced)
    if key not in _plan_cache:
        _plan_cache[key] = build_plan(pattern, induced=induced)
    return _plan_cache[key]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregate of choice for speedups."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def run_workload(
    dataset: str,
    pattern: str,
    config: SystemConfig | None = None,
    scale: float = DEFAULT_BENCH_SCALE,
) -> SimReport:
    """Simulate one (dataset, pattern) workload on one configuration."""
    graph = load_dataset(dataset, scale=scale)
    plan = plan_cache(PATTERNS[pattern])
    return run_on_soc(graph, plan, config or xset_default())


@dataclass
class GridResult:
    """Results of a dataset × pattern grid on one configuration."""

    config: SystemConfig
    scale: float
    reports: dict[tuple[str, str], SimReport] = field(default_factory=dict)

    def seconds(self, dataset: str, pattern: str) -> float:
        return self.reports[(dataset, pattern)].seconds


def run_grid(
    config: SystemConfig | None = None,
    datasets: Sequence[str] = BENCH_DATASETS,
    patterns: Sequence[str] = BENCH_PATTERNS,
    scale: float = DEFAULT_BENCH_SCALE,
) -> GridResult:
    """Simulate a full dataset × pattern grid on one configuration."""
    cfg = config or xset_default()
    result = GridResult(config=cfg, scale=scale)
    for ds in datasets:
        for pat in patterns:
            result.reports[(ds, pat)] = run_workload(
                ds, pat, config=cfg, scale=scale
            )
    return result


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table in the style of the paper's tables."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
