"""Consolidated experiment reporting.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module assembles the per-experiment text
blocks into one report (the reproduction's analogue of the paper artifact's
result-gathering notebooks) and exposes it through ``python -m repro
results``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import ExecutionProfile

__all__ = [
    "RESULTS_ORDER",
    "collect_results",
    "experiment_summary",
    "render_profile",
]

#: canonical presentation order of the result files
RESULTS_ORDER = (
    "table1_theory",
    "table2_config",
    "table3_datasets",
    "table4_area",
    "table5_simtime",
    "fig12_software",
    "fig13_accelerators",
    "fig14_siu",
    "fig15_area_power",
    "fig16_ablation",
    "fig17a_pe_scaling",
    "fig17b_siu_scaling",
    "fig18a_private_cache",
    "fig18b_shared_cache",
    "fig19_bitmap",
    "ext_taskset_capacity",
    "ext_root_partitioning",
    "ext_energy",
    "obs_overhead",
)


def render_profile(profile: "ExecutionProfile") -> str:
    """Human-readable rendering of one :class:`ExecutionProfile`.

    Used by ``python -m repro stats``: a header line, the per-level
    task/element/comparison table, stage wall times, memory-hierarchy hit
    rates and per-span-name duration summaries (shared percentile math).
    """
    from .experiments import format_table

    lines = [
        (
            f"{profile.pattern or '?'} on {profile.graph or '?'} "
            f"[engine={profile.engine or '?'}]  "
            f"wall {profile.wall_seconds * 1e3:.2f}ms"
        ),
    ]
    if profile.levels:
        rows = [
            (
                level,
                profile.level_tasks.get(level, 0),
                profile.level_elements.get(level, 0),
                profile.level_comparisons.get(level, 0),
            )
            for level in profile.levels
        ]
        lines.append("")
        lines.append(
            format_table(
                ("level", "tasks", "elements", "comparisons"),
                rows,
                title="per-level work",
            )
        )
    if profile.stages:
        lines.append("")
        lines.append("stages:")
        for name, seconds in sorted(profile.stages.items()):
            lines.append(f"  {name:<16} {seconds * 1e3:.3f}ms")
    if profile.cache:
        lines.append("")
        lines.append(
            "cache: private {:.1%} hit, shared {:.1%} hit".format(
                profile.cache_hit_rate("private"),
                profile.cache_hit_rate("shared"),
            )
        )
    span_stats = profile.span_summary()
    if span_stats:
        rows = [
            (
                name,
                f"{stats['count']:.0f}",
                f"{stats['p50'] * 1e3:.3f}",
                f"{stats['p99'] * 1e3:.3f}",
            )
            for name, stats in span_stats.items()
        ]
        lines.append("")
        lines.append(
            format_table(
                ("span", "count", "p50 ms", "p99 ms"),
                rows,
                title="span durations",
            )
        )
    return "\n".join(lines)


def default_results_dir() -> Path:
    """`benchmarks/results/` relative to the repository root."""
    return Path(__file__).resolve().parents[3].parent / "benchmarks" / "results"


def _candidate_dirs(results_dir: Path | None) -> list[Path]:
    if results_dir is not None:
        return [Path(results_dir)]
    here = Path(__file__).resolve()
    return [
        parent / "benchmarks" / "results"
        for parent in list(here.parents)[:6]
    ] + [Path.cwd() / "benchmarks" / "results"]


def collect_results(results_dir: Path | None = None) -> dict[str, str]:
    """Load every available result block, keyed by experiment name."""
    for candidate in _candidate_dirs(results_dir):
        if candidate.is_dir():
            return {
                path.stem: path.read_text().rstrip()
                for path in sorted(candidate.glob("*.txt"))
            }
    return {}


def experiment_summary(results_dir: Path | None = None) -> str:
    """One consolidated report over all regenerated tables and figures."""
    blocks = collect_results(results_dir)
    if not blocks:
        return (
            "no results found — run `pytest benchmarks/ --benchmark-only` "
            "first"
        )
    ordered = [name for name in RESULTS_ORDER if name in blocks]
    ordered += [name for name in sorted(blocks) if name not in RESULTS_ORDER]
    sections = []
    for name in ordered:
        bar = "=" * (len(name) + 8)
        sections.append(f"{bar}\n=== {name} ===\n{bar}\n{blocks[name]}")
    missing = [name for name in RESULTS_ORDER if name not in blocks]
    if missing:
        sections.append(
            "(not yet regenerated: " + ", ".join(missing) + ")"
        )
    return "\n\n".join(sections)
