"""Experiment orchestration and report formatting for the benchmark suite."""

from .plots import bar_chart, grouped_bars, line_series
from .reporting import collect_results, experiment_summary
from .experiments import (
    BENCH_DATASETS,
    BENCH_PATTERNS,
    DEFAULT_BENCH_SCALE,
    GridResult,
    format_table,
    geomean,
    plan_cache,
    run_grid,
    run_workload,
)

__all__ = [
    "BENCH_DATASETS",
    "bar_chart",
    "collect_results",
    "experiment_summary",
    "grouped_bars",
    "line_series",
    "BENCH_PATTERNS",
    "DEFAULT_BENCH_SCALE",
    "GridResult",
    "format_table",
    "geomean",
    "plan_cache",
    "run_grid",
    "run_workload",
]
