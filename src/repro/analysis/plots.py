"""Terminal-friendly chart rendering for the benchmark harness.

The paper's artifact plots figures with Jupyter notebooks; this offline
reproduction renders the same series as ASCII charts inside the benchmark
result files, so `benchmarks/results/*.txt` are self-contained figure
regenerations.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bars", "line_series"]


def _fmt(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    log: bool = False,
) -> str:
    """Horizontal bar chart of label → value.

    ``log=True`` scales bar lengths logarithmically, the way the paper plots
    its speedup figures.
    """
    if not data:
        return "(no data)"
    values = {k: max(float(v), 0.0) for k, v in data.items()}
    if log:
        scaled = {
            k: math.log10(v + 1.0) for k, v in values.items()
        }
    else:
        scaled = dict(values)
    peak = max(scaled.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "█" * max(int(round(scaled[key] / peak * width)), 0)
        lines.append(f"{key:<{label_w}} |{bar} {_fmt(value)}")
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Bars grouped by an outer key (e.g. dataset → {system: speedup})."""
    if not groups:
        return "(no data)"
    peak = max(
        (v for inner in groups.values() for v in inner.values()), default=1.0
    ) or 1.0
    label_w = max(
        len(str(k)) for inner in groups.values() for k in inner
    )
    lines = [title] if title else []
    for group, inner in groups.items():
        lines.append(f"{group}:")
        for key, value in inner.items():
            bar = "▆" * max(int(round(value / peak * width)), 0)
            lines.append(f"  {key:<{label_w}} |{bar} {_fmt(value)}")
    return "\n".join(lines)


def line_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Multi-series scatter/line plot on a character grid."""
    if not series or not x:
        return "(no data)"
    marks = "ox+*#@%&"
    all_y = [v for ys in series.values() for v in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        for xv, yv in zip(x, ys):
            col = int((xv - x_min) / (x_max - x_min) * (width - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = [title] if title else []
    lines.append(f"{_fmt(y_max):>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{_fmt(y_min):>8} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(
        " " * 10 + f"{_fmt(x_min)}" + " " * (width - 12) + f"{_fmt(x_max)}"
    )
    legend = "   ".join(
        f"{marks[i % len(marks)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
