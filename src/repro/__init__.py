"""X-SET reproduction: an order-aware GPM accelerator, in Python.

Full-system reproduction of *X-SET: An Efficient Graph Pattern Matching
Accelerator With Order-Aware Parallel Intersection Units* (MICRO 2025):
the order-aware set intersection unit, the barrier-free task scheduler, the
set-centric GPM software stack, the memory hierarchy, baseline architectures
and every evaluation experiment.

Quickstart::

    from repro import XSetAccelerator, load_dataset, PATTERNS

    accel = XSetAccelerator()
    report = accel.count(load_dataset("WV"), PATTERNS["3CF"])
    print(report.embeddings, report.cycles)
"""

from .errors import (
    AdmissionError,
    CircuitOpenError,
    ClusterError,
    CommClosedError,
    CommError,
    CommTimeoutError,
    ConfigError,
    FaultInjectionError,
    GraphFormatError,
    InjectedCrashError,
    JobCancelledError,
    JobTimeoutError,
    LoadShedError,
    MemoryModelError,
    PatternError,
    PlanError,
    QueueFullError,
    SchedulerError,
    ServiceError,
    SimulationError,
    WorkerCrashError,
    XSetError,
)

__version__ = "1.5.0"

__all__ = [
    "AdmissionError",
    "CircuitOpenError",
    "ClusterError",
    "CommClosedError",
    "CommError",
    "CommTimeoutError",
    "ConfigError",
    "FaultInjectionError",
    "GraphFormatError",
    "InjectedCrashError",
    "JobCancelledError",
    "JobTimeoutError",
    "LoadShedError",
    "MemoryModelError",
    "PatternError",
    "PlanError",
    "QueueFullError",
    "SchedulerError",
    "ServiceError",
    "SimulationError",
    "WorkerCrashError",
    "XSetError",
    "__version__",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the high-level API to keep import cost low."""
    from importlib import import_module

    lazy = {
        "CSRGraph": "repro.graph",
        "load_dataset": "repro.graph",
        "dataset_table": "repro.graph",
        "PATTERNS": "repro.patterns",
        "Pattern": "repro.patterns",
        "MatchingPlan": "repro.patterns",
        "XSetAccelerator": "repro.core",
        "SystemConfig": "repro.core",
        "run_experiment": "repro.core",
        "QueryService": "repro.service",
        "JobHandle": "repro.service",
        "JobStatus": "repro.service",
        "SchedulingConfig": "repro.sched.adaptive",
        "AdmissionPolicy": "repro.sched.adaptive",
        "CostPredictor": "repro.sched.adaptive",
        "CostEstimate": "repro.sched.adaptive",
        "Coordinator": "repro.cluster",
        "LocalCluster": "repro.cluster",
        "ShardWorker": "repro.cluster",
        "ClusterHealth": "repro.cluster",
        "RetryPolicy": "repro.cluster",
        "HedgePolicy": "repro.cluster",
        "ReplicaState": "repro.cluster",
        "HealthProber": "repro.cluster",
        "ResilienceConfig": "repro.resilience",
        "FaultPlan": "repro.resilience",
        "FaultSpec": "repro.resilience",
        "FaultKind": "repro.resilience",
        "HealthState": "repro.resilience",
        "observe": "repro.obs",
        "ExecutionProfile": "repro.obs",
        "MetricsRegistry": "repro.obs",
        "Tracer": "repro.obs",
        "write_chrome_trace": "repro.obs",
        "configure_logging": "repro.obs",
    }
    if name in lazy:
        return getattr(import_module(lazy[name]), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
