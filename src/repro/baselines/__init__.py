"""Baseline systems: CPU/GPU cost models and accelerator comparisons."""

from .accelerators import (
    PUBLISHED_PE_AREA_MM2,
    AcceleratorComparison,
    compare_accelerators,
    compute_density_speedup,
)
from .software import (
    GLUMIN,
    GRAPHPI,
    GRAPHSET,
    BaselineResult,
    CpuBaselineModel,
    GpuBaselineModel,
    run_baseline,
)

__all__ = [
    "GLUMIN",
    "GRAPHPI",
    "GRAPHSET",
    "AcceleratorComparison",
    "BaselineResult",
    "CpuBaselineModel",
    "GpuBaselineModel",
    "PUBLISHED_PE_AREA_MM2",
    "compare_accelerators",
    "compute_density_speedup",
    "run_baseline",
]
