"""Analytical performance models of the software baselines (Figure 12).

The paper measures GraphPi and GraphSet on a 96-core EPYC 9654 and GLUMIN
on an RTX 6000 Ada.  Neither those codebases nor that hardware are available
offline, so each baseline is modelled by executing the *same matching plan*
with the reference executor, counting its dominant operations, and dividing
by a calibrated throughput for the modelled machine:

* **GraphPi** — scalar two-pointer merge intersections across 96 cores.
  Work = merge comparisons; throughput = cores × freq × IPC_eff, bounded by
  the platform's memory bandwidth on the streamed words.
* **GraphSet** — the same plan executed with SIMD set transformations:
  fewer effective cycles per comparison (AVX-512 lanes, bitmap tricks) and a
  higher bandwidth ceiling utilisation, matching its published 2-6× edge
  over GraphPi.
* **GLUMIN** — GPU LUT-based connectivity checks: throughput scales with
  streamed words; effectiveness drops when per-vertex degree exceeds the
  warp-level LUT size (the paper's MI/PA observation) and when the graph is
  too small to saturate the device.

These are *cost models*, not reimplementations of the baselines' planners:
they answer "how long would a well-tuned CPU/GPU system take on this same
work", which is the quantity Figure 12's ratios compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.csr import CSRGraph
from ..patterns.executor import ExecutionStats, count_embeddings
from ..patterns.pattern import Pattern
from ..patterns.plan import MatchingPlan, build_plan

__all__ = [
    "BaselineResult",
    "CpuBaselineModel",
    "GpuBaselineModel",
    "GRAPHPI",
    "GRAPHSET",
    "GLUMIN",
    "run_baseline",
]

WORD_BYTES = 4


@dataclass(frozen=True)
class BaselineResult:
    """Modelled execution of one workload on one baseline system."""

    system: str
    graph_name: str
    pattern_name: str
    seconds: float
    embeddings: int
    compute_seconds: float
    memory_seconds: float

    @property
    def bound(self) -> str:
        return (
            "compute" if self.compute_seconds >= self.memory_seconds
            else "memory"
        )


@dataclass(frozen=True)
class CpuBaselineModel:
    """Comparison-throughput CPU cost model."""

    name: str
    cores: int = 96
    freq_ghz: float = 3.55
    #: effective core cycles per merge comparison — scalar merge loops are
    #: branch-miss dominated (≈1 mispredict per element); SIMD set kernels
    #: amortise to a couple of cycles
    cycles_per_comparison: float = 10.0
    #: fraction of ideal parallel speedup achieved (load imbalance, NUMA)
    parallel_efficiency: float = 0.50
    #: platform memory bandwidth ceiling (GB/s) and achievable fraction
    mem_bandwidth_gbps: float = 921.6
    mem_efficiency: float = 0.35
    #: per-task software overhead in core cycles (call/frame bookkeeping,
    #: candidate-buffer allocation, pruning checks)
    cycles_per_task: float = 300.0

    def estimate(
        self, graph: CSRGraph, plan: MatchingPlan, stats: ExecutionStats
    ) -> BaselineResult:
        agg_hz = self.cores * self.freq_ghz * 1e9 * self.parallel_efficiency
        compute = (
            stats.merge_comparisons * self.cycles_per_comparison
            + stats.tasks * self.cycles_per_task
        ) / agg_hz
        bytes_moved = (stats.words_in + stats.words_out) * WORD_BYTES
        memory = bytes_moved / (
            self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
        )
        return BaselineResult(
            system=self.name,
            graph_name=graph.name,
            pattern_name=plan.pattern.name,
            seconds=max(compute, memory),
            embeddings=stats.embeddings,
            compute_seconds=compute,
            memory_seconds=memory,
        )


@dataclass(frozen=True)
class GpuBaselineModel:
    """LUT-based GPU cost model (GLUMIN)."""

    name: str = "GLUMIN"
    #: peak effective set-op throughput (words/s) with warm LUTs
    peak_words_per_sec: float = 1.1e11
    #: degree beyond which warp-level LUT generation saturates
    lut_degree_limit: int = 512
    #: fixed kernel-launch / LUT-build overhead per run (seconds)
    launch_overhead_s: float = 8.0e-6
    #: utilisation floor for graphs too small to fill the device
    min_words_to_saturate: float = 6.0e5
    mem_bandwidth_gbps: float = 960.0
    mem_efficiency: float = 0.55

    def estimate(
        self, graph: CSRGraph, plan: MatchingPlan, stats: ExecutionStats
    ) -> BaselineResult:
        words = stats.words_in + stats.words_out
        # small workloads cannot saturate the massively-parallel device
        util = min(1.0, 0.25 + 0.75 * words / self.min_words_to_saturate)
        # graphs whose hubs exceed the LUT limit lose warp-level parallelism
        max_deg = int(graph.degrees.max()) if graph.num_vertices else 0
        lut_penalty = 1.35 if max_deg > self.lut_degree_limit else 1.0
        compute = (
            words * lut_penalty / (self.peak_words_per_sec * util)
            + self.launch_overhead_s
        )
        memory = words * WORD_BYTES / (
            self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
        )
        return BaselineResult(
            system=self.name,
            graph_name=graph.name,
            pattern_name=plan.pattern.name,
            seconds=max(compute, memory),
            embeddings=stats.embeddings,
            compute_seconds=compute,
            memory_seconds=memory,
        )


#: GraphPi on the 96-core EPYC (scalar merge kernels)
GRAPHPI = CpuBaselineModel(name="GraphPi")
#: GraphSet: SIMD set-transformation kernels on the same machine
GRAPHSET = CpuBaselineModel(
    name="GraphSet",
    cycles_per_comparison=2.2,
    parallel_efficiency=0.60,
    mem_efficiency=0.45,
    cycles_per_task=110.0,
)
#: GLUMIN on the RTX 6000 Ada
GLUMIN = GpuBaselineModel()


def run_baseline(
    model: CpuBaselineModel | GpuBaselineModel,
    graph: CSRGraph,
    pattern: Pattern,
    plan: MatchingPlan | None = None,
) -> BaselineResult:
    """Execute the plan functionally and price it on ``model``."""
    if plan is None:
        plan = build_plan(pattern)
    stats = count_embeddings(graph, plan)
    return model.estimate(graph, plan, stats)
