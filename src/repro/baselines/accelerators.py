"""Accelerator baseline runs and compute-density accounting (§7.2.2, §7.3).

FlexMiner / FINGERS / Shogun are simulated in their own configurations (see
:mod:`repro.core.config`); this module adds the published per-PE areas used
by the compute-density comparison and a convenience runner that produces the
Figure-13 speedup rows (everything normalised to FlexMiner, as the paper
plots it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import (
    SystemConfig,
    fingers_config,
    flexminer_config,
    shogun_config,
    xset_default,
)
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from ..patterns.plan import MatchingPlan, build_plan
from ..sim.host import run_on_soc
from ..sim.report import SimReport

__all__ = [
    "PUBLISHED_PE_AREA_MM2",
    "AcceleratorComparison",
    "compare_accelerators",
    "compute_density_speedup",
]

#: per-PE area (mm²) as published (Table 4; FlexMiner is 15 nm)
PUBLISHED_PE_AREA_MM2 = {
    "xset": 0.305,
    "fingers": 0.934,
    "shogun": 0.971,
    "flexminer": 0.180,
}


@dataclass
class AcceleratorComparison:
    """Simulated results of all four accelerators on one workload."""

    graph_name: str
    pattern_name: str
    reports: dict[str, SimReport]

    def seconds(self, system: str) -> float:
        return self.reports[system].seconds

    def speedup_over(self, system: str, baseline: str = "flexminer") -> float:
        """End-to-end speedup of ``system`` relative to ``baseline``."""
        return self.seconds(baseline) / self.seconds(system)


def compare_accelerators(
    graph: CSRGraph,
    pattern: Pattern,
    plan: MatchingPlan | None = None,
    systems: dict[str, SystemConfig] | None = None,
) -> AcceleratorComparison:
    """Simulate one workload on X-SET and the three accelerator baselines."""
    if plan is None:
        plan = build_plan(pattern)
    if systems is None:
        systems = {
            "xset": xset_default(),
            "flexminer": flexminer_config(),
            "fingers": fingers_config(),
            "shogun": shogun_config(),
        }
    reports = {
        name: run_on_soc(graph, plan, cfg) for name, cfg in systems.items()
    }
    return AcceleratorComparison(
        graph_name=graph.name,
        pattern_name=plan.pattern.name,
        reports=reports,
    )


def compute_density_speedup(
    comparison: AcceleratorComparison,
    system: str = "xset",
    baseline: str = "fingers",
) -> float:
    """Performance-per-area speedup (§7.3.2).

    Density = 1 / (time × total accelerator area); total area is the
    published per-PE area times the configured PE count.
    """
    sys_report = comparison.reports[system]
    base_report = comparison.reports[baseline]
    sys_area = PUBLISHED_PE_AREA_MM2[system] * (
        sys_report.num_sius // max(_sius_per_pe(system), 1)
    )
    base_area = PUBLISHED_PE_AREA_MM2[baseline] * (
        base_report.num_sius // max(_sius_per_pe(baseline), 1)
    )
    return (base_report.seconds * base_area) / (
        sys_report.seconds * sys_area
    )


def _sius_per_pe(system: str) -> int:
    return {"xset": 4, "flexminer": 1, "fingers": 8, "shogun": 8}[system]
