"""High-level public API: the X-SET accelerator as a library object.

This is what a downstream user touches::

    from repro import XSetAccelerator, load_dataset, PATTERNS

    accel = XSetAccelerator()                       # Table-2 configuration
    report = accel.count(load_dataset("WV"), PATTERNS["3CF"])
    print(report.embeddings, report.seconds)

``count`` runs the full SoC flow (host + RoCC + simulated accelerator) and
returns a :class:`~repro.sim.report.SimReport`; ``enumerate_embeddings``
yields the actual matches via the software reference path (enumeration is a
host-side concern — the accelerator streams results back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..graph.csr import CSRGraph
from ..patterns.executor import enumerate_embeddings as _enum
from ..patterns.pattern import MOTIF3, Pattern
from ..patterns.plan import MatchingPlan, build_plan
from .config import SystemConfig, xset_default

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core<->sim cycle
    from ..sim.report import SimReport

__all__ = ["XSetAccelerator", "count_motifs3"]


class XSetAccelerator:
    """One configured X-SET SoC instance.

    ``engine`` picks the execution backend for ``count``-style runs:
    ``"event"`` (default — cycle-approximate event-driven simulation) or
    ``"batched"`` (vectorised frontier expansion, analytic timing; much
    faster when only counts matter).  See :mod:`repro.engine`.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        engine: str | None = None,
    ) -> None:
        self.config = config or xset_default()
        if engine is not None and engine != self.config.engine:
            self.config = self.config.with_overrides(engine=engine)

    def plan_for(
        self, pattern: Pattern, induced: bool | None = None
    ) -> MatchingPlan:
        """Generate the matching plan the accelerator would be loaded with."""
        return build_plan(pattern, induced=induced)

    def count(
        self,
        graph: CSRGraph,
        pattern: Pattern,
        induced: bool | None = None,
        plan: MatchingPlan | None = None,
        engine: str | None = None,
    ) -> "SimReport":
        """Count embeddings of ``pattern`` in ``graph`` on this accelerator.

        Returns the simulation report: exact count plus cycles, utilisation
        and memory statistics.  ``engine`` overrides the configured
        execution backend for this run only.
        """
        from ..sim.host import run_on_soc

        if plan is None:
            plan = self.plan_for(pattern, induced=induced)
        config = self.config
        if engine is not None and engine != config.engine:
            config = config.with_overrides(engine=engine)
        return run_on_soc(graph, plan, config)

    def enumerate(
        self, graph: CSRGraph, pattern: Pattern, induced: bool | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Yield each embedding once (canonical under symmetry breaking).

        Tuples are ordered by plan level; ``plan.order[i]`` says which
        pattern vertex position ``i`` corresponds to.
        """
        plan = build_plan(pattern, induced=induced, collection="enumerate")
        yield from _enum(graph, plan)

    def count_many(
        self,
        graph: CSRGraph,
        patterns: list[Pattern],
        parallel: bool = False,
        mode: str = "process",
        max_workers: int | None = None,
    ) -> dict[str, "SimReport"]:
        """Run several patterns (multi-pattern workloads such as 3MF).

        With ``parallel=True`` the batch runs through a transient
        :class:`~repro.service.QueryService`: the graph is registered
        once, one job per pattern flows through the worker pool (``mode``
        picks process/thread/inline execution) and the reports come back
        in pattern order.  Counts are identical to the sequential path —
        the service runs the same engine via the same functional layer.
        """
        if not parallel:
            return {p.name: self.count(graph, p) for p in patterns}
        from ..service import QueryService

        with QueryService(
            self.config, mode=mode, max_workers=max_workers
        ) as service:
            graph_id = service.register_graph(graph)
            return service.count_many(graph_id, patterns)


def count_motifs3(
    graph: CSRGraph, config: SystemConfig | None = None
) -> dict[str, int]:
    """3-motif finding (3MF): induced triangle and wedge counts.

    Runs the triangle (non-induced == induced for cliques) and the induced
    wedge plan on the accelerator; the host-side transformation is the
    identity here because the wedge plan is already induced.
    """
    accel = XSetAccelerator(config)
    tri, wedge = MOTIF3
    reports = accel.count_many(graph, [tri, wedge])
    return {
        "triangle": reports[tri.name].embeddings,
        "wedge": reports[wedge.name].embeddings,
    }
