"""System configurations (paper Table 2) and baseline accelerator presets.

A :class:`SystemConfig` fully describes one simulated accelerator: PE count,
SIU microarchitecture and width, scheduler policy, BitmapCSR width and the
memory subsystem.  Presets reproduce the configurations compared in the
evaluation: X-SET's default, plus FlexMiner / FINGERS / Shogun as published
(40/20/20 PEs, merge-queue SIUs, their respective schedulers, DDR4-2666).
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field, fields, is_dataclass, replace

from ..engine.base import available_engines
from ..errors import ConfigError
from ..memory.dram import DRAMConfig
from ..memory.hierarchy import MemoryConfig

__all__ = [
    "SystemConfig",
    "xset_default",
    "flexminer_config",
    "fingers_config",
    "shogun_config",
    "config_table",
]


@dataclass(frozen=True)
class SystemConfig:
    """Full accelerator configuration."""

    name: str = "xset"
    num_pes: int = 16
    sius_per_pe: int = 4
    siu_kind: str = "order-aware"          # "order-aware" | "merge" | "sma"
    segment_width: int = 8
    bitmap_width: int = 8
    scheduler: str = "barrier-free"        # see repro.sched.make_scheduler
    scheduler_params: dict = field(default_factory=dict)
    num_task_sets: int = 96
    task_set_width: int = 4
    private_kb: int = 32
    shared_mb: float = 4.0
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    frequency_ghz: float = 1.0
    #: deepest pattern level handled in hardware; deeper levels fall back to
    #: the host RISC-V core (paper §4.2 "patterns with arbitrary size")
    max_hw_levels: int = 8
    #: per-task management overhead in cycles.  X-SET's Fast Spawning
    #: Register + candidate-buffer prefetch (Fig. 10) make spawning free;
    #: baselines manage task frames in software / task dividers.
    task_overhead_cycles: int = 0
    #: root-vertex distribution across PEs: "round-robin" (the paper's
    #: streaming order) or "degree-balanced" (greedy bin packing by degree,
    #: a load-balancing extension for skewed graphs)
    root_partition: str = "round-robin"
    #: execution engine: "event" (cycle-approximate event-driven
    #: simulation), "batched" (vectorised frontier expansion with analytic
    #: timing), "codegen" (plan-compiled NumPy kernels, same counts and
    #: timing model as batched) or "auto" (resolved per run from predicted
    #: cost and breaker state — see repro.sched.adaptive; every backend
    #: returns byte-identical counts, so auto never changes a result)
    engine: str = "event"
    #: number of query-cluster shards (repro.cluster); 0 = single node,
    #: no cluster layer involved
    cluster_shards: int = 0
    #: halo depth replicated around each shard's owned vertex range.  Must
    #: be >= the deepest plan's stop level for exact per-root counts; the
    #: coordinator validates this per query.
    cluster_halo_hops: int = 4
    #: workers per shard group (repro.cluster.replication); 1 = no
    #: replication, >= 2 buys automatic failover on replica death
    cluster_replicas: int = 1

    def __post_init__(self) -> None:
        if self.num_pes < 1 or self.sius_per_pe < 1:
            raise ConfigError("PE/SIU counts must be positive")
        if self.cluster_shards < 0:
            raise ConfigError("cluster_shards must be >= 0")
        if self.cluster_halo_hops < 1:
            raise ConfigError("cluster_halo_hops must be >= 1")
        if self.cluster_replicas < 1:
            raise ConfigError("cluster_replicas must be >= 1")
        if self.segment_width & (self.segment_width - 1):
            raise ConfigError("segment_width must be a power of two")
        if self.root_partition not in ("round-robin", "degree-balanced"):
            raise ConfigError(
                f"unknown root partition {self.root_partition!r}"
            )
        if self.engine != "auto" and self.engine not in available_engines():
            raise ConfigError(
                f"unknown execution engine {self.engine!r}; "
                f"available: auto, {', '.join(available_engines())}"
            )

    def memory_config(self) -> MemoryConfig:
        return MemoryConfig(
            num_pes=self.num_pes,
            private_kb=self.private_kb,
            shared_mb=self.shared_mb,
            dram=self.dram,
        )

    def scheduler_kwargs(self) -> dict:
        params = dict(self.scheduler_params)
        if self.scheduler in ("barrier-free", "shogun"):
            params.setdefault("num_task_sets", self.num_task_sets)
            params.setdefault("task_set_width", self.task_set_width)
        elif self.scheduler == "dfs":
            # conventional DFS runs one independent walk per SIU
            params.setdefault("lanes", self.sius_per_pe)
        return params

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Copy with fields replaced (used by the sweep benchmarks).

        Runs the full ``__post_init__`` validation, so bad values — e.g.
        ``engine="nope"`` — raise :class:`~repro.errors.ConfigError`
        eagerly instead of failing deep inside a run.
        """
        return replace(self, **kwargs)

    def cache_key(self) -> tuple:
        """Stable hashable projection of every configuration field.

        The service result cache keys on this: embedding *counts* only
        depend on the workload, but a cached :class:`SimReport` also
        carries timing/utilisation numbers, so any knob that could change
        the report (engine, PE count, memory subsystem, ...) must be part
        of the key.  Nested dataclasses flatten to tuples and dict params
        to sorted item tuples so the result is hashable and
        order-insensitive.
        """
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if is_dataclass(value):
                value = (type(value).__name__,) + astuple(value)
            elif isinstance(value, dict):
                value = tuple(sorted(value.items()))
            parts.append((f.name, value))
        return tuple(parts)


def xset_default(**overrides) -> SystemConfig:
    """The paper's Table 2 configuration."""
    cfg = SystemConfig()
    return cfg.with_overrides(**overrides) if overrides else cfg


def _baseline_dram() -> DRAMConfig:
    # FlexMiner/FINGERS/Shogun use 4-channel DDR4-2666 (85 GB/s peak)
    return DRAMConfig(bytes_per_cycle_per_channel=21.3)


def flexminer_config(**overrides) -> SystemConfig:
    """FlexMiner: 40 PEs, one merge-queue SIU each, DFS scheduling."""
    cfg = SystemConfig(
        name="flexminer",
        num_pes=40,
        sius_per_pe=1,
        siu_kind="merge",
        segment_width=1,
        bitmap_width=0,
        scheduler="dfs",
        dram=_baseline_dram(),
        task_overhead_cycles=4,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def fingers_config(**overrides) -> SystemConfig:
    """FINGERS: 20 PEs, fine-grained merge SIUs, pseudo-DFS windows."""
    cfg = SystemConfig(
        name="fingers",
        num_pes=20,
        sius_per_pe=8,
        siu_kind="merge",
        segment_width=1,
        bitmap_width=0,
        scheduler="pseudo-dfs",
        scheduler_params={"window": 8},
        dram=_baseline_dram(),
        task_overhead_cycles=4,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def shogun_config(**overrides) -> SystemConfig:
    """Shogun: 20 PEs, merge SIUs, incremental OoO + locality barriers."""
    cfg = SystemConfig(
        name="shogun",
        num_pes=20,
        sius_per_pe=8,
        siu_kind="merge",
        segment_width=1,
        bitmap_width=0,
        scheduler="shogun",
        dram=_baseline_dram(),
        task_overhead_cycles=4,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def config_table(config: SystemConfig | None = None) -> str:
    """Render the Table-2-style configuration summary."""
    cfg = config or xset_default()
    mem = cfg.memory_config()
    rows = [
        ("#PE", str(cfg.num_pes)),
        (
            "SIU",
            f"{cfg.sius_per_pe} x {cfg.siu_kind} per PE, "
            f"input width {cfg.segment_width}",
        ),
        (
            "Scheduler",
            f"{cfg.scheduler} (TaskSet width {cfg.task_set_width}, "
            f"#TaskSet {cfg.num_task_sets})",
        ),
        ("BitmapCSR width", str(cfg.bitmap_width)),
        (
            "Private Cache",
            f"{cfg.private_kb}KB per PE, LRU, "
            f"{mem.private_banks} banks, {mem.private_ways} ways",
        ),
        (
            "Shared Cache",
            f"{cfg.shared_mb}MB total, LRU, "
            f"{mem.shared_banks} banks, {mem.shared_ways} ways",
        ),
        (
            "Main Memory",
            f"{cfg.dram.channels} channel, "
            f"{cfg.dram.peak_bandwidth_gbps:.2f} GB/s, "
            f"CL-tRCD-tRP {cfg.dram.cl}-{cfg.dram.trcd}-{cfg.dram.trp}",
        ),
        ("Frequency", f"{cfg.frequency_ghz} GHz"),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
