"""Core public API: accelerator object, system configurations, experiments."""

from .api import XSetAccelerator, count_motifs3
from .incremental import IncrementalGPM, pattern_diameter
from .config import (
    SystemConfig,
    config_table,
    fingers_config,
    flexminer_config,
    shogun_config,
    xset_default,
)

__all__ = [
    "IncrementalGPM",
    "SystemConfig",
    "pattern_diameter",
    "XSetAccelerator",
    "config_table",
    "count_motifs3",
    "fingers_config",
    "flexminer_config",
    "shogun_config",
    "xset_default",
]
