"""Incremental pattern counting on dynamic graphs (paper §2.1 scenario).

The paper motivates fixed-pattern GPM on *dynamic* data graphs — social
networks and transaction graphs evolve while the watched patterns stay the
same.  Recounting from scratch per update wastes the accelerator;
:class:`IncrementalGPM` instead maintains the count under edge insertions
and deletions by counting only embeddings that *use the updated edge*.

Every embedding containing edge ``(u, v)`` lies inside the ball of radius
``diameter(P)`` around ``{u, v}``, so the delta is computed as the count
difference on that induced neighbourhood — exact, and local for the sparse
graphs GPM targets.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import GraphFormatError
from ..graph.csr import CSRGraph
from ..patterns.executor import count_embeddings
from ..patterns.pattern import Pattern
from ..patterns.plan import MatchingPlan, build_plan

__all__ = ["IncrementalGPM", "pattern_diameter"]


def pattern_diameter(pattern: Pattern) -> int:
    """Longest shortest path in the (connected) pattern graph."""
    best = 0
    for source in range(pattern.num_vertices):
        dist = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for w in pattern.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        best = max(best, max(dist.values()))
    return best


class IncrementalGPM:
    """Maintains an exact pattern count across edge updates.

    ``on_update`` is an optional observer called *after* every applied
    insertion/deletion as ``on_update(self, u, v, inserted, delta)``.  The
    service layer hooks this to invalidate (or delta-patch) cached results
    whose graph changed — see ``QueryService.dynamic_session``.
    """

    def __init__(self, graph: CSRGraph, pattern: Pattern,
                 induced: bool | None = None,
                 on_update=None) -> None:
        self.pattern = pattern
        self.plan: MatchingPlan = build_plan(pattern, induced=induced)
        self._radius = pattern_diameter(pattern)
        self._adj: list[set[int]] = [
            set(int(w) for w in graph.neighbors(v))
            for v in range(graph.num_vertices)
        ]
        self.count = count_embeddings(graph, self.plan).embeddings
        self.updates_applied = 0
        self.on_update = on_update

    # -- graph bookkeeping ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def _check(self, u: int, v: int) -> None:
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise GraphFormatError(f"edge ({u},{v}) out of range")
        if u == v:
            raise GraphFormatError("self loops are not allowed")

    def _ball(self, u: int, v: int) -> list[int]:
        """Vertices within pattern-diameter hops of the updated edge."""
        seen = {u, v}
        frontier = [u, v]
        for _ in range(self._radius):
            nxt = []
            for x in frontier:
                for y in self._adj[x]:
                    if y not in seen:
                        seen.add(y)
                        nxt.append(y)
            frontier = nxt
        return sorted(seen)

    def _ball_graph(self, ball: list[int]) -> tuple[CSRGraph, dict[int, int]]:
        rank = {v: i for i, v in enumerate(ball)}
        edges = []
        for v in ball:
            for w in self._adj[v]:
                if w in rank and v < w:
                    edges.append((rank[v], rank[w]))
        return CSRGraph.from_edges(len(ball), edges, name="ball"), rank

    def _count_ball(self, ball: list[int]) -> int:
        graph, _ = self._ball_graph(ball)
        return count_embeddings(graph, self.plan).embeddings

    # -- updates ----------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> int:
        """Add an edge; returns the (non-negative) count delta."""
        self._check(u, v)
        if self.has_edge(u, v):
            return 0
        self._adj[u].add(v)
        self._adj[v].add(u)
        ball = self._ball(u, v)
        after = self._count_ball(ball)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        before = self._count_ball(ball)
        self._adj[u].add(v)
        self._adj[v].add(u)
        delta = after - before
        self.count += delta
        self.updates_applied += 1
        if self.on_update is not None:
            self.on_update(self, u, v, True, delta)
        return delta

    def remove_edge(self, u: int, v: int) -> int:
        """Remove an edge; returns the (non-positive) count delta."""
        self._check(u, v)
        if not self.has_edge(u, v):
            return 0
        ball = self._ball(u, v)  # ball while the edge still exists
        before = self._count_ball(ball)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        after = self._count_ball(ball)
        delta = after - before
        self.count += delta
        self.updates_applied += 1
        if self.on_update is not None:
            self.on_update(self, u, v, False, delta)
        return delta

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> CSRGraph:
        """Materialise the current graph as an immutable CSR snapshot."""
        edges = [
            (u, w)
            for u in range(self.num_vertices)
            for w in self._adj[u]
            if u < w
        ]
        return CSRGraph.from_edges(self.num_vertices, edges, name="dynamic")
