"""Workload energy model: joins the power model with simulation reports.

Dynamic energy is driven by the activity counters the simulator already
collects (comparator operations, words streamed through each memory level,
DRAM traffic); static energy is leakage power times the makespan.  This
gives the energy-per-embedding and energy-breakdown views an accelerator
paper's artifact typically ships alongside the area numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import SystemConfig
from ..memory.cacti import estimate_sram
from ..sim.report import SimReport
from .area import POWER_COMPARATOR_MW, pe_area_breakdown

__all__ = ["EnergyReport", "estimate_energy"]

#: energy per 64-byte DRAM transfer (pJ) — DDR4 ballpark at ~20 pJ/bit I/O
DRAM_PJ_PER_LINE = 2200.0
#: energy per comparator operation (pJ) at 1 GHz: P[mW] × 1ns = pJ
COMPARATOR_PJ = POWER_COMPARATOR_MW  # numerically equal at 1 GHz
#: leakage density (mW per mm², matches repro.hw.area)
LEAKAGE_MW_PER_MM2 = 9.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated run (all values in microjoules)."""

    compute_uj: float
    private_cache_uj: float
    shared_cache_uj: float
    dram_uj: float
    leakage_uj: float
    embeddings: int

    @property
    def total_uj(self) -> float:
        return (
            self.compute_uj
            + self.private_cache_uj
            + self.shared_cache_uj
            + self.dram_uj
            + self.leakage_uj
        )

    @property
    def nj_per_embedding(self) -> float:
        if self.embeddings == 0:
            return float("inf")
        return self.total_uj * 1e3 / self.embeddings

    def breakdown(self) -> dict[str, float]:
        return {
            "compute": self.compute_uj,
            "private$": self.private_cache_uj,
            "shared$": self.shared_cache_uj,
            "dram": self.dram_uj,
            "leakage": self.leakage_uj,
        }


def estimate_energy(
    report: SimReport, config: SystemConfig
) -> EnergyReport:
    """Energy of a simulated run under ``config``'s hardware parameters."""
    # datapath: one comparator-op costs COMPARATOR_PJ
    pj_compute = report.comparisons * COMPARATOR_PJ

    priv = estimate_sram(config.private_kb * 1024)
    shared = estimate_sram(int(config.shared_mb * 1024 * 1024))
    priv_accesses = report.private_hits + report.private_misses
    shared_accesses = report.shared_hits + report.shared_misses
    pj_private = priv_accesses * priv.dynamic_pj_per_access
    pj_shared = shared_accesses * shared.dynamic_pj_per_access
    pj_dram = (report.dram_bytes / 64.0) * DRAM_PJ_PER_LINE

    # leakage: PE area × PE count × makespan (cycles ≈ ns at 1 GHz)
    pe_mm2 = pe_area_breakdown(
        siu_kind=config.siu_kind,
        segment_width=max(config.segment_width, 2),
        sius_per_pe=config.sius_per_pe,
        private_kb=config.private_kb,
        num_task_sets=config.num_task_sets,
        task_set_width=config.task_set_width,
    )["total"]
    leak_mw = LEAKAGE_MW_PER_MM2 * pe_mm2 * config.num_pes
    pj_leak = leak_mw * (report.cycles / config.frequency_ghz)  # mW × ns = pJ

    return EnergyReport(
        compute_uj=pj_compute * 1e-6,
        private_cache_uj=pj_private * 1e-6,
        shared_cache_uj=pj_shared * 1e-6,
        dram_uj=pj_dram * 1e-6,
        leakage_uj=pj_leak * 1e-6,
        embeddings=report.embeddings,
    )
