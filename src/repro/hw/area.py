"""Component-count area/power model for SIUs, scheduler and PE (28 nm, 1 GHz).

Stands in for the paper's Synopsys DC + TSMC 28 nm synthesis flow.  Every
estimate is built from microarchitectural component counts — comparators,
pipeline registers, FIFO/SRAM bits — which we know exactly for each SIU
design, times per-component area/energy constants calibrated against the
paper's published numbers (Table 4: compute 0.077 mm² for 4 order-aware
SIUs at N=8, scheduler 0.044 mm², total PE 0.305 mm²).  The *relative*
numbers across designs and segment widths (Figure 15) follow from the
counts: ``N log N`` versus ``N²``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..memory.cacti import estimate_sram

__all__ = [
    "AreaPower",
    "siu_area_power",
    "scheduler_area_power",
    "pe_area_breakdown",
    "THEORY_TABLE",
    "theory_table_rows",
]

# -- calibrated 28 nm component constants -------------------------------------
#: mm² per comparator-equivalent datapath slice — a 32-bit compare plus its
#: share of CAS muxing, match-flag logic and BitmapCSR combine (calibrated so
#: 4 order-aware SIUs at N=8 synthesise to the paper's 0.077 mm²)
AREA_COMPARATOR_MM2 = 5.5e-4
#: mm² per pipeline register bit (flip-flop + clocking overhead)
AREA_REGBIT_MM2 = 8.0e-7
#: mm² per FIFO/SRAM buffer bit
AREA_FIFOBIT_MM2 = 6.0e-7
#: fixed systolic-array timing/control block, in comparator-equivalents
SMA_CONTROL_SLICES = 5.0
#: weight of a compact-stage latch/mux relative to a comparator slice
COMPACT_WEIGHT = 0.25
#: dynamic power per active comparator slice at 1 GHz full toggle (mW)
POWER_COMPARATOR_MW = 0.030
#: dynamic power per active register bit (mW)
POWER_REGBIT_MW = 3.2e-5
#: leakage per mm² (mW)
POWER_LEAKAGE_MW_PER_MM2 = 9.0

ELEMENT_BITS = 32
INPUT_FIFO_DEPTH = 4


@dataclass(frozen=True)
class AreaPower:
    """Area (mm²) and power (mW) broken into the Figure 15 categories."""

    input_mm2: float
    pipeline_mm2: float
    output_mm2: float
    input_mw: float
    pipeline_mw: float
    output_mw: float

    @property
    def total_mm2(self) -> float:
        return self.input_mm2 + self.pipeline_mm2 + self.output_mm2

    @property
    def total_mw(self) -> float:
        return self.input_mw + self.pipeline_mw + self.output_mw


def _siu_components(kind: str, n: int) -> tuple[float, float]:
    """(comparator-equivalents, pipeline register bits) of the core pipeline."""
    if kind == "merge":
        return 1.5, ELEMENT_BITS * 4          # one comparator + few registers
    if n < 2 or n & (n - 1):
        raise ConfigError("segment width must be a power of two >= 2")
    log_n = int(math.log2(n))
    if kind == "order-aware":
        comparators = n + (n // 2) * log_n + 1
        compactors = COMPACT_WEIGHT * n * log_n   # tree reducer muxes
        stages = 2 + 2 * log_n
        regbits = ELEMENT_BITS * n * stages
        return comparators + compactors, regbits
    if kind == "sma":
        comparators = n * n + SMA_CONTROL_SLICES
        compactors = COMPACT_WEIGHT * (n * n / 2)  # output compact triangle
        stages = 2 * n
        regbits = ELEMENT_BITS * n * stages
        return comparators + compactors, regbits
    raise ConfigError(f"unknown SIU kind {kind!r}")


def siu_area_power(kind: str, segment_width: int) -> AreaPower:
    """Area/power of one SIU, split input / pipeline / output (Figure 15)."""
    n = segment_width if kind != "merge" else 1
    cmp_eq, regbits = _siu_components(kind, max(n, 2))
    # input: 2 sets × N FIFOs × depth × 32b (double-buffered)
    in_bits = 2 * max(n, 1) * INPUT_FIFO_DEPTH * ELEMENT_BITS * 2
    # output: 2N-entry circular buffer, double-buffered
    out_bits = 2 * max(n, 1) * ELEMENT_BITS * 2
    input_mm2 = in_bits * AREA_FIFOBIT_MM2
    output_mm2 = out_bits * AREA_FIFOBIT_MM2
    pipeline_mm2 = cmp_eq * AREA_COMPARATOR_MM2 + regbits * AREA_REGBIT_MM2
    # dynamic power assumes full-throughput operation; leakage tracks area
    input_mw = in_bits * POWER_REGBIT_MW + POWER_LEAKAGE_MW_PER_MM2 * input_mm2
    output_mw = (
        out_bits * POWER_REGBIT_MW + POWER_LEAKAGE_MW_PER_MM2 * output_mm2
    )
    pipeline_mw = (
        cmp_eq * POWER_COMPARATOR_MW
        + regbits * POWER_REGBIT_MW
        + POWER_LEAKAGE_MW_PER_MM2 * pipeline_mm2
    )
    return AreaPower(
        input_mm2=input_mm2,
        pipeline_mm2=pipeline_mm2,
        output_mm2=output_mm2,
        input_mw=input_mw,
        pipeline_mw=pipeline_mw,
        output_mw=output_mw,
    )


def scheduler_area_power(
    num_task_sets: int = 96, task_set_width: int = 4, cbuf_entries: int = 48
) -> tuple[float, float]:
    """(mm², mW) of the barrier-free scheduler storage + control.

    Each Task Set holds a frame, a fast-spawning register, per-subtask
    status and a candidate-buffer index (Figure 10b); each CBuf item holds
    address/length metadata plus a ping-pong segment buffer (Figure 10c).
    """
    task_set_bits = (
        64                       # frame: intermediate set addr/len + vertex
        + ELEMENT_BITS           # FSR
        + 8                      # CBuf index + valid
        + task_set_width * (ELEMENT_BITS + 8)
    )
    cbuf_bits = 64 + 2 * 8 * ELEMENT_BITS  # metadata + ping-pong of 8 words
    bits = num_task_sets * task_set_bits + cbuf_entries * cbuf_bits
    control_mm2 = 0.012  # issue/commit logic, fixed
    area = bits * AREA_FIFOBIT_MM2 + control_mm2
    power = bits * POWER_REGBIT_MW * 0.25 + POWER_LEAKAGE_MW_PER_MM2 * area
    return area, power


def pe_area_breakdown(
    siu_kind: str = "order-aware",
    segment_width: int = 8,
    sius_per_pe: int = 4,
    private_kb: int = 32,
    num_task_sets: int = 96,
    task_set_width: int = 4,
) -> dict[str, float]:
    """Table-4-style PE area breakdown in mm² (28 nm)."""
    siu = siu_area_power(siu_kind, segment_width)
    compute = sius_per_pe * siu.total_mm2
    control, _ = scheduler_area_power(num_task_sets, task_set_width)
    cache = estimate_sram(private_kb * 1024).area_mm2
    other = 0.010  # memory requester + RoCC glue
    return {
        "control": control,
        "compute": compute,
        "cache": cache,
        "other": other,
        "total": control + compute + cache + other,
    }


#: Table 1 rows: (architecture, throughput, latency, comparators) as formulas
THEORY_TABLE = (
    ("Merge Queue", "1", "O(1)", "O(1)"),
    ("Systolic Array", "N", "O(N)", "O(N^2)"),
    ("Order-Aware (ours)", "N", "O(log N)", "O(N log N)"),
)


def theory_table_rows(segment_width: int = 8) -> list[dict[str, object]]:
    """Table 1 with concrete numbers for a given ``N`` next to the formulas."""
    from ..siu.models import make_siu

    rows = []
    for kind, (label, thr, lat, res) in zip(
        ("merge", "sma", "order-aware"), THEORY_TABLE
    ):
        model = make_siu(kind, segment_width if kind != "merge" else 1)
        rows.append(
            {
                "architecture": label,
                "throughput": thr,
                "latency": lat,
                "resource": res,
                "throughput_n": model.throughput,
                "latency_n": model.pipeline_depth,
                "comparators_n": model.comparator_count,
            }
        )
    return rows
