"""Hardware area/power models (28 nm) and the Table-1 theory comparison."""

from .energy import EnergyReport, estimate_energy
from .area import (
    THEORY_TABLE,
    AreaPower,
    pe_area_breakdown,
    scheduler_area_power,
    siu_area_power,
    theory_table_rows,
)

__all__ = [
    "EnergyReport",
    "THEORY_TABLE",
    "estimate_energy",
    "AreaPower",
    "pe_area_breakdown",
    "scheduler_area_power",
    "siu_area_power",
    "theory_table_rows",
]
