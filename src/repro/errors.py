"""Exception hierarchy for the X-SET reproduction library.

Every error raised deliberately by this package derives from
:class:`XSetError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class XSetError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(XSetError):
    """An input graph is malformed (unsorted rows, bad indices, ...)."""


class PatternError(XSetError):
    """A pattern graph or matching plan is invalid."""


class PlanError(PatternError):
    """A matching plan could not be generated or compiled."""


class ConfigError(XSetError):
    """A hardware/simulator configuration is inconsistent."""


class SimulationError(XSetError):
    """The event-driven simulator reached an inconsistent state."""


class SchedulerError(SimulationError):
    """A task scheduler violated one of its structural invariants."""


class MemoryModelError(SimulationError):
    """The cache/DRAM model was asked to do something impossible."""


class ServiceError(XSetError):
    """The query service could not accept, run or deliver a job."""


class QueueFullError(ServiceError):
    """The service's bounded job queue is full (backpressure signal).

    Callers should retry later or shed load; the service never blocks a
    submitter waiting for queue space.
    """


class JobTimeoutError(ServiceError):
    """A job's deadline expired before the service could run it."""


class JobCancelledError(ServiceError):
    """The result of a cancelled job was requested."""


class WorkerCrashError(ServiceError):
    """A pool worker died while running a job (retries exhausted)."""


class LoadShedError(ServiceError):
    """An overloaded service shed this low-priority submission.

    Raised at submit time while the service is in the OVERLOADED
    degradation state; retry later or resubmit with a higher priority
    (lower priority value).
    """


class AdmissionError(ServiceError):
    """Admission control rejected this submission at the door.

    Raised at submit time when the query's projected completion — queue
    backlog drain plus its own predicted cost — cannot meet the caller's
    deadline.  Unlike :class:`LoadShedError` this is a per-query, cost-
    model-informed decision: resubmit with a longer deadline, a lighter
    pattern, or wait for the backlog to drain.
    """


class CircuitOpenError(ServiceError):
    """The target engine's circuit breaker is open and no fallback ran."""


class FaultInjectionError(ServiceError):
    """A fault plan or spec is malformed (resilience test harness)."""


class ClusterError(ServiceError):
    """The sharded query cluster could not complete an operation."""


class CommError(ClusterError):
    """A cluster comm-layer failure (transport, framing, addressing)."""


class CommClosedError(CommError):
    """The peer is gone: connection refused, reset or listener closed."""


class CommTimeoutError(CommError):
    """A cluster request did not complete within its timeout."""


class InjectedCrashError(WorkerCrashError):
    """A deterministic injected worker crash (chaos testing).

    Subclasses :class:`WorkerCrashError` so the service's retry /
    breaker paths treat it exactly like a real dying worker.  Carries
    the fault ``site`` so the service can label its fault counters.
    """

    def __init__(self, site: str = "worker.run") -> None:
        super().__init__(f"injected worker crash at {site!r}")
        self.site = site

    def __reduce__(self):  # keep ``site`` across process-pool pickling
        return (type(self), (self.site,))
