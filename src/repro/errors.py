"""Exception hierarchy for the X-SET reproduction library.

Every error raised deliberately by this package derives from
:class:`XSetError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class XSetError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(XSetError):
    """An input graph is malformed (unsorted rows, bad indices, ...)."""


class PatternError(XSetError):
    """A pattern graph or matching plan is invalid."""


class PlanError(PatternError):
    """A matching plan could not be generated or compiled."""


class ConfigError(XSetError):
    """A hardware/simulator configuration is inconsistent."""


class SimulationError(XSetError):
    """The event-driven simulator reached an inconsistent state."""


class SchedulerError(SimulationError):
    """A task scheduler violated one of its structural invariants."""


class MemoryModelError(SimulationError):
    """The cache/DRAM model was asked to do something impossible."""
