"""Gather-side report merging: shard reports → one cluster report.

Counts (embeddings, tasks, set ops, comparisons, words, DRAM traffic,
cache hits/misses) are *work* and sum across shards.  Cycles and wall
time are *makespan* and take the maximum — the shards ran in parallel,
so the cluster is as slow as its slowest shard.  Utilisation-bearing
fields (``siu_busy_cycles``, ``num_sius``) sum, which keeps the derived
``siu_utilization`` a system-wide mean over every SIU in the cluster.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ClusterError
from ..sim.report import SimReport

__all__ = ["merge_reports"]

#: fields that add up (work done somewhere is work done)
_SUM_FIELDS = (
    "embeddings",
    "tasks",
    "set_ops",
    "comparisons",
    "words_in",
    "words_out",
    "siu_busy_cycles",
    "num_sius",
    "private_hits",
    "private_misses",
    "shared_hits",
    "shared_misses",
    "dram_bytes",
)

#: fields where the cluster is as slow/deep as its worst shard
_MAX_FIELDS = (
    "cycles",
    "host_cycles",
    "wall_seconds",
    "peak_active_task_sets",
)


def merge_reports(
    reports: Sequence[SimReport],
    graph_name: str = "",
    pattern_name: str = "",
) -> SimReport:
    """Fold per-shard reports into one cluster-level :class:`SimReport`."""
    if not reports:
        raise ClusterError("cannot merge zero shard reports")
    merged = SimReport(
        config_name=reports[0].config_name,
        graph_name=graph_name or reports[0].graph_name,
        pattern_name=pattern_name or reports[0].pattern_name,
        frequency_ghz=reports[0].frequency_ghz,
        num_sius=0,  # accumulator start (the dataclass default is 1)
    )
    for report in reports:
        for name in _SUM_FIELDS:
            setattr(merged, name, getattr(merged, name) + getattr(report, name))
        for name in _MAX_FIELDS:
            setattr(merged, name, max(getattr(merged, name), getattr(report, name)))
        merged.per_pe_busy.extend(report.per_pe_busy)
    return merged
