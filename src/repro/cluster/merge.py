"""Gather-side report merging: shard reports → one cluster report.

Counts (embeddings, tasks, set ops, comparisons, words, DRAM traffic,
cache hits/misses) are *work* and sum across shards.  Cycles and wall
time are *makespan* and take the maximum — the shards ran in parallel,
so the cluster is as slow as its slowest shard.  Utilisation-bearing
fields (``siu_busy_cycles``, ``num_sius``) sum, which keeps the derived
``siu_utilization`` a system-wide mean over every SIU in the cluster.

Replication adds an *exactly-once* obligation the plain fold cannot
see: with replica groups, two workers legitimately hold the **same**
owned root range, and a retried or hedged subquery can produce two
correct answers for it.  Summing both would double-count every
embedding rooted in that range — silently, since the merged total still
"looks like a number".  The range-tagged entry points guard against
this:

* :func:`dedupe_replies` — first answer per root range wins, later
  duplicates are dropped (with a callback so the coordinator can count
  them: hedged losers are *expected* duplicates, not bugs);
* :func:`merge_replies` — refuses duplicate or overlapping ranges with
  a typed :class:`~repro.errors.ClusterError`; the last line of defence
  right before the fold.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ClusterError
from ..sim.report import SimReport

__all__ = ["merge_reports", "merge_replies", "dedupe_replies"]

#: one range-tagged shard answer: ((lo, hi) owned root range, report)
Reply = tuple[tuple[int, int], SimReport]

#: fields that add up (work done somewhere is work done)
_SUM_FIELDS = (
    "embeddings",
    "tasks",
    "set_ops",
    "comparisons",
    "words_in",
    "words_out",
    "siu_busy_cycles",
    "num_sius",
    "private_hits",
    "private_misses",
    "shared_hits",
    "shared_misses",
    "dram_bytes",
)

#: fields where the cluster is as slow/deep as its worst shard
_MAX_FIELDS = (
    "cycles",
    "host_cycles",
    "wall_seconds",
    "peak_active_task_sets",
)


def merge_reports(
    reports: Sequence[SimReport],
    graph_name: str = "",
    pattern_name: str = "",
) -> SimReport:
    """Fold per-shard reports into one cluster-level :class:`SimReport`."""
    if not reports:
        raise ClusterError("cannot merge zero shard reports")
    merged = SimReport(
        config_name=reports[0].config_name,
        graph_name=graph_name or reports[0].graph_name,
        pattern_name=pattern_name or reports[0].pattern_name,
        frequency_ghz=reports[0].frequency_ghz,
        num_sius=0,  # accumulator start (the dataclass default is 1)
    )
    for report in reports:
        for name in _SUM_FIELDS:
            setattr(merged, name, getattr(merged, name) + getattr(report, name))
        for name in _MAX_FIELDS:
            setattr(merged, name, max(getattr(merged, name), getattr(report, name)))
        merged.per_pe_busy.extend(report.per_pe_busy)
    return merged


def dedupe_replies(
    replies: Sequence[Reply],
    on_duplicate: "Callable[[tuple[int, int], SimReport], None] | None" = None,
) -> list[Reply]:
    """Keep the first answer per root range; drop later duplicates.

    The expected source of duplicates is a hedged subquery whose loser
    replica also answered — a correct reply that must still be thrown
    away.  ``on_duplicate`` receives each dropped ``(range, report)``
    so the caller can increment its duplicate counter.  Only *exact*
    range duplicates are deduped: overlapping-but-unequal ranges are a
    partitioning bug, not a race, and are left for
    :func:`merge_replies` to reject loudly.
    """
    seen: set[tuple[int, int]] = set()
    kept: list[Reply] = []
    for rng, report in replies:
        key = (int(rng[0]), int(rng[1]))
        if key in seen:
            if on_duplicate is not None:
                on_duplicate(key, report)
            continue
        seen.add(key)
        kept.append((key, report))
    return kept


def merge_replies(
    replies: Sequence[Reply],
    graph_name: str = "",
    pattern_name: str = "",
) -> SimReport:
    """Exactly-once fold of range-tagged replies into one report.

    Raises :class:`~repro.errors.ClusterError` if any owned root range
    appears twice or two ranges overlap — either would double-count
    embeddings rooted in the shared vertices, which is precisely the
    corruption replica failover must never introduce.
    """
    if not replies:
        raise ClusterError("cannot merge zero shard replies")
    ranges: list[tuple[int, int]] = []
    for rng, _ in replies:
        lo, hi = int(rng[0]), int(rng[1])
        if hi < lo:
            raise ClusterError(f"malformed root range [{lo}, {hi})")
        ranges.append((lo, hi))
    seen: set[tuple[int, int]] = set()
    for rng in ranges:
        if rng in seen:
            raise ClusterError(
                f"root range [{rng[0]}, {rng[1]}) answered twice — a "
                f"replica duplicate escaped dedupe; refusing to "
                f"double-count"
            )
        seen.add(rng)
    ordered = sorted(ranges)
    for (lo, hi), (next_lo, next_hi) in zip(ordered, ordered[1:]):
        if next_lo < hi:
            raise ClusterError(
                f"root ranges [{lo}, {hi}) and [{next_lo}, {next_hi}) "
                f"overlap — shards would double-count embeddings "
                f"rooted in [{next_lo}, {min(hi, next_hi)})"
            )
    return merge_reports(
        [report for _, report in replies],
        graph_name=graph_name,
        pattern_name=pattern_name,
    )
