"""Graph sharding: contiguous vertex ranges, halos, induced subgraphs.

The cluster partitions a registered graph by **vertex range**: shard *i*
owns the contiguous global range ``[lo_i, hi_i)`` (cut points balance the
degree mass, the same idea as the accelerator's degree-balanced root
partitioning), and every embedding is attributed to its *root* vertex —
so a shard answers exactly the subquery "embeddings rooted in my range".

Correctness rests on two properties:

**Halo sufficiency.**  With the plans' level-by-level expansion, a vertex
bound at level *L* is at most *L* hops from the root, so replicating the
``halo_hops``-hop neighbourhood around the owned range gives each shard
every vertex (and every adjacency row) any of its search trees can touch,
provided ``halo_hops >= plan.stop_level``.  The coordinator validates
that inequality per query.

**Order-preserving compaction.**  Shard-local IDs are assigned by
*monotone* compaction of the sorted kept-vertex set, so ``u < v``
globally iff ``local(u) < local(v)``.  Symmetry-breaking filters compare
vertex IDs; preserving their order means a shard's per-root counts equal
the global run's per-root counts, and summing owned-root counts over
shards counts every embedding exactly once — the equivalence tests pin
this down against the single-node engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClusterError
from ..graph.csr import CSRGraph

__all__ = [
    "ShardSpec",
    "contiguous_cuts",
    "halo_vertices",
    "induced_subgraph",
    "make_shards",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a partitioned graph (owned range + halo subgraph)."""

    index: int
    num_shards: int
    #: owned global vertex range ``[lo, hi)``
    lo: int
    hi: int
    #: sorted global IDs present in the subgraph (owned ∪ halo)
    vertices: np.ndarray
    #: the induced subgraph in shard-local IDs
    graph: CSRGraph
    #: owned range in local IDs — contiguous, because compaction is
    #: monotone and the owned global range has no gaps
    local_lo: int
    local_hi: int
    halo_hops: int

    @property
    def owned(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSpec({self.index}/{self.num_shards}, "
            f"owns [{self.lo}, {self.hi}), "
            f"{self.graph.num_vertices} vertices incl. halo)"
        )


def contiguous_cuts(
    degrees: np.ndarray, num_shards: int
) -> list[tuple[int, int]]:
    """Degree-balanced contiguous cut of ``[0, n)`` into ``num_shards``.

    Cut points land where the cumulative degree mass crosses each
    ``k/num_shards`` quantile (each vertex also carries +1 weight so
    isolated vertices still spread out).  Shards may come back empty on
    tiny graphs — callers must tolerate ``lo == hi``.
    """
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
    n = int(degrees.size)
    weights = np.asarray(degrees, dtype=np.int64) + 1
    cum = np.cumsum(weights)
    total = int(cum[-1]) if n else 0
    bounds = [0]
    for k in range(1, num_shards):
        target = total * k / num_shards
        cut = int(np.searchsorted(cum, target, side="left"))
        bounds.append(max(cut, bounds[-1]))
    bounds.append(n)
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)]


def _gather_neighbors(graph: CSRGraph, rows: np.ndarray) -> np.ndarray:
    """All neighbour IDs of ``rows`` concatenated (vectorised row gather)."""
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = graph.indptr[rows]
    lens = graph.indptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # flat positions: for each row r, starts[r] + [0, lens[r])
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    flat = np.repeat(starts, lens) + (np.arange(total, dtype=np.int64)
                                      - offsets)
    return graph.indices[flat].astype(np.int64)


def halo_vertices(
    graph: CSRGraph, lo: int, hi: int, hops: int
) -> np.ndarray:
    """Sorted global IDs within ``hops`` hops of the owned ``[lo, hi)``."""
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[lo:hi] = True
    frontier = np.arange(lo, hi, dtype=np.int64)
    for _ in range(hops):
        if frontier.size == 0:
            break
        nbrs = np.unique(_gather_neighbors(graph, frontier))
        fresh = nbrs[~visited[nbrs]]
        visited[fresh] = True
        frontier = fresh
    return np.flatnonzero(visited).astype(np.int64)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray, name: str
) -> CSRGraph:
    """The subgraph induced on sorted ``vertices``, in compacted local IDs.

    Adjacency rows stay sorted: the source rows are sorted and the
    global→local map is monotone.
    """
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    starts = graph.indptr[vertices]
    lens = graph.indptr[vertices + 1] - starts
    total = int(lens.sum())
    if total:
        offsets = np.repeat(np.cumsum(lens) - lens, lens)
        flat = np.repeat(starts, lens) + (
            np.arange(total, dtype=np.int64) - offsets
        )
        nbrs = graph.indices[flat].astype(np.int64)
        row_of = np.repeat(
            np.arange(vertices.size, dtype=np.int64), lens
        )
        inside = keep[nbrs]
        nbrs = nbrs[inside]
        row_of = row_of[inside]
        local_nbrs = np.searchsorted(vertices, nbrs).astype(np.int32)
        counts = np.bincount(row_of, minlength=vertices.size)
    else:
        local_nbrs = np.empty(0, dtype=np.int32)
        counts = np.zeros(vertices.size, dtype=np.int64)
    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    labels = None if graph.labels is None else graph.labels[vertices]
    return CSRGraph(
        indptr=indptr, indices=local_nbrs, name=name, labels=labels
    )


def make_shards(
    graph: CSRGraph, num_shards: int, halo_hops: int
) -> list[ShardSpec]:
    """Partition ``graph`` into ``num_shards`` range-owned shard specs."""
    if halo_hops < 1:
        raise ClusterError(f"halo_hops must be >= 1, got {halo_hops}")
    specs = []
    for index, (lo, hi) in enumerate(
        contiguous_cuts(graph.degrees, num_shards)
    ):
        vertices = halo_vertices(graph, lo, hi, halo_hops)
        sub = induced_subgraph(
            graph, vertices, name=f"{graph.name}:shard{index}"
        )
        local_lo = int(np.searchsorted(vertices, lo))
        local_hi = int(np.searchsorted(vertices, hi))
        specs.append(
            ShardSpec(
                index=index,
                num_shards=num_shards,
                lo=int(lo),
                hi=int(hi),
                vertices=vertices,
                graph=sub,
                local_lo=local_lo,
                local_hi=local_hi,
                halo_hops=halo_hops,
            )
        )
    return specs
