"""`repro.cluster`: distributed sharded query execution.

The cluster layer scales the single-node :class:`~repro.service.QueryService`
out horizontally: a :class:`Coordinator` cuts each registered CSR graph
into contiguous vertex-range shards (owned range + a replicated halo),
ships one induced subgraph to each :class:`ShardWorker`, and answers a
query by scattering root-restricted subqueries and merging the per-shard
reports.  Transports are pluggable (:mod:`repro.cluster.comm`): the
deterministic in-process transport for tests, TCP for real distribution.

Quickstart::

    from repro.cluster import LocalCluster
    from repro import PATTERNS, load_dataset

    with LocalCluster(num_shards=4) as cluster:
        gid = cluster.coordinator.register_graph(
            load_dataset("WV", scale=0.1))
        print(cluster.coordinator.count(gid, PATTERNS["3CF"]))
"""

from .comm import available_transports, get_transport, register_transport
from .coordinator import ClusterHealth, Coordinator, LocalCluster
from .merge import dedupe_replies, merge_replies, merge_reports
from .partition import (
    ShardSpec,
    contiguous_cuts,
    halo_vertices,
    induced_subgraph,
    make_shards,
)
from .replication import (
    HealthProber,
    HedgePolicy,
    ReplicaGroup,
    ReplicaState,
    RetryPolicy,
)
from .worker import ShardWorker

__all__ = [
    "ClusterHealth",
    "Coordinator",
    "HealthProber",
    "HedgePolicy",
    "LocalCluster",
    "ReplicaGroup",
    "ReplicaState",
    "RetryPolicy",
    "ShardSpec",
    "ShardWorker",
    "available_transports",
    "contiguous_cuts",
    "dedupe_replies",
    "get_transport",
    "halo_vertices",
    "induced_subgraph",
    "make_shards",
    "merge_replies",
    "merge_reports",
    "register_transport",
]
