"""The coordinator: shard registration, scatter/gather, cluster health.

``register_graph`` cuts a CSR graph into contiguous vertex-range shards
(:mod:`repro.cluster.partition`) and ships each induced subgraph — with
its owned local root range — to one :class:`ShardWorker`.  A query then
scatters as per-shard root-restricted subqueries (fanned out on a thread
pool, one in-flight request per shard connection) and the replies gather
through :func:`repro.cluster.merge.merge_reports`.

Resilience reuses the service layer's own machinery at cluster scope:

* every shard gets a :class:`~repro.resilience.BreakerBoard` circuit —
  comm failures and timeouts trip it, and an open breaker skips the
  shard without burning a timeout on a peer known to be down;
* a dead or hung shard *degrades* the query instead of failing it: the
  merged report carries ``notes["cluster"]["partial"] = True`` plus the
  failed shard names, and only a query with **zero** surviving shards
  raises :class:`~repro.errors.ClusterError`;
* :meth:`Coordinator.health` gathers per-shard
  :class:`~repro.resilience.HealthReport`\\ s into a
  :class:`ClusterHealth` whose state is the worst shard state, forced to
  at least ``DEGRADED`` while any shard is unreachable or any breaker is
  non-closed.
"""

from __future__ import annotations

import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..core.config import SystemConfig, xset_default
from ..errors import ClusterError, CommError
from ..graph.csr import CSRGraph
from ..obs import MetricsRegistry, Tracer
from ..obs.cluster import TraceContext, new_trace_id
from ..obs.export import chrome_trace_events
from ..obs.federation import FederatedMetrics, MetricsDeltaTracker
from ..obs.flight import FlightRecorder
from ..obs.slo import DEFAULT_SLOS, SLO, SLOStatus, SLOTracker
from ..obs.tracing import Span
from ..patterns.plan import build_plan
from ..resilience import BreakerBoard, BreakerState, HealthReport, \
    HealthState
from .comm.base import Connection, Transport, get_transport
from .merge import merge_reports
from .partition import make_shards
from .worker import ShardWorker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import ExecutionProfile
    from ..patterns.pattern import Pattern
    from ..resilience.breaker import BreakerSnapshot
    from ..sim.report import SimReport

__all__ = ["Coordinator", "ClusterHealth", "LocalCluster"]

#: per-shard execution profiles retained for PE-lane trace export
PROFILE_LIMIT = 256


@dataclass(frozen=True)
class ClusterHealth:
    """Aggregated cluster condition (per-shard reports + comm breakers)."""

    state: HealthState
    #: shard name → its service's health report, or None if unreachable
    shards: "Mapping[str, HealthReport | None]" = field(default_factory=dict)
    #: coordinator-side comm breaker snapshots, keyed by shard name
    breakers: "Mapping[str, BreakerSnapshot]" = field(default_factory=dict)
    #: SLO name → point-in-time status (empty when no tracker is wired)
    slo: "Mapping[str, SLOStatus]" = field(default_factory=dict)

    @property
    def dead(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, r in self.shards.items() if r is None)
        )

    @property
    def slo_violations(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, st in self.slo.items() if not st.met)
        )

    def summary(self) -> str:
        lines = [
            f"cluster health: {self.state.name.lower()} "
            f"({len(self.shards) - len(self.dead)}/{len(self.shards)} "
            f"shards reachable)"
        ]
        for name in sorted(self.shards):
            report = self.shards[name]
            if report is None:
                lines.append(f"  {name}: UNREACHABLE")
                continue
            lines.append(
                f"  {name}: {report.state.name.lower()}, queue "
                f"{report.queue_depth}/{report.queue_limit}, in flight "
                f"{report.in_flight}"
            )
        for name, snap in sorted(self.breakers.items()):
            if snap.state != "closed":
                lines.append(f"  breaker[{name}]: {snap.state}")
        for name in sorted(self.slo):
            lines.append(f"  slo {self.slo[name].line()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly view (CLI ``--json``, CI assertions)."""
        return {
            "state": self.state.name.lower(),
            "dead": list(self.dead),
            "shards": {
                name: (
                    None if report is None
                    else {
                        "state": report.state.name.lower(),
                        "queue_depth": report.queue_depth,
                        "queue_limit": report.queue_limit,
                        "in_flight": report.in_flight,
                        "shed": report.shed,
                        "abandoned": report.abandoned,
                        "rerouted": report.rerouted,
                    }
                )
                for name, report in self.shards.items()
            },
            "breakers": {
                name: {
                    "state": snap.state,
                    "failures": snap.failures,
                    "consecutive_failures": snap.consecutive_failures,
                    "last_failure_reason": snap.last_failure_reason,
                }
                for name, snap in self.breakers.items()
            },
            "slo": {
                name: status.to_dict()
                for name, status in self.slo.items()
            },
        }


@dataclass
class _ShardBinding:
    """Coordinator-side record of one connected shard."""

    name: str
    address: str
    conn: Connection


@dataclass(frozen=True)
class _ShardPlacement:
    """Where one slice of a registered graph lives."""

    shard: str
    lo: int
    hi: int
    local_lo: int
    local_hi: int
    halo_hops: int

    @property
    def owned(self) -> int:
        return self.hi - self.lo


class Coordinator:
    """Scatter/gather front-end over a set of shard workers."""

    def __init__(
        self,
        shards: Sequence[tuple[str, str]],
        transport: "Transport | str",
        config: SystemConfig | None = None,
        *,
        request_timeout: float = 120.0,
        observability: bool = False,
        breaker_failure_threshold: int = 2,
        breaker_recovery_seconds: float = 30.0,
        slos: "Iterable[SLO] | None" = None,
        flight_dir: "str | Path | None" = None,
    ) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        self.config = config or xset_default()
        self.transport = (
            get_transport(transport)
            if isinstance(transport, str)
            else transport
        )
        self.request_timeout = request_timeout
        self._shards: list[_ShardBinding] = [
            _ShardBinding(
                name=name, address=addr, conn=self.transport.connect(addr)
            )
            for name, addr in shards
        ]
        #: graph_id → per-shard placements (order matches self._shards)
        self._graphs: dict[str, list[_ShardPlacement]] = {}
        # flight recorder before the breakers: the transition callback
        # writes into it
        self.flight = FlightRecorder(
            name="coordinator", flight_dir=flight_dir
        )
        self._breakers = BreakerBoard(
            failure_threshold=breaker_failure_threshold,
            recovery_seconds=breaker_recovery_seconds,
            half_open_probes=1,
            on_transition=self._on_breaker_transition,
        )
        self.metrics = MetricsRegistry()
        self.metrics.gauge(
            "repro_cluster_shards", "shard workers in this cluster"
        ).set(len(self._shards))
        #: shard metric deltas merged under a shard= label, plus the
        #: coordinator's own registry under shard="coordinator"
        self.federation = FederatedMetrics()
        self._self_delta = MetricsDeltaTracker(self.metrics)
        self.slo = SLOTracker(tuple(slos) if slos is not None
                              else DEFAULT_SLOS)
        self._tracer = Tracer() if observability else None
        #: (shard name, profile) pairs for per-shard PE trace lanes
        self._profiles: "deque[tuple[str, ExecutionProfile]]" = deque(
            maxlen=PROFILE_LIMIT
        )
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._shards),
            thread_name_prefix="cluster-scatter",
        )
        self._shutdown = False

    # -- internals ---------------------------------------------------------

    def _span(self, name: str, **attrs):
        if self._tracer is None:
            return nullcontext()
        return self._tracer.span(name, **attrs)

    def _on_breaker_transition(self, shard, old, new) -> None:
        """Comm-breaker transitions land in the flight recorder."""
        self.flight.record(
            "breaker_trip" if new is BreakerState.OPEN
            else "breaker_transition",
            shard=shard,
            from_state=old.name.lower(),
            to_state=new.name.lower(),
        )

    def _end_scatter_span(self, span: "Span | None", outcome: str) -> None:
        if span is not None and self._tracer is not None:
            span.set_attr("outcome", outcome)
            self._tracer.end_span(span)

    def _call(
        self,
        binding: _ShardBinding,
        payload: dict,
        span: "Span | None" = None,
    ):
        """One breaker-guarded request to one shard.

        ``span`` (a manually-started scatter span) is closed here, on
        the scatter pool thread, so its duration covers the request —
        not the coordinator's wait for slower siblings.
        """
        breaker = self._breakers.for_engine(binding.name)
        if not breaker.allow():
            self._end_scatter_span(span, "breaker_open")
            raise ClusterError(
                f"shard {binding.name!r} breaker is open "
                f"(recent comm failures)"
            )
        try:
            value = binding.conn.request(
                payload, timeout=self.request_timeout
            )
        except CommError as exc:
            breaker.record_failure(type(exc).__name__)
            self.metrics.counter(
                "repro_cluster_shard_failures_total",
                "scatter requests lost to comm failures",
            ).inc()
            self._end_scatter_span(span, type(exc).__name__)
            raise
        breaker.record_success()
        self._end_scatter_span(span, "ok")
        return value

    def _scatter(
        self, payloads: "list[tuple]"
    ) -> "list[tuple[_ShardBinding, object, BaseException | None]]":
        """Fan requests out; gather ``(binding, value, error)`` triples.

        Each item is ``(binding, payload)`` or ``(binding, payload,
        scatter_span)`` — the optional span travels to :meth:`_call`.
        """
        futures = [
            (
                item[0],
                self._pool.submit(
                    self._call,
                    item[0],
                    item[1],
                    item[2] if len(item) > 2 else None,
                ),
            )
            for item in payloads
        ]
        results = []
        for binding, future in futures:
            try:
                results.append((binding, future.result(), None))
            except BaseException as exc:
                results.append((binding, None, exc))
        return results

    def _placements(self, graph_id: str) -> list[_ShardPlacement]:
        placements = self._graphs.get(graph_id)
        if placements is None:
            raise ClusterError(
                f"unknown cluster graph id {graph_id!r}; registered: "
                f"{', '.join(sorted(self._graphs)) or '<none>'}"
            )
        return placements

    # -- graph lifecycle ---------------------------------------------------

    def register_graph(
        self, graph: CSRGraph, graph_id: str | None = None
    ) -> str:
        """Shard ``graph`` across the workers; returns the cluster id."""
        gid = graph_id or graph.name
        if gid in self._graphs:
            raise ClusterError(
                f"cluster graph id {gid!r} already registered"
            )
        with self._span("cluster.register", graph_id=gid):
            specs = make_shards(
                graph,
                num_shards=len(self._shards),
                halo_hops=self.config.cluster_halo_hops,
            )
            payloads = [
                (
                    binding,
                    {
                        "op": "register",
                        "graph_id": gid,
                        "graph": spec.graph,
                        "local_lo": spec.local_lo,
                        "local_hi": spec.local_hi,
                    },
                )
                for binding, spec in zip(self._shards, specs)
            ]
            results = self._scatter(payloads)
        failed = [b.name for b, _, exc in results if exc is not None]
        if failed:
            # registration is all-or-nothing: roll back the survivors so
            # no shard holds a slice of a graph the cluster never owned
            for binding, _, exc in results:
                if exc is None:
                    try:
                        self._call(
                            binding, {"op": "unregister", "graph_id": gid}
                        )
                    except Exception:
                        pass
            raise ClusterError(
                f"failed to register {gid!r} on shard(s) "
                f"{', '.join(failed)}"
            )
        self._graphs[gid] = [
            _ShardPlacement(
                shard=binding.name,
                lo=spec.lo,
                hi=spec.hi,
                local_lo=spec.local_lo,
                local_hi=spec.local_hi,
                halo_hops=spec.halo_hops,
            )
            for binding, spec in zip(self._shards, specs)
        ]
        return gid

    def unregister_graph(self, graph_id: str) -> None:
        """Drop ``graph_id`` on every reachable shard."""
        self._placements(graph_id)
        payloads = [
            (binding, {"op": "unregister", "graph_id": graph_id})
            for binding in self._shards
        ]
        self._scatter(payloads)  # best effort; dead shards are tolerated
        del self._graphs[graph_id]

    def graphs(self) -> tuple[str, ...]:
        return tuple(sorted(self._graphs))

    # -- queries -----------------------------------------------------------

    def query(
        self,
        graph_id: str,
        pattern: "Pattern",
        *,
        induced: bool | None = None,
        engine: str | None = None,
        config: SystemConfig | None = None,
        use_cache: bool = True,
    ) -> "SimReport":
        """Scatter one pattern query; gather the merged cluster report.

        Shards that fail (comm error, timeout, open breaker) degrade the
        result — ``report.notes["cluster"]`` flags the partial merge and
        names them.  Only a fully failed scatter raises.
        """
        placements = self._placements(graph_id)
        cfg = config or self.config
        plan = build_plan(pattern, induced=induced)
        halo = min(p.halo_hops for p in placements)
        if plan.stop_level > halo:
            raise ClusterError(
                f"pattern {pattern.name!r} needs a {plan.stop_level}-hop "
                f"halo but {graph_id!r} was sharded with halo_hops={halo}; "
                f"re-register with cluster_halo_hops >= {plan.stop_level}"
            )
        by_name = {b.name: b for b in self._shards}
        targets = [
            (by_name[p.shard], p) for p in placements if p.owned > 0
        ]
        self.metrics.counter(
            "repro_cluster_queries_total", "cluster queries accepted"
        ).inc()
        tracer = self._tracer
        trace_id = new_trace_id() if tracer is not None else None
        started = time.perf_counter()
        scatter_spans: "dict[str, Span]" = {}
        with self._span(
            "cluster.query",
            graph_id=graph_id,
            pattern=pattern.name,
            fan_out=len(targets),
            trace_id=trace_id,
            lane="coordinator",
        ) as qspan:
            calls = []
            for binding, _ in targets:
                sspan = None
                trace_ctx = None
                if tracer is not None:
                    # one manually-started scatter span per shard: it is
                    # the ingest parent and its start is the re-anchor
                    # point for the shard's whole span tree
                    sspan = tracer.start_span(
                        "cluster.scatter",
                        parent=qspan,
                        shard=binding.name,
                        trace_id=trace_id,
                        lane="coordinator",
                    )
                    scatter_spans[binding.name] = sspan
                    trace_ctx = TraceContext(
                        trace_id=trace_id,
                        parent_span_id=sspan.span_id,
                        anchor=time.time(),
                    )
                calls.append(
                    (
                        binding,
                        {
                            "op": "query",
                            "graph_id": graph_id,
                            "pattern": pattern,
                            "induced": induced,
                            "engine": engine,
                            "config": config,
                            "use_cache": use_cache,
                            "timeout": self.request_timeout,
                            "trace": trace_ctx,
                        },
                        sspan,
                    )
                )
            results = self._scatter(calls)
            ok: "list[tuple[_ShardBinding, SimReport]]" = []
            failed: dict[str, str] = {}
            for binding, value, exc in results:
                if exc is not None:
                    failed[binding.name] = repr(exc)
                    self.flight.record(
                        "shard_failure",
                        shard=binding.name,
                        op="query",
                        graph_id=graph_id,
                        error=repr(exc),
                    )
                    continue
                envelope = value if isinstance(value, dict) else {
                    "report": value
                }
                self.federation.apply(
                    binding.name, envelope.get("metrics")
                )
                if tracer is not None:
                    self._adopt_shard_trace(
                        binding.name,
                        envelope,
                        scatter_spans.get(binding.name),
                    )
                ok.append((binding, envelope["report"]))
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "repro_cluster_query_seconds",
            "end-to-end scatter/gather query latency",
        ).observe(elapsed)
        self.slo.record(elapsed, ok=not failed)
        if not ok:
            self.flight.record(
                "query_failed",
                graph_id=graph_id,
                pattern=pattern.name,
                failed_shards=sorted(failed),
            )
            self.flight.auto_dump("query-failed")
            raise ClusterError(
                f"query {pattern.name!r} on {graph_id!r} failed on every "
                f"shard: {failed}"
            )
        merged = merge_reports(
            [report for _, report in ok],
            graph_name=graph_id,
            pattern_name=pattern.name,
        )
        merged.config_name = cfg.name
        merged.notes["cluster"] = {
            "shards": len(placements),
            "queried": len(targets),
            "ok": len(ok),
            "partial": bool(failed),
            "failed_shards": sorted(failed),
            "failures": failed,
        }
        if trace_id is not None:
            merged.notes["cluster"]["trace_id"] = trace_id
        if failed:
            self.metrics.counter(
                "repro_cluster_partial_results_total",
                "merged results missing at least one shard",
            ).inc()
            self.flight.record(
                "partial_result",
                graph_id=graph_id,
                pattern=pattern.name,
                failed_shards=sorted(failed),
            )
            self.flight.auto_dump("shard-failure")
        return merged

    def _adopt_shard_trace(
        self, shard: str, envelope: dict, sspan: "Span | None"
    ) -> None:
        """Re-anchor one shard's span tree under its scatter span.

        The batch is shifted so its earliest start (the shard's
        ``service.job``) lands exactly at the scatter span's start —
        shards have their own ``perf_counter`` origin, so only the
        coordinator timeline is meaningful after the merge.  Adopted
        spans get ``shard``/``lane`` attributes so the Chrome export
        gives each shard its own track.
        """
        tracer = self._tracer
        if tracer is None:
            return
        profile = envelope.get("profile")
        if profile is not None:
            self._profiles.append((shard, profile))
        spans = envelope.get("spans") or []
        if not spans:
            return
        adopted = tracer.ingest(
            spans,
            parent=sspan,
            align_to=sspan.start if sspan is not None else None,
        )
        for sp in adopted:
            sp.attrs.setdefault("shard", shard)
            sp.attrs["lane"] = shard

    def count(self, graph_id: str, pattern: "Pattern", **kwargs) -> int:
        """Cluster-wide embedding count (raises on partial results)."""
        report = self.query(graph_id, pattern, **kwargs)
        if report.notes["cluster"]["partial"]:
            raise ClusterError(
                f"partial cluster result for {pattern.name!r} on "
                f"{graph_id!r}: shards "
                f"{report.notes['cluster']['failed_shards']} failed"
            )
        return report.embeddings

    # -- health / lifecycle ------------------------------------------------

    def health(self) -> ClusterHealth:
        """Gather per-shard health; aggregate to one cluster state.

        Shard replies piggyback metrics deltas (federated here) and the
        SLO tracker's statuses join the report: a burning error budget
        degrades the cluster even while every shard is individually
        healthy.  A non-healthy aggregate records a flight event and —
        once per state, when a flight dir is configured — auto-dumps
        the coordinator's ring.
        """
        results = self._scatter(
            [(b, {"op": "health"}) for b in self._shards]
        )
        shards: dict[str, "HealthReport | None"] = {}
        worst = HealthState.HEALTHY
        any_dead = False
        for binding, value, exc in results:
            if exc is not None:
                shards[binding.name] = None
                any_dead = True
                self.flight.record(
                    "shard_failure",
                    shard=binding.name,
                    op="health",
                    error=repr(exc),
                )
                continue
            if isinstance(value, dict) and "report" in value:
                report = value["report"]
                self.federation.apply(
                    binding.name, value.get("metrics")
                )
            else:  # bare HealthReport (older shard)
                report = value
            shards[binding.name] = report
            if report.state.value > worst.value:
                worst = report.state
        snapshots = self._breakers.snapshots()
        breaker_open = any(s.state != "closed" for s in snapshots.values())
        slo_statuses = self.slo.evaluate()
        slo_violated = any(not st.met for st in slo_statuses.values())
        if (
            (any_dead or breaker_open or slo_violated)
            and worst is HealthState.HEALTHY
        ):
            worst = HealthState.DEGRADED
        if worst is not HealthState.HEALTHY:
            self.flight.record(
                "health_degraded",
                state=worst.name.lower(),
                dead=sorted(
                    name for name, r in shards.items() if r is None
                ),
                slo_violations=sorted(
                    name for name, st in slo_statuses.items()
                    if not st.met
                ),
            )
            self.flight.auto_dump(f"health-{worst.name.lower()}")
        return ClusterHealth(
            state=worst,
            shards=shards,
            breakers=snapshots,
            slo=slo_statuses,
        )

    def stats(self) -> dict:
        """Per-shard worker stats (``op: stats``) keyed by shard name.

        Unreachable shards map to None — the ``top`` dashboard renders
        them as DEAD rows instead of erroring out.
        """
        results = self._scatter(
            [(b, {"op": "stats"}) for b in self._shards]
        )
        return {
            binding.name: (None if exc is not None else value)
            for binding, value, exc in results
        }

    def shard_flight(self, shard: str) -> dict:
        """Fetch one live shard's flight-recorder ring (``op: flight``)."""
        for binding in self._shards:
            if binding.name == shard:
                return self._call(binding, {"op": "flight"})
        raise ClusterError(f"unknown shard {shard!r}")

    # -- observability surfaces --------------------------------------------

    @property
    def observability(self) -> bool:
        return self._tracer is not None

    def metrics_text(self) -> str:
        """One Prometheus exposition for the whole cluster.

        Shard series carry ``shard=<name>`` labels (with histogram
        aggregates under ``shard="all"``); the coordinator's own
        registry is folded in as ``shard="coordinator"`` through the
        same delta path.
        """
        self.federation.apply(
            "coordinator", self._self_delta.collect(), aggregate=False
        )
        return self.federation.render()

    def trace_events(self) -> list[dict]:
        """Chrome trace events: one merged cluster timeline.

        Coordinator spans share the ``coordinator`` lane; each shard's
        re-anchored span tree gets its own lane; each shard's PE
        activity (from shipped profiles) gets its own
        ``accelerator (cycles) — <shard>`` process.
        """
        if self._tracer is None:
            raise ClusterError(
                "tracing is disabled; construct the coordinator with "
                "observability=True"
            )
        pe_groups: dict[str, list] = {}
        for shard, profile in self._profiles:
            pe_groups.setdefault(shard, []).extend(profile.pe_events)
        return chrome_trace_events(
            self._tracer.finished(), pe_groups=pe_groups
        )

    def export_trace(self, path: str | None = None) -> list[dict]:
        """The merged cluster Chrome/Perfetto trace; written when ``path``
        is given.  Always returns the event list."""
        events = self.trace_events()
        if path is not None:
            payload = {"traceEvents": events, "displayTimeUnit": "ms"}
            Path(path).write_text(json.dumps(payload))
        return events

    def shutdown(self, stop_workers: bool = True) -> None:
        """Close connections (optionally stopping the workers first)."""
        if self._shutdown:
            return
        self._shutdown = True
        if stop_workers:
            self._scatter(
                [(b, {"op": "shutdown"}) for b in self._shards]
            )
        for binding in self._shards:
            binding.conn.close()
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coordinator({len(self._shards)} shards, "
            f"graphs={sorted(self._graphs)})"
        )


class LocalCluster:
    """Workers + coordinator in one process — the cluster's ``localhost``.

    Spins up ``num_shards`` :class:`ShardWorker`\\ s on the chosen
    transport and a :class:`Coordinator` over them.  ``mode`` selects
    each worker's service pool: ``inline`` for deterministic tests,
    ``process`` to give every shard its own OS process (how the scaling
    benchmark runs).  :meth:`kill_shard` is the chaos hook; a killed
    shard is still resource-reclaimed by :meth:`shutdown`.
    """

    def __init__(
        self,
        num_shards: int | None = None,
        config: SystemConfig | None = None,
        *,
        transport: str = "inproc",
        mode: str = "inline",
        max_workers: int | None = None,
        observability: bool = False,
        request_timeout: float = 120.0,
        flight_dir: "str | Path | None" = None,
    ) -> None:
        self.config = config or xset_default()
        if num_shards is None:
            num_shards = self.config.cluster_shards or 2
        if num_shards < 1:
            raise ClusterError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.transport_name = transport
        tr = get_transport(transport)
        # observability propagates to every shard service: the workers
        # record the spans/profiles the coordinator re-anchors
        self.workers = [
            ShardWorker(
                f"shard{i}",
                tr,
                self.config,
                mode=mode,
                max_workers=max_workers,
                observability=observability,
            )
            for i in range(num_shards)
        ]
        self.coordinator = Coordinator(
            [(w.name, w.address) for w in self.workers],
            tr,
            self.config,
            observability=observability,
            request_timeout=request_timeout,
            flight_dir=flight_dir,
        )

    def kill_shard(self, index: int) -> str:
        """Chaos: make one shard unreachable; returns its name."""
        worker = self.workers[index]
        worker.kill()
        self.coordinator.flight.record("shard_kill", shard=worker.name)
        return worker.name

    def shutdown(self) -> None:
        """Stop everything; always reclaims shm, even for killed shards."""
        self.coordinator.shutdown(stop_workers=True)
        for worker in self.workers:
            worker.force_close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
