"""The coordinator: shard registration, scatter/gather, cluster health.

``register_graph`` cuts a CSR graph into contiguous vertex-range shards
(:mod:`repro.cluster.partition`) and ships each induced subgraph — with
its owned local root range — to every replica of one shard group.  A
query then scatters as per-shard root-restricted subqueries (fanned out
on a thread pool) and the replies gather through the exactly-once
:func:`repro.cluster.merge.merge_replies`.

Resilience reuses the service layer's own machinery at cluster scope:

* every *replica* gets a :class:`~repro.resilience.BreakerBoard` circuit
  — comm failures and timeouts trip it, and an open breaker skips the
  replica without burning a timeout on a peer known to be down;
* with ``cluster_replicas >= 2`` each shard is a
  :class:`~repro.cluster.replication.ReplicaGroup`: a failed subquery
  **fails over** to the next-healthiest replica (immediately within the
  first pass, with capped exponential backoff between retry rounds, all
  bounded by a per-query deadline budget), and an optional
  :class:`~repro.cluster.replication.HedgePolicy` duplicates straggler
  subqueries to a second replica, first success wins, the loser's reply
  dropped before the merge;
* a shard whose *every* replica fails degrades the query instead of
  failing it: the merged report carries
  ``notes["cluster"]["partial"] = True`` plus the failed shard names,
  and only a query with **zero** surviving shards raises
  :class:`~repro.errors.ClusterError` — with a single replica per shard
  this is exactly the pre-replication behaviour;
* a :class:`~repro.cluster.replication.HealthProber` (opt-in via
  ``probe_interval``) pings replicas over dedicated connections, evicts
  them from rotation after ``probe_failures`` consecutive failures, and
  reintegrates them after passing probes — re-registering every graph
  on the rejoining replica first, so it never serves a query it cannot
  answer;
* :meth:`Coordinator.health` gathers per-replica
  :class:`~repro.resilience.HealthReport`\\ s into a
  :class:`ClusterHealth` whose state is the worst replica state, forced
  to at least ``DEGRADED`` while any replica is unreachable or any
  breaker is non-closed.

Flight-recorder hygiene: a shard that keeps failing under sustained
chaos records **one** ``shard_failure`` event per incident (cleared by
the next success, which records ``shard_recovered``) — the black box
stays a readable story instead of one line per failed query.
"""

from __future__ import annotations

import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..core.config import SystemConfig, xset_default
from ..errors import ClusterError, CommError
from ..graph.csr import CSRGraph
from ..obs import MetricsRegistry, Tracer
from ..obs.cluster import TraceContext, new_trace_id
from ..obs.export import chrome_trace_events
from ..obs.federation import FederatedMetrics, MetricsDeltaTracker
from ..obs.flight import FlightRecorder
from ..obs.slo import DEFAULT_SLOS, REPLICATED_SLOS, SLO, SLOStatus, \
    SLOTracker
from ..obs.summary import Window
from ..obs.tracing import Span
from ..patterns.plan import build_plan
from ..resilience import BreakerBoard, BreakerState, HealthReport, \
    HealthState
from ..sched.adaptive import CostPredictor, query_features
from ..sched.adaptive.selector import auto_engine
from ..service.cache import pattern_cache_key
from .comm.base import Connection, Transport, get_transport
from .merge import merge_replies
from .partition import ShardSpec, make_shards
from .replication import HealthProber, HedgePolicy, ReplicaGroup, \
    ReplicaState, RetryPolicy
from .worker import ShardWorker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import ExecutionProfile
    from ..patterns.pattern import Pattern
    from ..resilience.breaker import BreakerSnapshot
    from ..sim.report import SimReport

__all__ = ["Coordinator", "ClusterHealth", "LocalCluster"]

#: per-shard execution profiles retained for PE-lane trace export
PROFILE_LIMIT = 256

#: recent per-shard request latencies kept for hedge-delay estimation
LATENCY_WINDOW = 256

#: scatter deadline budget = predicted shard latency × this safety factor
#: (applied only to profile-backed predictions, clamped to
#: [DEADLINE_FLOOR, the configured deadline budget])
DEADLINE_SAFETY = 8.0
#: minimum prediction-derived scatter deadline (seconds)
DEADLINE_FLOOR = 1.0
#: cold-start hedge delay = predicted shard latency × this factor (used
#: before the latency window has enough samples for the percentile rule)
HEDGE_PREDICTION_FACTOR = 2.0


@dataclass(frozen=True)
class ClusterHealth:
    """Aggregated cluster condition (per-replica reports + comm breakers)."""

    state: HealthState
    #: replica name → its service's health report, or None if unreachable
    shards: "Mapping[str, HealthReport | None]" = field(default_factory=dict)
    #: coordinator-side comm breaker snapshots, keyed by replica name
    breakers: "Mapping[str, BreakerSnapshot]" = field(default_factory=dict)
    #: SLO name → point-in-time status (empty when no tracker is wired)
    slo: "Mapping[str, SLOStatus]" = field(default_factory=dict)
    #: shard group → replica → routing state ("healthy"/"suspect"/"evicted")
    replicas: "Mapping[str, Mapping[str, str]]" = field(default_factory=dict)

    @property
    def dead(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, r in self.shards.items() if r is None)
        )

    @property
    def slo_violations(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, st in self.slo.items() if not st.met)
        )

    @property
    def evicted(self) -> tuple[str, ...]:
        return tuple(sorted(
            replica
            for group in self.replicas.values()
            for replica, state in group.items()
            if state == "evicted"
        ))

    def summary(self) -> str:
        lines = [
            f"cluster health: {self.state.name.lower()} "
            f"({len(self.shards) - len(self.dead)}/{len(self.shards)} "
            f"shards reachable)"
        ]
        for name in sorted(self.shards):
            report = self.shards[name]
            if report is None:
                lines.append(f"  {name}: UNREACHABLE")
                continue
            lines.append(
                f"  {name}: {report.state.name.lower()}, queue "
                f"{report.queue_depth}/{report.queue_limit}, in flight "
                f"{report.in_flight}"
            )
        for name, snap in sorted(self.breakers.items()):
            if snap.state != "closed":
                lines.append(f"  breaker[{name}]: {snap.state}")
        for group in sorted(self.replicas):
            for replica, state in sorted(self.replicas[group].items()):
                if state != "healthy":
                    lines.append(f"  replica {replica}: {state}")
        for name in sorted(self.slo):
            lines.append(f"  slo {self.slo[name].line()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly view (CLI ``--json``, CI assertions)."""
        return {
            "state": self.state.name.lower(),
            "dead": list(self.dead),
            "shards": {
                name: (
                    None if report is None
                    else {
                        "state": report.state.name.lower(),
                        "queue_depth": report.queue_depth,
                        "queue_limit": report.queue_limit,
                        "in_flight": report.in_flight,
                        "shed": report.shed,
                        "abandoned": report.abandoned,
                        "rerouted": report.rerouted,
                    }
                )
                for name, report in self.shards.items()
            },
            "breakers": {
                name: {
                    "state": snap.state,
                    "failures": snap.failures,
                    "consecutive_failures": snap.consecutive_failures,
                    "last_failure_reason": snap.last_failure_reason,
                }
                for name, snap in self.breakers.items()
            },
            "slo": {
                name: status.to_dict()
                for name, status in self.slo.items()
            },
            "replicas": {
                group: dict(states)
                for group, states in self.replicas.items()
            },
        }


@dataclass
class _Replica:
    """Coordinator-side record of one connected replica."""

    name: str
    address: str
    shard: str
    transport: Transport
    conn: "Connection | None" = None
    probe_conn: "Connection | None" = None

    def _fresh(self, conn: "Connection | None") -> "Connection | None":
        # a poisoned tcp connection flags itself closed; an inproc
        # connection survives listener kill/reopen and never needs
        # replacing, so the flag check covers both
        if conn is not None and not getattr(conn, "_closed", False):
            return conn
        return None

    def connection(self) -> Connection:
        """The data-plane connection, re-dialled if poisoned."""
        conn = self._fresh(self.conn)
        if conn is None:
            conn = self.transport.connect(self.address)
            self.conn = conn
        return conn

    def probe_connection(self) -> Connection:
        """A dedicated probe connection: a slow query on the data plane
        must never make a liveness ping look like a death."""
        conn = self._fresh(self.probe_conn)
        if conn is None:
            conn = self.transport.connect(self.address)
            self.probe_conn = conn
        return conn

    def close(self) -> None:
        for conn in (self.conn, self.probe_conn):
            if conn is not None:
                try:
                    conn.close()
                except Exception:
                    pass
        self.conn = None
        self.probe_conn = None


@dataclass
class _ShardGroup:
    """One vertex-range shard and the replicas backing it."""

    name: str
    replicas: "list[_Replica]"
    group: ReplicaGroup


@dataclass(frozen=True)
class _ShardPlacement:
    """Where one slice of a registered graph lives."""

    shard: str
    lo: int
    hi: int
    local_lo: int
    local_hi: int
    halo_hops: int
    #: retained for re-shipping the slice to a rejoining replica
    spec: "ShardSpec | None" = None

    @property
    def owned(self) -> int:
        return self.hi - self.lo


def _normalize_shards(
    shards: "Sequence[tuple[str, object]]",
) -> "list[tuple[str, list[tuple[str, str]]]]":
    """Accept both shapes: ``(name, addr)`` and ``(name, [(replica,
    addr), ...])`` — the former is a single-replica group whose replica
    keeps the shard's name, which is what keeps breaker keys, flight
    events and federation labels identical to the pre-replication
    coordinator."""
    normalized: "list[tuple[str, list[tuple[str, str]]]]" = []
    for name, spec in shards:
        if isinstance(spec, str):
            normalized.append((name, [(name, spec)]))
        else:
            members = [(str(r), str(a)) for r, a in spec]
            if not members:
                raise ClusterError(
                    f"shard {name!r} has an empty replica list"
                )
            normalized.append((name, members))
    return normalized


class Coordinator:
    """Scatter/gather front-end over a set of (replicated) shard workers."""

    def __init__(
        self,
        shards: "Sequence[tuple[str, object]]",
        transport: "Transport | str",
        config: SystemConfig | None = None,
        *,
        request_timeout: float = 120.0,
        observability: bool = False,
        breaker_failure_threshold: int = 2,
        breaker_recovery_seconds: float = 30.0,
        slos: "Iterable[SLO] | None" = None,
        flight_dir: "str | Path | None" = None,
        retry: "RetryPolicy | None" = None,
        hedge: "HedgePolicy | None" = None,
        probe_interval: float = 0.0,
        probe_failures: int = 3,
        probe_recoveries: int = 2,
        probe_timeout: float = 5.0,
    ) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        self.config = config or xset_default()
        self.transport = (
            get_transport(transport)
            if isinstance(transport, str)
            else transport
        )
        self.request_timeout = request_timeout
        self.retry = retry or RetryPolicy()
        self.hedge = hedge or HedgePolicy()
        self._groups: "list[_ShardGroup]" = []
        self._replicas: "list[_Replica]" = []
        self._replica_by_name: "dict[str, _Replica]" = {}
        self._group_by_replica: "dict[str, _ShardGroup]" = {}
        for name, members in _normalize_shards(shards):
            replicas = []
            for rname, addr in members:
                if rname in self._replica_by_name:
                    raise ClusterError(
                        f"duplicate replica name {rname!r}"
                    )
                replica = _Replica(
                    name=rname, address=addr, shard=name,
                    transport=self.transport,
                )
                try:
                    replica.connection()
                except CommError:
                    # tolerated: the replica may come up later; the
                    # breaker/prober decide what that means
                    pass
                replicas.append(replica)
                self._replica_by_name[rname] = replica
            sg = _ShardGroup(
                name=name,
                replicas=replicas,
                group=ReplicaGroup(name, [r.name for r in replicas]),
            )
            self._groups.append(sg)
            self._replicas.extend(replicas)
            for replica in replicas:
                self._group_by_replica[replica.name] = sg
        self._replicated = any(len(sg.replicas) > 1 for sg in self._groups)
        #: graph_id → per-shard placements (order matches self._groups)
        self._graphs: dict[str, list[_ShardPlacement]] = {}
        #: graph_id → replica names currently holding a registered copy
        self._registered: dict[str, set[str]] = {}
        # flight recorder before the breakers: the transition callback
        # writes into it
        self.flight = FlightRecorder(
            name="coordinator", flight_dir=flight_dir
        )
        #: shards/replicas with an open failure incident (dedupes
        #: shard_failure flight events under sustained chaos)
        self._open_incidents: set[str] = set()
        self._failover_dumped = False
        self._breakers = BreakerBoard(
            failure_threshold=breaker_failure_threshold,
            recovery_seconds=breaker_recovery_seconds,
            half_open_probes=1,
            on_transition=self._on_breaker_transition,
        )
        self.metrics = MetricsRegistry()
        self.metrics.gauge(
            "repro_cluster_shards", "shard groups in this cluster"
        ).set(len(self._groups))
        self.metrics.gauge(
            "repro_cluster_replicas", "shard replicas in this cluster"
        ).set(len(self._replicas))
        for sg in self._groups:
            self._sync_replica_gauges(sg)
        #: shard metric deltas merged under a shard= label, plus the
        #: coordinator's own registry under shard="coordinator"
        self.federation = FederatedMetrics()
        self._self_delta = MetricsDeltaTracker(self.metrics)
        if slos is None:
            slos = REPLICATED_SLOS if self._replicated else DEFAULT_SLOS
        self.slo = SLOTracker(tuple(slos))
        self._tracer = Tracer() if observability else None
        #: (shard name, profile) pairs for per-shard PE trace lanes
        self._profiles: "deque[tuple[str, ExecutionProfile]]" = deque(
            maxlen=PROFILE_LIMIT
        )
        #: per-shard recent request latencies (feeds the hedge delay)
        self._latency: "dict[str, Window]" = {
            sg.name: Window(LATENCY_WINDOW) for sg in self._groups
        }
        #: per-shard cost model: trained from each shard's measured
        #: subquery latency, keyed by (graph@shard, canonical pattern);
        #: drives prediction-derived scatter deadlines and cold-start
        #: hedge delays, and its accuracy histogram lands in metrics
        self.predictor = CostPredictor(registry=self.metrics)
        self._pool = ThreadPoolExecutor(
            max_workers=max(len(self._groups), len(self._replicas)),
            thread_name_prefix="cluster-scatter",
        )
        # hedged calls run on their own pool: a hedge submitted from a
        # scatter thread must never deadlock behind sibling scatters
        self._hedge_pool = (
            ThreadPoolExecutor(
                max_workers=max(2 * len(self._replicas), 4),
                thread_name_prefix="cluster-hedge",
            )
            if self.hedge.enabled
            else None
        )
        self.prober = HealthProber(
            self._probe_ping,
            [r.name for r in self._replicas],
            probe_failures=probe_failures,
            probe_recoveries=probe_recoveries,
            interval=probe_interval if probe_interval > 0 else 1.0,
            on_evict=self._evict_replica,
            on_rejoin=self._rejoin_replica,
        )
        self.probe_timeout = probe_timeout
        if probe_interval > 0:
            self.prober.start()
        self._shutdown = False

    # -- internals ---------------------------------------------------------

    def _span(self, name: str, **attrs):
        if self._tracer is None:
            return nullcontext()
        return self._tracer.span(name, **attrs)

    def _on_breaker_transition(self, shard, old, new) -> None:
        """Comm-breaker transitions land in the flight recorder."""
        self.flight.record(
            "breaker_trip" if new is BreakerState.OPEN
            else "breaker_transition",
            shard=shard,
            from_state=old.name.lower(),
            to_state=new.name.lower(),
        )

    def _end_scatter_span(self, span: "Span | None", outcome: str) -> None:
        if span is not None and self._tracer is not None:
            span.set_attr("outcome", outcome)
            self._tracer.end_span(span)

    def _record_shard_failure(self, name: str, **data) -> None:
        """First failure of an incident records a flight event; repeats
        under the same open incident stay out of the ring so sustained
        chaos cannot wash the black box out with one line per query."""
        if name in self._open_incidents:
            return
        self._open_incidents.add(name)
        self.flight.record("shard_failure", shard=name, **data)

    def _record_shard_success(self, name: str) -> None:
        if name in self._open_incidents:
            self._open_incidents.discard(name)
            self.flight.record("shard_recovered", shard=name)

    def _sync_replica_gauges(self, sg: _ShardGroup) -> None:
        for replica, state in sg.group.states().items():
            self.metrics.gauge(
                "repro_cluster_replica_state",
                "replica routing state (0 healthy / 1 suspect / 2 evicted)",
                shard=sg.name,
                replica=replica,
            ).set(state.value)

    def _call(
        self,
        replica: _Replica,
        payload: dict,
        span: "Span | None" = None,
        timeout: float | None = None,
    ):
        """One breaker-guarded request to one replica.

        ``span`` (a manually-started scatter span) is closed here, on
        the scatter pool thread, so its duration covers the request —
        not the coordinator's wait for slower siblings.
        """
        sg = self._group_by_replica[replica.name]
        breaker = self._breakers.for_engine(replica.name)
        if not breaker.allow():
            self._end_scatter_span(span, "breaker_open")
            raise ClusterError(
                f"shard {replica.name!r} breaker is open "
                f"(recent comm failures)"
            )
        try:
            conn = replica.connection()
            value = conn.request(
                payload,
                timeout=self.request_timeout if timeout is None
                else timeout,
            )
        except CommError as exc:
            breaker.record_failure(type(exc).__name__)
            sg.group.mark_failure(replica.name)
            self._sync_replica_gauges(sg)
            self.metrics.counter(
                "repro_cluster_shard_failures_total",
                "scatter requests lost to comm failures",
            ).inc()
            self._end_scatter_span(span, type(exc).__name__)
            raise
        breaker.record_success()
        prior = sg.group.state(replica.name)
        sg.group.mark_success(replica.name)
        if prior is not ReplicaState.HEALTHY:
            self._sync_replica_gauges(sg)
        self._end_scatter_span(span, "ok")
        return value

    def _scatter(
        self, payloads: "list[tuple]"
    ) -> "list[tuple[_Replica, object, BaseException | None]]":
        """Fan requests out; gather ``(replica, value, error)`` triples.

        Each item is ``(replica, payload)`` or ``(replica, payload,
        scatter_span)`` — the optional span travels to :meth:`_call`.
        """
        futures = [
            (
                item[0],
                self._pool.submit(
                    self._call,
                    item[0],
                    item[1],
                    item[2] if len(item) > 2 else None,
                ),
            )
            for item in payloads
        ]
        results = []
        for replica, future in futures:
            try:
                results.append((replica, future.result(), None))
            except BaseException as exc:
                results.append((replica, None, exc))
        return results

    def _placements(self, graph_id: str) -> list[_ShardPlacement]:
        placements = self._graphs.get(graph_id)
        if placements is None:
            raise ClusterError(
                f"unknown cluster graph id {graph_id!r}; registered: "
                f"{', '.join(sorted(self._graphs)) or '<none>'}"
            )
        return placements

    # -- replica routing ---------------------------------------------------

    def _candidates(
        self, sg: _ShardGroup, graph_id: "str | None"
    ) -> "list[_Replica]":
        """Failover order for one subquery: healthiest first, evicted
        out of rotation, restricted to replicas actually holding the
        graph (a rejoined-but-not-yet-re-registered replica must never
        be asked for a graph it lost)."""
        ranked = sg.group.ranked()
        if graph_id is not None:
            holding = self._registered.get(graph_id)
            if holding:
                routable = [r for r in ranked if r in holding]
                if not routable:
                    # every registered holder is evicted: last resort,
                    # try them anyway rather than dropping the shard
                    routable = [
                        r for r in sg.group.replica_names if r in holding
                    ]
                ranked = routable or ranked
        return [self._replica_by_name[name] for name in ranked]

    def _deadline_budget(self) -> float:
        return (
            self.retry.deadline
            if self.retry.deadline is not None
            else self.request_timeout
        )

    def _shard_request(
        self,
        sg: _ShardGroup,
        payload: dict,
        span: "Span | None" = None,
        budget: "float | None" = None,
        predicted: float = 0.0,
    ) -> "tuple[object, dict]":
        """One subquery against one shard group, with failover/hedging.

        Returns ``(reply value, meta)`` where meta records which
        replica served and how many failovers/hedges it took.  Raises
        :class:`ClusterError` only when every candidate replica failed
        within the retry and deadline budget.  ``budget`` overrides the
        retry deadline budget (prediction-derived scatter deadlines);
        ``predicted`` seeds the hedge delay before the latency window
        has enough samples for the percentile rule.
        """
        candidates = self._candidates(sg, payload.get("graph_id"))
        if not candidates:
            self._end_scatter_span(span, "no_replicas")
            raise ClusterError(
                f"shard {sg.name!r} has no routable replicas"
            )
        deadline = time.monotonic() + (
            budget if budget is not None else self._deadline_budget()
        )
        try:
            hedge_delay = (
                self.hedge.delay(self._latency[sg.name])
                if self._hedge_pool is not None and len(candidates) >= 2
                and payload.get("op") == "query"
                else None
            )
            if (
                hedge_delay is None
                and predicted > 0.0
                and self._hedge_pool is not None
                and len(candidates) >= 2
                and payload.get("op") == "query"
            ):
                # cold start: no latency history yet, but the cost model
                # already knows roughly how long this shard should take —
                # hedge when the primary runs well past its prediction
                hedge_delay = min(
                    max(
                        predicted * HEDGE_PREDICTION_FACTOR,
                        self.hedge.min_delay,
                    ),
                    self.hedge.max_delay,
                )
            if hedge_delay is not None:
                value, meta = self._hedged_request(
                    sg, candidates, payload, deadline, hedge_delay
                )
            else:
                value, meta = self._failover_request(
                    sg, candidates, payload, deadline
                )
        except BaseException as exc:
            self._end_scatter_span(span, type(exc).__name__)
            raise
        if span is not None:
            span.set_attr("replica", meta["replica"])
            if meta["failovers"]:
                span.set_attr("failovers", meta["failovers"])
        self._end_scatter_span(span, "ok")
        return value, meta

    def _note_failover(
        self, sg: _ShardGroup, source: str, target: str, error: str
    ) -> None:
        self.metrics.counter(
            "repro_cluster_replica_failovers_total",
            "subqueries failed over to another replica",
        ).inc()
        self.flight.record(
            "replica_failover",
            shard=sg.name,
            from_replica=source,
            to_replica=target,
            error=error,
        )
        if not self._failover_dumped:
            self._failover_dumped = True
            self.flight.auto_dump("replica-failover")

    def _timed_call(
        self, sg: _ShardGroup, replica: _Replica, payload: dict,
        deadline: float,
    ):
        """Returns ``(value, elapsed_seconds)`` — the measured latency
        feeds both the hedge window and the cost predictor."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ClusterError(
                f"shard {sg.name!r} deadline budget exhausted before "
                f"calling {replica.name!r}"
            )
        started = time.perf_counter()
        value = self._call(
            replica, payload,
            timeout=min(self.request_timeout, remaining),
        )
        elapsed = time.perf_counter() - started
        self._latency[sg.name].add(elapsed)
        return value, elapsed

    def _failover_request(
        self,
        sg: _ShardGroup,
        candidates: "list[_Replica]",
        payload: dict,
        deadline: float,
    ) -> "tuple[object, dict]":
        errors: dict[str, str] = {}
        attempts = len(candidates) * self.retry.rounds
        for attempt in range(attempts):
            round_index = attempt // len(candidates)
            if attempt and attempt % len(candidates) == 0:
                # wrapped around: every candidate failed this round —
                # back off (capped exponential) before hammering again
                pause = self.retry.backoff(round_index)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if pause > 0:
                    time.sleep(min(pause, max(remaining, 0.0)))
            replica = candidates[attempt % len(candidates)]
            try:
                value, elapsed = self._timed_call(
                    sg, replica, payload, deadline
                )
            except (CommError, ClusterError) as exc:
                errors[replica.name] = repr(exc)
                if attempt + 1 < attempts:
                    nxt = candidates[(attempt + 1) % len(candidates)]
                    self._note_failover(
                        sg, replica.name, nxt.name, type(exc).__name__
                    )
                continue
            return value, {
                "replica": replica.name,
                "failovers": attempt,
                "hedged": False,
                "elapsed": elapsed,
            }
        raise ClusterError(
            f"shard {sg.name!r} failed on every replica within its "
            f"retry budget ({attempts} attempt(s)): "
            f"{errors or 'deadline exhausted'}"
        )

    def _hedged_request(
        self,
        sg: _ShardGroup,
        candidates: "list[_Replica]",
        payload: dict,
        deadline: float,
        hedge_delay: float,
    ) -> "tuple[object, dict]":
        """Primary + (after ``hedge_delay``) one duplicate; first
        success wins, the loser's late reply is dropped and counted —
        exactly-once merging is preserved because only the winner's
        reply leaves this method."""
        assert self._hedge_pool is not None
        primary, backup = candidates[0], candidates[1]
        pending: "dict[Future, _Replica]" = {}
        errors: dict[str, str] = {}
        f_primary = self._hedge_pool.submit(
            self._timed_call, sg, primary, payload, deadline
        )
        pending[f_primary] = primary
        try:
            value, elapsed = f_primary.result(timeout=hedge_delay)
            return value, {
                "replica": primary.name, "failovers": 0, "hedged": False,
                "elapsed": elapsed,
            }
        except FutureTimeoutError:
            pass  # straggler: hedge fires below
        except (CommError, ClusterError) as exc:
            # primary failed outright before the hedge delay — this is
            # plain failover territory, not a hedge
            errors[primary.name] = repr(exc)
            pending.pop(f_primary, None)
            self._note_failover(
                sg, primary.name, backup.name, type(exc).__name__
            )
            value, meta = self._failover_request(
                sg, candidates[1:], payload, deadline
            )
            meta["failovers"] += 1
            return value, meta
        self.metrics.counter(
            "repro_cluster_hedged_queries_total",
            "straggler subqueries duplicated to a second replica",
        ).inc()
        self.flight.record(
            "hedged_query",
            shard=sg.name,
            primary=primary.name,
            hedge=backup.name,
            delay_s=round(hedge_delay, 4),
        )
        f_backup = self._hedge_pool.submit(
            self._timed_call, sg, backup, payload, deadline
        )
        pending[f_backup] = backup
        winner: "tuple[object, float, _Replica] | None" = None
        while pending and winner is None:
            remaining = deadline - time.monotonic()
            done, _ = futures_wait(
                list(pending),
                timeout=max(remaining, 0.0) if remaining > 0 else 0.0,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                break  # deadline exhausted with requests still in flight
            for future in done:
                replica = pending.pop(future)
                try:
                    value, elapsed = future.result()
                except (CommError, ClusterError) as exc:
                    errors[replica.name] = repr(exc)
                    continue
                winner = (value, elapsed, replica)
                break
        if winner is None:
            raise ClusterError(
                f"shard {sg.name!r} hedged subquery failed on both "
                f"replicas: {errors or 'deadline exhausted'}"
            )
        value, elapsed, replica = winner
        for future, loser in pending.items():
            future.add_done_callback(
                self._make_hedge_drop(sg, loser)
            )
        return value, {
            "replica": replica.name,
            "failovers": 0,
            "hedged": True,
            "elapsed": elapsed,
        }

    def _make_hedge_drop(self, sg: _ShardGroup, loser: _Replica):
        def _drop(future: Future) -> None:
            exc = future.exception()
            if exc is None:
                # the loser also answered correctly; its reply is
                # discarded here, before any merge could see it
                self.metrics.counter(
                    "repro_cluster_hedged_duplicates_dropped_total",
                    "correct duplicate replies dropped after a hedge",
                ).inc()
                self.flight.record(
                    "hedged_duplicate_dropped",
                    shard=sg.name,
                    replica=loser.name,
                )
        return _drop

    # -- probe-driven membership -------------------------------------------

    def _probe_ping(self, replica_name: str) -> bool:
        replica = self._replica_by_name[replica_name]
        try:
            reply = replica.probe_connection().request(
                {"op": "ping"}, timeout=self.probe_timeout
            )
        except Exception:
            return False
        return reply == "pong"

    def _evict_replica(self, replica_name: str) -> None:
        sg = self._group_by_replica[replica_name]
        sg.group.evict(replica_name)
        self._sync_replica_gauges(sg)
        self.metrics.counter(
            "repro_cluster_replica_evictions_total",
            "replicas evicted after consecutive failed probes",
        ).inc()
        self.flight.record(
            "replica_evicted", shard=sg.name, replica=replica_name
        )

    def _rejoin_replica(self, replica_name: str) -> bool:
        """Reintegrate a recovered replica (prober callback).

        Graphs are re-registered *before* the replica re-enters
        rotation; any re-registration failure vetoes the rejoin (the
        prober keeps it evicted and retries after its next passing
        probes).
        """
        replica = self._replica_by_name[replica_name]
        sg = self._group_by_replica[replica_name]
        shard_index = next(
            i for i, g in enumerate(self._groups) if g is sg
        )
        for gid, placements in self._graphs.items():
            placement = placements[shard_index]
            spec = placement.spec
            if spec is None:
                continue
            try:
                replica.connection().request(
                    {
                        "op": "register",
                        "graph_id": gid,
                        "graph": spec.graph,
                        "local_lo": spec.local_lo,
                        "local_hi": spec.local_hi,
                    },
                    timeout=self.request_timeout,
                )
            except Exception as exc:
                self.flight.record(
                    "replica_rejoin_failed",
                    shard=sg.name,
                    replica=replica_name,
                    graph_id=gid,
                    error=repr(exc),
                )
                return False
            self._registered.setdefault(gid, set()).add(replica_name)
        sg.group.reintegrate(replica_name)
        # the probe proved liveness and the graphs are back: waiting
        # out the breaker's recovery window would skip a replica known
        # to be healthy
        self._breakers.for_engine(replica_name).reset()
        self._sync_replica_gauges(sg)
        self.metrics.counter(
            "repro_cluster_replica_rejoins_total",
            "replicas reintegrated after passing recovery probes",
        ).inc()
        self.flight.record(
            "replica_rejoined", shard=sg.name, replica=replica_name
        )
        self._record_shard_success(replica_name)
        return True

    # -- graph lifecycle ---------------------------------------------------

    def register_graph(
        self, graph: CSRGraph, graph_id: str | None = None
    ) -> str:
        """Shard ``graph`` across the workers; returns the cluster id.

        Every replica of a shard group receives the identical slice.  A
        shard group with **zero** successful replicas fails the whole
        registration (rolled back everywhere); a group that registered
        on at least one replica tolerates failed siblings — the prober
        re-registers them on rejoin.
        """
        gid = graph_id or graph.name
        if gid in self._graphs:
            raise ClusterError(
                f"cluster graph id {gid!r} already registered"
            )
        with self._span("cluster.register", graph_id=gid):
            specs = make_shards(
                graph,
                num_shards=len(self._groups),
                halo_hops=self.config.cluster_halo_hops,
            )
            payloads = []
            for sg, spec in zip(self._groups, specs):
                for replica in sg.replicas:
                    payloads.append(
                        (
                            replica,
                            {
                                "op": "register",
                                "graph_id": gid,
                                "graph": spec.graph,
                                "local_lo": spec.local_lo,
                                "local_hi": spec.local_hi,
                            },
                        )
                    )
            results = self._scatter(payloads)
        ok_replicas = {
            replica.name for replica, _, exc in results if exc is None
        }
        group_failures: list[str] = []
        for sg in self._groups:
            if not any(r.name in ok_replicas for r in sg.replicas):
                group_failures.append(sg.name)
        if group_failures:
            # registration is all-or-nothing per cluster: roll back the
            # survivors so no shard holds a slice of a graph the
            # cluster never owned
            for replica, _, exc in results:
                if exc is None:
                    try:
                        self._call(
                            replica,
                            {"op": "unregister", "graph_id": gid},
                        )
                    except Exception:
                        pass
            raise ClusterError(
                f"failed to register {gid!r} on shard(s) "
                f"{', '.join(group_failures)}"
            )
        for replica, _, exc in results:
            if exc is not None:
                # the group survives on its siblings; the failed
                # replica re-registers via the prober's rejoin path
                self._record_shard_failure(
                    replica.name,
                    op="register",
                    graph_id=gid,
                    error=repr(exc),
                )
        self._graphs[gid] = [
            _ShardPlacement(
                shard=sg.name,
                lo=spec.lo,
                hi=spec.hi,
                local_lo=spec.local_lo,
                local_hi=spec.local_hi,
                halo_hops=spec.halo_hops,
                spec=spec,
            )
            for sg, spec in zip(self._groups, specs)
        ]
        self._registered[gid] = set(ok_replicas)
        return gid

    def unregister_graph(self, graph_id: str) -> None:
        """Drop ``graph_id`` on every reachable replica."""
        self._placements(graph_id)
        payloads = [
            (replica, {"op": "unregister", "graph_id": graph_id})
            for replica in self._replicas
        ]
        self._scatter(payloads)  # best effort; dead replicas tolerated
        del self._graphs[graph_id]
        self._registered.pop(graph_id, None)

    def graphs(self) -> tuple[str, ...]:
        return tuple(sorted(self._graphs))

    # -- queries -----------------------------------------------------------

    def query(
        self,
        graph_id: str,
        pattern: "Pattern",
        *,
        induced: bool | None = None,
        engine: str | None = None,
        config: SystemConfig | None = None,
        use_cache: bool = True,
    ) -> "SimReport":
        """Scatter one pattern query; gather the merged cluster report.

        A failing replica fails over to its siblings; a shard whose
        every replica fails (comm error, timeout, open breaker) degrades
        the result — ``report.notes["cluster"]`` flags the partial merge
        and names it.  Only a fully failed scatter raises.
        """
        placements = self._placements(graph_id)
        cfg = config or self.config
        plan = build_plan(pattern, induced=induced)
        halo = min(p.halo_hops for p in placements)
        if plan.stop_level > halo:
            raise ClusterError(
                f"pattern {pattern.name!r} needs a {plan.stop_level}-hop "
                f"halo but {graph_id!r} was sharded with halo_hops={halo}; "
                f"re-register with cluster_halo_hops >= {plan.stop_level}"
            )
        by_name = {sg.name: sg for sg in self._groups}
        targets = [
            (by_name[p.shard], p) for p in placements if p.owned > 0
        ]
        self.metrics.counter(
            "repro_cluster_queries_total", "cluster queries accepted"
        ).inc()
        # per-shard cost predictions: each shard's slice has its own
        # stats, so a skewed partition legitimately predicts unevenly
        predict_engine = engine or cfg.engine
        if predict_engine == "auto":
            predict_engine = auto_engine()
        pkey = pattern_cache_key(pattern, induced)
        predictions: "dict[str, tuple]" = {}
        for sg, placement in targets:
            spec = placement.spec
            if spec is None:
                continue
            feats = query_features(
                spec.graph, f"{graph_id}@{sg.name}", pkey
            )
            est = self.predictor.predict(feats, predict_engine)
            budget = None
            if est.source == "profile":
                # only measured history tightens the deadline — the
                # conservative prior would cut off legitimately slow
                # first-contact queries
                budget = min(
                    self._deadline_budget(),
                    max(est.seconds * DEADLINE_SAFETY, DEADLINE_FLOOR),
                )
            predictions[sg.name] = (feats, est, budget)
        tracer = self._tracer
        trace_id = new_trace_id() if tracer is not None else None
        started = time.perf_counter()
        scatter_spans: "dict[str, Span]" = {}
        with self._span(
            "cluster.query",
            graph_id=graph_id,
            pattern=pattern.name,
            fan_out=len(targets),
            trace_id=trace_id,
            lane="coordinator",
        ) as qspan:
            calls = []
            for sg, placement in targets:
                sspan = None
                trace_ctx = None
                if tracer is not None:
                    # one manually-started scatter span per shard: it is
                    # the ingest parent and its start is the re-anchor
                    # point for the shard's whole span tree
                    sspan = tracer.start_span(
                        "cluster.scatter",
                        parent=qspan,
                        shard=sg.name,
                        trace_id=trace_id,
                        lane="coordinator",
                    )
                    scatter_spans[sg.name] = sspan
                    trace_ctx = TraceContext(
                        trace_id=trace_id,
                        parent_span_id=sspan.span_id,
                        anchor=time.time(),
                    )
                calls.append(
                    (
                        sg,
                        placement,
                        {
                            "op": "query",
                            "graph_id": graph_id,
                            "pattern": pattern,
                            "induced": induced,
                            "engine": engine,
                            "config": config,
                            "use_cache": use_cache,
                            "timeout": self.request_timeout,
                            "trace": trace_ctx,
                        },
                        sspan,
                    )
                )
            futures = []
            for sg, placement, payload, sspan in calls:
                _, est, budget = predictions.get(
                    sg.name, (None, None, None)
                )
                futures.append(
                    (
                        sg,
                        placement,
                        self._pool.submit(
                            self._shard_request,
                            sg,
                            payload,
                            sspan,
                            budget=budget,
                            predicted=(
                                est.seconds if est is not None else 0.0
                            ),
                        ),
                    )
                )
            replies: "list[tuple[tuple[int, int], SimReport]]" = []
            served_by: dict[str, str] = {}
            failed: dict[str, str] = {}
            failovers = 0
            hedged = 0
            for sg, placement, future in futures:
                try:
                    value, meta = future.result()
                except BaseException as exc:
                    failed[sg.name] = repr(exc)
                    self._record_shard_failure(
                        sg.name,
                        op="query",
                        graph_id=graph_id,
                        error=repr(exc),
                    )
                    continue
                self._record_shard_success(sg.name)
                failovers += meta.get("failovers", 0)
                hedged += 1 if meta.get("hedged") else 0
                served_by[sg.name] = meta.get("replica", sg.name)
                shard_elapsed = meta.get("elapsed")
                prediction = predictions.get(sg.name)
                if prediction is not None and shard_elapsed:
                    feats, est, _ = prediction
                    self.predictor.observe(
                        feats, predict_engine, shard_elapsed
                    )
                    if est.seconds > 0.0:
                        self.predictor.record_accuracy(
                            est.seconds, shard_elapsed
                        )
                envelope = value if isinstance(value, dict) else {
                    "report": value
                }
                self.federation.apply(
                    envelope.get("shard", sg.name),
                    envelope.get("metrics"),
                )
                if tracer is not None:
                    self._adopt_shard_trace(
                        sg.name,
                        envelope,
                        scatter_spans.get(sg.name),
                    )
                replies.append(
                    (
                        (placement.lo, placement.hi),
                        envelope["report"],
                    )
                )
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "repro_cluster_query_seconds",
            "end-to-end scatter/gather query latency",
        ).observe(elapsed)
        self.slo.record(elapsed, ok=not failed)
        if not replies:
            self.flight.record(
                "query_failed",
                graph_id=graph_id,
                pattern=pattern.name,
                failed_shards=sorted(failed),
            )
            self.flight.auto_dump("query-failed")
            raise ClusterError(
                f"query {pattern.name!r} on {graph_id!r} failed on every "
                f"shard: {failed}"
            )
        merged = merge_replies(
            replies,
            graph_name=graph_id,
            pattern_name=pattern.name,
        )
        merged.config_name = cfg.name
        merged.notes["cluster"] = {
            "shards": len(placements),
            "queried": len(targets),
            "ok": len(replies),
            "partial": bool(failed),
            "failed_shards": sorted(failed),
            "failures": failed,
            "served_by": served_by,
            "failovers": failovers,
            "hedged": hedged,
            "predicted_seconds": {
                name: round(est.seconds, 6)
                for name, (_, est, _) in predictions.items()
            },
        }
        if trace_id is not None:
            merged.notes["cluster"]["trace_id"] = trace_id
        if failed:
            self.metrics.counter(
                "repro_cluster_partial_results_total",
                "merged results missing at least one shard",
            ).inc()
            self.flight.record(
                "partial_result",
                graph_id=graph_id,
                pattern=pattern.name,
                failed_shards=sorted(failed),
            )
            self.flight.auto_dump("shard-failure")
        return merged

    def _adopt_shard_trace(
        self, shard: str, envelope: dict, sspan: "Span | None"
    ) -> None:
        """Re-anchor one shard's span tree under its scatter span.

        The batch is shifted so its earliest start (the shard's
        ``service.job``) lands exactly at the scatter span's start —
        shards have their own ``perf_counter`` origin, so only the
        coordinator timeline is meaningful after the merge.  Adopted
        spans get ``shard``/``lane`` attributes so the Chrome export
        gives each shard its own track.
        """
        tracer = self._tracer
        if tracer is None:
            return
        profile = envelope.get("profile")
        if profile is not None:
            self._profiles.append((shard, profile))
        spans = envelope.get("spans") or []
        if not spans:
            return
        adopted = tracer.ingest(
            spans,
            parent=sspan,
            align_to=sspan.start if sspan is not None else None,
        )
        replica = envelope.get("shard")
        for sp in adopted:
            sp.attrs.setdefault("shard", shard)
            if replica is not None:
                sp.attrs.setdefault("replica", replica)
            sp.attrs["lane"] = shard

    def count(self, graph_id: str, pattern: "Pattern", **kwargs) -> int:
        """Cluster-wide embedding count (raises on partial results)."""
        report = self.query(graph_id, pattern, **kwargs)
        if report.notes["cluster"]["partial"]:
            raise ClusterError(
                f"partial cluster result for {pattern.name!r} on "
                f"{graph_id!r}: shards "
                f"{report.notes['cluster']['failed_shards']} failed"
            )
        return report.embeddings

    # -- health / lifecycle ------------------------------------------------

    def health(self) -> ClusterHealth:
        """Gather per-replica health; aggregate to one cluster state.

        Replica replies piggyback metrics deltas (federated here) and
        the SLO tracker's statuses join the report: a burning error
        budget degrades the cluster even while every replica is
        individually healthy.  A non-healthy aggregate records a flight
        event and — once per state, when a flight dir is configured —
        auto-dumps the coordinator's ring.
        """
        results = self._scatter(
            [(r, {"op": "health"}) for r in self._replicas]
        )
        shards: dict[str, "HealthReport | None"] = {}
        worst = HealthState.HEALTHY
        any_dead = False
        for replica, value, exc in results:
            if exc is not None:
                shards[replica.name] = None
                any_dead = True
                self._record_shard_failure(
                    replica.name,
                    op="health",
                    error=repr(exc),
                )
                continue
            self._record_shard_success(replica.name)
            if isinstance(value, dict) and "report" in value:
                report = value["report"]
                self.federation.apply(
                    replica.name, value.get("metrics")
                )
            else:  # bare HealthReport (older shard)
                report = value
            shards[replica.name] = report
            if report.state.value > worst.value:
                worst = report.state
        snapshots = self._breakers.snapshots()
        breaker_open = any(s.state != "closed" for s in snapshots.values())
        slo_statuses = self.slo.evaluate()
        slo_violated = any(not st.met for st in slo_statuses.values())
        replica_states = {
            sg.name: {
                name: state.name.lower()
                for name, state in sg.group.states().items()
            }
            for sg in self._groups
        }
        any_evicted = any(
            state == "evicted"
            for group in replica_states.values()
            for state in group.values()
        )
        if (
            (any_dead or breaker_open or slo_violated or any_evicted)
            and worst is HealthState.HEALTHY
        ):
            worst = HealthState.DEGRADED
        if worst is not HealthState.HEALTHY:
            self.flight.record(
                "health_degraded",
                state=worst.name.lower(),
                dead=sorted(
                    name for name, r in shards.items() if r is None
                ),
                slo_violations=sorted(
                    name for name, st in slo_statuses.items()
                    if not st.met
                ),
            )
            self.flight.auto_dump(f"health-{worst.name.lower()}")
        return ClusterHealth(
            state=worst,
            shards=shards,
            breakers=snapshots,
            slo=slo_statuses,
            replicas=replica_states,
        )

    def stats(self) -> dict:
        """Per-replica worker stats (``op: stats``) keyed by name.

        Unreachable replicas map to None — the ``top`` dashboard
        renders them as DEAD rows instead of erroring out.
        """
        results = self._scatter(
            [(r, {"op": "stats"}) for r in self._replicas]
        )
        return {
            replica.name: (None if exc is not None else value)
            for replica, value, exc in results
        }

    def predictor_snapshot(self) -> dict:
        """Accuracy + coverage of the coordinator's per-shard cost model.

        The same shape as the service-level
        ``QueryService.stats().predictor`` snapshot: the accuracy window
        (predicted/actual ratio percentiles, fraction within 2x), the
        number of observations, profiled shapes, and learned per-engine
        throughput rates.
        """
        return self.predictor.snapshot()

    def shard_flight(self, shard: str) -> dict:
        """Fetch one live shard's flight-recorder ring (``op: flight``).

        ``shard`` may name a replica directly, or a shard group — the
        group resolves to its current preferred replica.
        """
        replica = self._replica_by_name.get(shard)
        if replica is None:
            for sg in self._groups:
                if sg.name == shard:
                    ranked = sg.group.ranked()
                    replica = self._replica_by_name[ranked[0]]
                    break
        if replica is None:
            raise ClusterError(f"unknown shard {shard!r}")
        return self._call(replica, {"op": "flight"})

    # -- observability surfaces --------------------------------------------

    @property
    def observability(self) -> bool:
        return self._tracer is not None

    @property
    def replicated(self) -> bool:
        """True when any shard group has more than one replica."""
        return self._replicated

    def replica_states(self) -> dict[str, dict[str, str]]:
        """``{shard: {replica: state}}`` routing view (CLI/tests)."""
        return {
            sg.name: {
                name: state.name.lower()
                for name, state in sg.group.states().items()
            }
            for sg in self._groups
        }

    def metrics_text(self) -> str:
        """One Prometheus exposition for the whole cluster.

        Shard series carry ``shard=<name>`` labels (with histogram
        aggregates under ``shard="all"``); the coordinator's own
        registry is folded in as ``shard="coordinator"`` through the
        same delta path.
        """
        self.federation.apply(
            "coordinator", self._self_delta.collect(), aggregate=False
        )
        return self.federation.render()

    def trace_events(self) -> list[dict]:
        """Chrome trace events: one merged cluster timeline.

        Coordinator spans share the ``coordinator`` lane; each shard's
        re-anchored span tree gets its own lane; each shard's PE
        activity (from shipped profiles) gets its own
        ``accelerator (cycles) — <shard>`` process.
        """
        if self._tracer is None:
            raise ClusterError(
                "tracing is disabled; construct the coordinator with "
                "observability=True"
            )
        pe_groups: dict[str, list] = {}
        for shard, profile in self._profiles:
            pe_groups.setdefault(shard, []).extend(profile.pe_events)
        return chrome_trace_events(
            self._tracer.finished(), pe_groups=pe_groups
        )

    def export_trace(self, path: str | None = None) -> list[dict]:
        """The merged cluster Chrome/Perfetto trace; written when ``path``
        is given.  Always returns the event list."""
        events = self.trace_events()
        if path is not None:
            payload = {"traceEvents": events, "displayTimeUnit": "ms"}
            Path(path).write_text(json.dumps(payload))
        return events

    def shutdown(self, stop_workers: bool = True) -> None:
        """Close connections (optionally stopping the workers first)."""
        if self._shutdown:
            return
        self._shutdown = True
        self.prober.stop()
        if stop_workers:
            self._scatter(
                [(r, {"op": "shutdown"}) for r in self._replicas]
            )
        for replica in self._replicas:
            replica.close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coordinator({len(self._groups)} shards, "
            f"{len(self._replicas)} replicas, "
            f"graphs={sorted(self._graphs)})"
        )


class LocalCluster:
    """Workers + coordinator in one process — the cluster's ``localhost``.

    Spins up ``num_shards`` shard groups of ``replicas``
    :class:`ShardWorker`\\ s each on the chosen transport and a
    :class:`Coordinator` over them.  With ``replicas=1`` (the default)
    workers keep the bare ``shard<i>`` names and the cluster behaves
    exactly like the pre-replication one; with more, replicas are named
    ``shard<i>/r<j>``.  ``mode`` selects each worker's service pool:
    ``inline`` for deterministic tests, ``process`` to give every shard
    its own OS process (how the scaling benchmark runs).
    :meth:`kill_shard` / :meth:`kill_replica` are the chaos hooks and
    :meth:`revive_replica` the recovery hook; killed workers are still
    resource-reclaimed by :meth:`shutdown`.
    """

    def __init__(
        self,
        num_shards: int | None = None,
        config: SystemConfig | None = None,
        *,
        transport: str = "inproc",
        mode: str = "inline",
        max_workers: int | None = None,
        observability: bool = False,
        request_timeout: float = 120.0,
        flight_dir: "str | Path | None" = None,
        replicas: int | None = None,
        retry: "RetryPolicy | None" = None,
        hedge: "HedgePolicy | None" = None,
        probe_interval: float = 0.0,
        probe_failures: int = 3,
        probe_recoveries: int = 2,
        probe_timeout: float = 5.0,
    ) -> None:
        self.config = config or xset_default()
        if num_shards is None:
            num_shards = self.config.cluster_shards or 2
        if num_shards < 1:
            raise ClusterError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if replicas is None:
            replicas = self.config.cluster_replicas
        if replicas < 1:
            raise ClusterError(
                f"replicas must be >= 1, got {replicas}"
            )
        self.transport_name = transport
        self.num_replicas = replicas
        tr = get_transport(transport)
        # observability propagates to every shard service: the workers
        # record the spans/profiles the coordinator re-anchors
        self.worker_groups: "list[list[ShardWorker]]" = []
        for i in range(num_shards):
            group = [
                ShardWorker(
                    f"shard{i}" if replicas == 1 else f"shard{i}/r{j}",
                    tr,
                    self.config,
                    mode=mode,
                    max_workers=max_workers,
                    observability=observability,
                )
                for j in range(replicas)
            ]
            self.worker_groups.append(group)
        self.workers: "list[ShardWorker]" = [
            worker for group in self.worker_groups for worker in group
        ]
        self.coordinator = Coordinator(
            [
                (
                    f"shard{i}",
                    [(w.name, w.address) for w in group],
                )
                for i, group in enumerate(self.worker_groups)
            ],
            tr,
            self.config,
            observability=observability,
            request_timeout=request_timeout,
            flight_dir=flight_dir,
            retry=retry,
            hedge=hedge,
            probe_interval=probe_interval,
            probe_failures=probe_failures,
            probe_recoveries=probe_recoveries,
            probe_timeout=probe_timeout,
        )

    def kill_shard(self, index: int) -> str:
        """Chaos: kill shard ``index``'s primary replica; returns its
        name.  With ``replicas=1`` this makes the whole shard
        unreachable (the pre-replication behaviour); with more, the
        siblings keep answering."""
        return self.kill_replica(index, 0)

    def kill_replica(self, shard_index: int, replica_index: int = 0) -> str:
        """Chaos: make one replica unreachable; returns its name."""
        worker = self.worker_groups[shard_index][replica_index]
        worker.kill()
        self.coordinator.flight.record("shard_kill", shard=worker.name)
        return worker.name

    def revive_replica(
        self, shard_index: int, replica_index: int = 0
    ) -> str:
        """Recovery: bring a killed replica back on its old address."""
        worker = self.worker_groups[shard_index][replica_index]
        worker.revive()
        self.coordinator.flight.record(
            "shard_revive", shard=worker.name
        )
        return worker.name

    def shutdown(self) -> None:
        """Stop everything; always reclaims shm, even for killed shards."""
        self.coordinator.shutdown(stop_workers=True)
        for worker in self.workers:
            worker.force_close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
