"""Shard worker: one :class:`QueryService` behind a comm listener.

A :class:`ShardWorker` owns a full, regular query service — pool, graph
registry (with shared-memory shipping), result cache, resilience — and
answers the cluster protocol over whatever transport it was given.  It
knows nothing about *how* the graph was sharded: the coordinator ships
each shard's induced subgraph plus the local owned root range, and every
``query`` op runs root-restricted to that range, so the worker's counts
are exactly "embeddings rooted in the vertices this shard owns".

Ops (payload ``{"op": ..., ...}`` → reply value):

``ping``        liveness probe → ``"pong"``
``register``    shard subgraph + owned local range → graph id
``unregister``  drop one shard graph (unlinks its shm segment)
``query``       pattern/config → envelope: root-restricted
                :class:`SimReport` + metrics delta (+ spans/profile when
                the frame carried a :class:`~repro.obs.TraceContext`)
``health``      envelope: the service's :class:`HealthReport` + metrics
                delta + flight-event counts
``stats``       small dict (jobs run, cache hits, mode, pid)
``flight``      the service's flight-recorder ring as a JSON-able dict
``shutdown``    stop the service, close the listener → ``True``

``query`` and ``health`` replies are *envelopes* (dicts) rather than
bare values: every reply piggybacks a compact
:class:`~repro.obs.MetricsSnapshot` delta so the coordinator's federated
registry stays current without a separate scrape loop, and a traced
query additionally ships the job's finished span tree + its
:class:`~repro.obs.ExecutionProfile` for coordinator-side re-anchoring.

:meth:`kill` simulates a crash for chaos tests: the listener drops dead
(peers see :class:`~repro.errors.CommClosedError`) but the Python state
stays reachable so :meth:`force_close` can still unlink shared-memory
segments — the in-process stand-in for an external janitor cleaning up
after a dead host.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from ..core.config import SystemConfig
from ..errors import ClusterError
from ..obs.cluster import TraceContext, collect_job_spans
from ..obs.federation import MetricsDeltaTracker
from ..service.service import QueryService
from .comm.base import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience import ResilienceConfig

__all__ = ["ShardWorker"]


class ShardWorker:
    """One cluster shard: a query service exposed over a transport."""

    def __init__(
        self,
        name: str,
        transport: Transport,
        config: SystemConfig | None = None,
        *,
        mode: str = "inline",
        max_workers: int | None = None,
        observability: bool = False,
        resilience: "ResilienceConfig | None" = None,
    ) -> None:
        self.name = name
        self.service = QueryService(
            config,
            mode=mode,
            max_workers=max_workers,
            observability=observability,
            resilience=resilience,
        )
        #: graph_id → owned local root range ``[lo, hi)``
        self._owned: dict[str, tuple[int, int]] = {}
        #: ships what changed in the service registry since the last reply
        self._metrics_delta = MetricsDeltaTracker(self.service.metrics)
        self._queries = 0
        self._killed = False
        self._closed = False
        self._listener = transport.listen(self._handle, name=name)

    @property
    def address(self) -> str:
        return self._listener.address

    @property
    def killed(self) -> bool:
        return self._killed

    # -- protocol ----------------------------------------------------------

    def _handle(self, payload: Any) -> Any:
        if not isinstance(payload, dict) or "op" not in payload:
            raise ClusterError(f"malformed cluster request: {payload!r}")
        op = payload["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ClusterError(f"unknown cluster op {op!r}")
        return handler(payload)

    def _op_ping(self, payload: dict) -> str:
        return "pong"

    def _op_register(self, payload: dict) -> str:
        if payload["graph_id"] in self._owned:
            # idempotent re-registration: a replica that missed an
            # unregister while dead (or is being re-seeded on rejoin)
            # replaces its copy instead of erroring the rejoin away
            self.service.unregister_graph(payload["graph_id"])
            self._owned.pop(payload["graph_id"], None)
        graph_id = self.service.register_graph(
            payload["graph"], payload["graph_id"]
        )
        self._owned[graph_id] = (
            int(payload["local_lo"]),
            int(payload["local_hi"]),
        )
        return graph_id

    def _op_unregister(self, payload: dict) -> int:
        graph_id = payload["graph_id"]
        dropped = self.service.unregister_graph(graph_id)
        self._owned.pop(graph_id, None)
        return dropped

    def _op_query(self, payload: dict) -> dict:
        graph_id = payload["graph_id"]
        owned = self._owned.get(graph_id)
        if owned is None:
            raise ClusterError(
                f"shard {self.name!r} has no registered shard graph "
                f"{graph_id!r}"
            )
        trace: "TraceContext | None" = payload.get("trace")
        handle = self.service.submit(
            graph_id,
            payload["pattern"],
            induced=payload.get("induced"),
            engine=payload.get("engine"),
            config=payload.get("config"),
            use_cache=payload.get("use_cache", True),
            root_range=owned,
        )
        report = handle.result(timeout=payload.get("timeout"))
        self._queries += 1
        profile = getattr(report, "profile", None)
        # the report itself never carries the profile over the wire: the
        # envelope ships it explicitly (spans stripped — the span tree
        # travels once, in the "spans" field)
        report.profile = None
        envelope: dict[str, Any] = {
            "report": report,
            "shard": self.name,
            "metrics": self._metrics_delta.collect(),
        }
        ob = self.service._observation
        if trace is not None and ob is not None:
            spans = collect_job_spans(
                ob.tracer.finished(), handle.job_id
            )
            for sp in spans:
                if sp.parent_id is None:
                    # stamp the propagated context on the shard-local
                    # roots: re-parenting happens coordinator-side, this
                    # is the diagnostic record of what arrived
                    sp.attrs.setdefault("trace_id", trace.trace_id)
                    sp.attrs.setdefault(
                        "coordinator_parent", trace.parent_span_id
                    )
                    sp.attrs.setdefault(
                        "clock_skew_s", round(trace.skew(), 6)
                    )
            envelope["spans"] = spans
            if profile is not None:
                envelope["profile"] = replace(profile, spans=[])
        return envelope

    def _op_health(self, payload: dict) -> dict:
        return {
            "report": self.service.health(),
            "shard": self.name,
            "metrics": self._metrics_delta.collect(),
            "flight": self.service.flight.counts(),
        }

    def _op_flight(self, payload: dict) -> dict:
        """The shard service's flight-recorder ring (JSON-able)."""
        return self.service.flight.to_payload()

    def _op_stats(self, payload: dict) -> dict:
        import os

        return {
            "name": self.name,
            "queries": self._queries,
            "graphs": list(self.service.graphs()),
            "mode": self.service.mode,
            "pid": os.getpid(),
        }

    def _op_shutdown(self, payload: dict) -> bool:
        self.close()
        return True

    # -- lifecycle ---------------------------------------------------------

    def kill(self) -> None:
        """Chaos: drop dead on the wire (state stays for force_close)."""
        self._killed = True
        self._listener.close()

    def revive(self) -> None:
        """Recovery: come back up on the same address after :meth:`kill`.

        The service (graphs, cache, metrics) survived the "crash" —
        what died was the wire.  Real deployments restart the process
        and re-register; the coordinator's rejoin path re-ships graphs
        either way, so tests exercise the same protocol.
        """
        if self._closed:
            raise ClusterError(
                f"worker {self.name!r} was shut down, not killed; "
                f"it cannot revive"
            )
        self._listener.reopen()
        self._killed = False

    def close(self) -> None:
        """Graceful stop: close the listener, drain and shut the service."""
        if self._closed:
            return
        self._closed = True
        self._listener.close()
        self.service.shutdown()

    def force_close(self) -> None:
        """Release resources of a live *or killed* worker (shm cleanup)."""
        self._closed = True
        self._listener.close()
        self.service.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "killed" if self._killed else (
            "closed" if self._closed else "live"
        )
        return f"ShardWorker({self.name!r}, {self.address}, {state})"
