"""In-process transport: a global address registry, synchronous calls.

``listen`` parks the handler in a module-level table under a fresh
``inproc://`` address; ``connect`` looks it up; ``request`` invokes the
handler directly on the caller's thread.  There is no serialisation and
no concurrency of its own — which is exactly the point: cluster logic
exercised over this transport is deterministic, so the equivalence tests
debug sharding bugs, not socket weather.

Closed listeners stay in the table as tombstones: a connection made
before the close raises :class:`~repro.errors.CommClosedError` on its
next request, the same observable behaviour as a dead TCP peer.
:meth:`InprocListener.reopen` flips a tombstone live again — the chaos
stand-in for a crashed shard process restarting on the same address —
and existing connections resume working, like a reconnecting client.

Requests pass through the comm fault sites (``comm.send`` before the
handler, ``comm.recv`` after) when an injector is armed via
:func:`repro.resilience.inject_comm`; a ``comm.recv`` DROP therefore
loses the reply *after* the handler did the work — the ambiguous
failure replication has to tolerate.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from ...errors import CommClosedError
from ...resilience import faults as _faults
from .base import Handler, register_transport

__all__ = ["InprocTransport", "InprocListener", "InprocConnection"]

_lock = threading.Lock()
_counter = itertools.count(1)
#: address → listener (live or closed; closed ones answer with the error)
_listeners: "dict[str, InprocListener]" = {}


class InprocListener:
    def __init__(self, handler: Handler, name: str) -> None:
        suffix = f"-{name}" if name else ""
        self._handler = handler
        self._address = f"inproc://peer-{next(_counter)}{suffix}"
        self._closed = False
        with _lock:
            _listeners[self._address] = self

    @property
    def address(self) -> str:
        return self._address

    @property
    def closed(self) -> bool:
        return self._closed

    def handle(self, payload: Any) -> Any:
        if self._closed:
            raise CommClosedError(
                f"listener at {self._address} has been closed"
            )
        return self._handler(payload)

    def close(self) -> None:
        self._closed = True

    def reopen(self) -> None:
        """Come back up on the same address (a restarted peer)."""
        with _lock:
            _listeners[self._address] = self
        self._closed = False


class InprocConnection:
    def __init__(self, listener: InprocListener) -> None:
        self._listener = listener
        self._closed = False

    def request(self, payload: Any, timeout: float | None = None) -> Any:
        # timeout is accepted for interface parity; a synchronous handler
        # call cannot be interrupted, so it is not enforced here
        if self._closed:
            raise CommClosedError("connection is closed")
        inj = _faults.comm_active()
        if inj is not None:
            inj.comm("comm.send")
        value = self._listener.handle(payload)
        if inj is not None:
            inj.comm("comm.recv")
        return value

    def close(self) -> None:
        self._closed = True


class InprocTransport:
    """The in-process transport (stateless; all state is module-global)."""

    def listen(self, handler: Handler, name: str = "") -> InprocListener:
        return InprocListener(handler, name)

    def connect(self, address: str) -> InprocConnection:
        with _lock:
            listener = _listeners.get(address)
        if listener is None or listener.closed:
            raise CommClosedError(f"no live listener at {address}")
        return InprocConnection(listener)


register_transport("inproc", InprocTransport)
