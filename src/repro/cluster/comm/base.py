"""Comm-layer contract: transports, listeners, connections, frames.

The cluster speaks one tiny request/response protocol: a *payload* (any
picklable object, in practice a ``{"op": ...}`` dict) goes out, one reply
payload comes back.  Everything else — where the peer lives, how bytes
move — is a :class:`Transport`:

* ``inproc`` (:mod:`repro.cluster.comm.inproc`) — an in-process registry
  with synchronous handler calls.  Deterministic, zero-copy, no sockets;
  what the tests and the default local cluster run on.
* ``tcp`` (:mod:`repro.cluster.comm.tcp`) — length-prefixed pickle frames
  over asyncio TCP streams on a background event loop, for shards in
  other processes or on other hosts.

Failure vocabulary is shared: a gone peer (refused, reset, listener
closed) raises :class:`~repro.errors.CommClosedError`; an expired request
raises :class:`~repro.errors.CommTimeoutError`.  The coordinator maps
both onto per-shard circuit breakers, so transports must never invent
their own exception types.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Protocol, runtime_checkable

from ...errors import CommError

__all__ = [
    "Connection",
    "Listener",
    "Transport",
    "Handler",
    "encode_frame",
    "frame_size",
    "decode_body",
    "register_transport",
    "get_transport",
    "available_transports",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
]

#: request handler: one payload in, one reply payload out
Handler = Callable[[Any], Any]

#: 8-byte big-endian unsigned length prefix
FRAME_HEADER = struct.Struct(">Q")

#: refuse frames above this size (a corrupt length prefix would otherwise
#: ask the reader to allocate petabytes)
MAX_FRAME_BYTES = 1 << 32


@runtime_checkable
class Connection(Protocol):
    """One client endpoint speaking the request/response protocol."""

    def request(self, payload: Any, timeout: float | None = None) -> Any:
        """Send ``payload``; block for the reply (one in flight at a time)."""
        ...

    def close(self) -> None: ...


@runtime_checkable
class Listener(Protocol):
    """A bound server endpoint dispatching requests to its handler."""

    @property
    def address(self) -> str: ...

    def close(self) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """Factory for listeners and connections of one wire flavour."""

    def listen(self, handler: Handler, name: str = "") -> Listener: ...

    def connect(self, address: str) -> Connection: ...


def encode_frame(payload: Any) -> bytes:
    """Serialise one payload as a length-prefixed pickle frame."""
    body = pickle.dumps(payload, protocol=-1)
    return FRAME_HEADER.pack(len(body)) + body


def frame_size(header: bytes) -> int:
    """Validate and decode one length prefix."""
    (size,) = FRAME_HEADER.unpack(header)
    if size > MAX_FRAME_BYTES:
        raise CommError(
            f"frame length {size} exceeds the {MAX_FRAME_BYTES}-byte cap "
            f"(corrupt stream?)"
        )
    return size


def decode_body(body: bytes) -> Any:
    """Deserialise one frame body.

    A body that does not unpickle — a corrupt length prefix silently
    misaligned the stream, or the peer sent garbage — raises a typed
    :class:`~repro.errors.CommError` so readers fail fast instead of
    propagating whatever :mod:`pickle` felt like raising (or, worse,
    blocking forever on a frame boundary that will never line up again).
    """
    try:
        return pickle.loads(body)
    except CommError:
        raise
    except Exception as exc:
        raise CommError(
            f"undecodable {len(body)}-byte frame body "
            f"(corrupt stream?): {exc!r}"
        ) from exc


_TRANSPORTS: dict[str, Callable[[], Transport]] = {}


def register_transport(name: str, factory: Callable[[], Transport]) -> None:
    """Register a transport factory under ``name`` (idempotent)."""
    _TRANSPORTS[name] = factory


def get_transport(name: str) -> Transport:
    """Instantiate the transport registered as ``name``."""
    try:
        factory = _TRANSPORTS[name]
    except KeyError:
        raise CommError(
            f"unknown transport {name!r}; available: "
            f"{', '.join(available_transports())}"
        ) from None
    return factory()


def available_transports() -> tuple[str, ...]:
    return tuple(sorted(_TRANSPORTS))
