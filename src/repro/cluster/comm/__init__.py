"""Pluggable cluster comm layer: transports speaking one framed protocol.

Importing this package registers the built-in transports (``inproc`` and
``tcp``); ``get_transport(name)`` instantiates one.  See
:mod:`repro.cluster.comm.base` for the contract.
"""

from .base import (
    Connection,
    Handler,
    Listener,
    Transport,
    available_transports,
    decode_body,
    encode_frame,
    frame_size,
    get_transport,
    register_transport,
)
from .inproc import InprocTransport
from .tcp import TCPTransport

__all__ = [
    "Connection",
    "Handler",
    "InprocTransport",
    "Listener",
    "TCPTransport",
    "Transport",
    "available_transports",
    "decode_body",
    "encode_frame",
    "frame_size",
    "get_transport",
    "register_transport",
]
