"""TCP transport: length-prefixed pickle frames over asyncio streams.

One background event-loop thread (daemon, started lazily, shared by every
listener and connection in the process) owns all sockets.  The framing is
an 8-byte big-endian length prefix followed by a pickle body — see
:mod:`repro.cluster.comm.base` for the helpers and the size cap.

Handlers are executed on a small thread pool, *not* on the event loop: a
shard worker's ``query`` op blocks for the whole engine run, and parking
it on the loop would serialise the cluster.  Handler exceptions travel
back as ``("err", exc)`` frames and re-raise client-side, matching the
in-process transport's propagation semantics.

A request that times out poisons its connection (the reply may arrive
mid-frame later), so the connection closes itself and the caller gets
:class:`~repro.errors.CommTimeoutError`; reconnecting is the caller's
policy (the coordinator's breakers handle exactly this).

Two hardening rules keep a hostile or corrupt stream from wedging a
reader:

* **per-frame body timeout** — once a length prefix arrives, the body
  must follow within :data:`FRAME_BODY_TIMEOUT` seconds.  Waiting for a
  *header* may block forever (an idle connection is healthy); waiting
  mid-frame may not (a peer that sent a prefix and stalled is broken or
  lying about the length).
* **typed corrupt-frame failure** — an over-cap length prefix or an
  undecodable body raises :class:`~repro.errors.CommError`; the server
  closes that connection (frames can never re-align on a poisoned
  stream) but keeps serving other peers.

:meth:`TCPListener.reopen` rebinds the same port after a chaos
:meth:`close` — the stand-in for a crashed shard host coming back.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ...errors import CommClosedError, CommError, CommTimeoutError
from ...resilience import faults as _faults
from .base import (
    FRAME_HEADER,
    Handler,
    decode_body,
    encode_frame,
    frame_size,
    register_transport,
)

__all__ = ["TCPTransport", "TCPListener", "TCPConnection"]

#: worker threads per listener for blocking handler calls
HANDLER_THREADS = 8

#: seconds a reader waits for the *body* after its length prefix arrived
#: (module attribute, read per frame, so chaos tests can shrink it)
FRAME_BODY_TIMEOUT = 30.0

_loop_lock = threading.Lock()
_loop: asyncio.AbstractEventLoop | None = None


def _get_loop() -> asyncio.AbstractEventLoop:
    """The process-wide comm event loop (started on first use)."""
    global _loop
    with _loop_lock:
        if _loop is None or _loop.is_closed():
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-comm-loop", daemon=True
            )
            thread.start()
            _loop = loop
        return _loop


def _run(coro, timeout: float | None = None):
    """Run ``coro`` on the comm loop from a synchronous caller."""
    future = asyncio.run_coroutine_threadsafe(coro, _get_loop())
    try:
        return future.result(timeout)
    except TimeoutError:
        future.cancel()
        raise CommTimeoutError(
            f"comm request did not complete within {timeout}s"
        ) from None


async def _read_frame(reader: asyncio.StreamReader) -> Any:
    header = await reader.readexactly(FRAME_HEADER.size)
    size = frame_size(header)
    try:
        body = await asyncio.wait_for(
            reader.readexactly(size), timeout=FRAME_BODY_TIMEOUT
        )
    except asyncio.TimeoutError:
        raise CommTimeoutError(
            f"frame body ({size} bytes) did not arrive within "
            f"{FRAME_BODY_TIMEOUT}s of its length prefix"
        ) from None
    return decode_body(body)


class TCPListener:
    def __init__(self, handler: Handler, name: str = "") -> None:
        self._handler = handler
        self._name = name
        self._pool = self._make_pool()
        self._writers: set[asyncio.StreamWriter] = set()
        self._closed = False
        self._server: asyncio.AbstractServer = _run(
            asyncio.start_server(self._serve, host="127.0.0.1", port=0)
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self._port = port
        self._address = f"tcp://{host}:{port}"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=HANDLER_THREADS,
            thread_name_prefix=f"comm-{self._name or 'listener'}",
        )

    @property
    def address(self) -> str:
        return self._address

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    payload = await _read_frame(reader)
                except CommError:
                    # corrupt length prefix, undecodable body, or a
                    # mid-frame stall: the stream can never re-align on
                    # a frame boundary again — drop this peer (typed,
                    # deliberate, logged by the close), keep serving
                    # everyone else
                    break
                try:
                    result = await loop.run_in_executor(
                        self._pool, self._handler, payload
                    )
                    reply = ("ok", result)
                except Exception as exc:
                    reply = ("err", exc)
                writer.write(encode_frame(reply))
                await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shut() -> None:
            self._server.close()
            # abort established connections too: a "killed" shard must
            # look dead to peers mid-conversation, not just to new dials
            for writer in list(self._writers):
                writer.close()
            await self._server.wait_closed()

        _run(_shut(), timeout=5.0)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def reopen(self) -> None:
        """Rebind the same port after :meth:`close` (a restarted peer).

        Existing client connections stay dead — they were aborted and
        their streams poisoned — so callers reconnect, exactly as they
        would to a rebooted host.
        """
        if not self._closed:
            return
        self._pool = self._make_pool()
        self._server = _run(
            asyncio.start_server(
                self._serve, host="127.0.0.1", port=self._port
            ),
            timeout=10.0,
        )
        self._closed = False


class TCPConnection:
    def __init__(self, address: str) -> None:
        if not address.startswith("tcp://"):
            raise CommError(f"not a tcp:// address: {address!r}")
        host, _, port = address[len("tcp://"):].rpartition(":")
        try:
            self._reader, self._writer = _run(
                asyncio.open_connection(host, int(port)), timeout=10.0
            )
        except (ConnectionError, OSError) as exc:
            raise CommClosedError(
                f"cannot connect to {address}: {exc}"
            ) from exc
        self._address = address
        self._lock = threading.Lock()  # one request in flight at a time
        self._closed = False

    async def _roundtrip(self, frame: bytes) -> Any:
        self._writer.write(frame)
        await self._writer.drain()
        return await _read_frame(self._reader)

    def request(self, payload: Any, timeout: float | None = None) -> Any:
        with self._lock:
            if self._closed:
                raise CommClosedError("connection is closed")
            frame = encode_frame(payload)
            inj = _faults.comm_active()
            if inj is not None:
                inj.comm("comm.send")
                frame = inj.corrupt_frame("comm.send", frame)
            try:
                status, value = _run(self._roundtrip(frame), timeout)
            except CommTimeoutError:
                # the reply may still arrive mid-frame later; this stream
                # can never be trusted again
                self.close()
                raise
            except CommError:
                # typed corrupt-reply failure (bad prefix / garbage
                # body): same poisoning rule — close, reconnecting is
                # the caller's policy
                self.close()
                raise
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                raise CommClosedError(
                    f"peer at {self._address} is gone: {exc!r}"
                ) from exc
            if inj is not None:
                inj.comm("comm.recv")
        if status == "err":
            raise value
        return value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        writer = self._writer

        async def _close() -> None:
            writer.close()

        try:
            _run(_close(), timeout=5.0)
        except Exception:  # pragma: no cover - close is best-effort
            pass


class TCPTransport:
    """Transport over localhost/remote TCP (see module docstring)."""

    def listen(self, handler: Handler, name: str = "") -> TCPListener:
        return TCPListener(handler, name)

    def connect(self, address: str) -> TCPConnection:
        return TCPConnection(address)


register_transport("tcp", TCPTransport)
