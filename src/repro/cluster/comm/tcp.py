"""TCP transport: length-prefixed pickle frames over asyncio streams.

One background event-loop thread (daemon, started lazily, shared by every
listener and connection in the process) owns all sockets.  The framing is
an 8-byte big-endian length prefix followed by a pickle body — see
:mod:`repro.cluster.comm.base` for the helpers and the size cap.

Handlers are executed on a small thread pool, *not* on the event loop: a
shard worker's ``query`` op blocks for the whole engine run, and parking
it on the loop would serialise the cluster.  Handler exceptions travel
back as ``("err", exc)`` frames and re-raise client-side, matching the
in-process transport's propagation semantics.

A request that times out poisons its connection (the reply may arrive
mid-frame later), so the connection closes itself and the caller gets
:class:`~repro.errors.CommTimeoutError`; reconnecting is the caller's
policy (the coordinator's breakers handle exactly this).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ...errors import CommClosedError, CommError, CommTimeoutError
from .base import (
    FRAME_HEADER,
    Handler,
    decode_body,
    encode_frame,
    frame_size,
    register_transport,
)

__all__ = ["TCPTransport", "TCPListener", "TCPConnection"]

#: worker threads per listener for blocking handler calls
HANDLER_THREADS = 8

_loop_lock = threading.Lock()
_loop: asyncio.AbstractEventLoop | None = None


def _get_loop() -> asyncio.AbstractEventLoop:
    """The process-wide comm event loop (started on first use)."""
    global _loop
    with _loop_lock:
        if _loop is None or _loop.is_closed():
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-comm-loop", daemon=True
            )
            thread.start()
            _loop = loop
        return _loop


def _run(coro, timeout: float | None = None):
    """Run ``coro`` on the comm loop from a synchronous caller."""
    future = asyncio.run_coroutine_threadsafe(coro, _get_loop())
    try:
        return future.result(timeout)
    except TimeoutError:
        future.cancel()
        raise CommTimeoutError(
            f"comm request did not complete within {timeout}s"
        ) from None


async def _read_frame(reader: asyncio.StreamReader) -> Any:
    header = await reader.readexactly(FRAME_HEADER.size)
    body = await reader.readexactly(frame_size(header))
    return decode_body(body)


class TCPListener:
    def __init__(self, handler: Handler, name: str = "") -> None:
        self._handler = handler
        self._pool = ThreadPoolExecutor(
            max_workers=HANDLER_THREADS,
            thread_name_prefix=f"comm-{name or 'listener'}",
        )
        self._writers: set[asyncio.StreamWriter] = set()
        self._closed = False
        self._server: asyncio.AbstractServer = _run(
            asyncio.start_server(self._serve, host="127.0.0.1", port=0)
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self._address = f"tcp://{host}:{port}"

    @property
    def address(self) -> str:
        return self._address

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        loop = asyncio.get_running_loop()
        try:
            while True:
                payload = await _read_frame(reader)
                try:
                    result = await loop.run_in_executor(
                        self._pool, self._handler, payload
                    )
                    reply = ("ok", result)
                except Exception as exc:
                    reply = ("err", exc)
                writer.write(encode_frame(reply))
                await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shut() -> None:
            self._server.close()
            # abort established connections too: a "killed" shard must
            # look dead to peers mid-conversation, not just to new dials
            for writer in list(self._writers):
                writer.close()
            await self._server.wait_closed()

        _run(_shut(), timeout=5.0)
        self._pool.shutdown(wait=False, cancel_futures=True)


class TCPConnection:
    def __init__(self, address: str) -> None:
        if not address.startswith("tcp://"):
            raise CommError(f"not a tcp:// address: {address!r}")
        host, _, port = address[len("tcp://"):].rpartition(":")
        try:
            self._reader, self._writer = _run(
                asyncio.open_connection(host, int(port)), timeout=10.0
            )
        except (ConnectionError, OSError) as exc:
            raise CommClosedError(
                f"cannot connect to {address}: {exc}"
            ) from exc
        self._address = address
        self._lock = threading.Lock()  # one request in flight at a time
        self._closed = False

    async def _roundtrip(self, payload: Any) -> Any:
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        return await _read_frame(self._reader)

    def request(self, payload: Any, timeout: float | None = None) -> Any:
        with self._lock:
            if self._closed:
                raise CommClosedError("connection is closed")
            try:
                status, value = _run(self._roundtrip(payload), timeout)
            except CommTimeoutError:
                # the reply may still arrive mid-frame later; this stream
                # can never be trusted again
                self.close()
                raise
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                raise CommClosedError(
                    f"peer at {self._address} is gone: {exc!r}"
                ) from exc
        if status == "err":
            raise value
        return value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        writer = self._writer

        async def _close() -> None:
            writer.close()

        try:
            _run(_close(), timeout=5.0)
        except Exception:  # pragma: no cover - close is best-effort
            pass


class TCPTransport:
    """Transport over localhost/remote TCP (see module docstring)."""

    def listen(self, handler: Handler, name: str = "") -> TCPListener:
        return TCPListener(handler, name)

    def connect(self, address: str) -> TCPConnection:
        return TCPConnection(address)


register_transport("tcp", TCPTransport)
