"""Replica groups, retry/hedge policies, and probe-driven membership.

The coordinator's failover layer.  Pattern-matching work over a vertex
range is stateless and re-routable — any replica holding the same
:class:`~repro.cluster.partition.ShardSpec` produces byte-identical
root-restricted counts — so a shard backed by ``cluster_replicas``
workers can lose any single member without losing *results*.  This
module holds the policy objects that decide who serves and when to give
up:

* :class:`ReplicaGroup` — per-shard membership + health ranking.  Query
  failures mark a replica SUSPECT (it sorts behind healthy siblings);
  only the prober EVICTS (removes from routing) and reintegrates.
* :class:`RetryPolicy` — how hard one scattered subquery tries: one
  pass over the candidate replicas per *round* (failover to the next
  replica is immediate), capped exponential backoff between rounds,
  everything bounded by a per-query deadline budget.
* :class:`HedgePolicy` — tail-latency insurance: when the primary's
  reply is slower than a recent-latency percentile, duplicate the
  subquery to the next-healthiest replica and take the first success.
  Both replicas own the identical root range, so the loser's reply is
  dropped (never merged twice — the exactly-once guard in
  :mod:`repro.cluster.merge` backstops this).
* :class:`HealthProber` — background membership: consecutive failed
  pings evict a replica, consecutive passes bring it back (the
  coordinator re-registers graphs on rejoin before routing resumes).
  ``step()`` runs one deterministic probe round for tests; ``start()``
  runs rounds on a thread at ``interval`` for production.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import ClusterError
from ..obs.summary import Window, percentile

__all__ = [
    "HealthProber",
    "HedgePolicy",
    "ReplicaGroup",
    "ReplicaState",
    "RetryPolicy",
]


class ReplicaState(enum.Enum):
    """Routing condition of one replica (values are gauge levels)."""

    HEALTHY = 0  #: preferred target
    SUSPECT = 1  #: recent failure; sorts behind healthy siblings
    EVICTED = 2  #: out of rotation until the prober reintegrates it


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently one scattered subquery chases an answer.

    ``rounds`` passes are made over the (ranked) candidate replicas;
    within a round, failover to the next replica is immediate — the
    backoff ``base * multiplier**(round-1)``, capped at ``cap``, applies
    *between* rounds, when every candidate has already failed once and
    hammering them again immediately would just burn the deadline.
    ``deadline`` is the per-subquery wall-clock budget; ``None`` defers
    to the coordinator's ``request_timeout``.
    """

    rounds: int = 2
    base: float = 0.05
    multiplier: float = 4.0
    cap: float = 2.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ClusterError(f"rounds must be >= 1, got {self.rounds}")
        if self.base < 0 or self.cap < 0:
            raise ClusterError("backoff base/cap must be >= 0")
        if self.multiplier < 1.0:
            raise ClusterError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ClusterError(
                f"deadline must be positive, got {self.deadline}"
            )

    def backoff(self, round_index: int) -> float:
        """Seconds to pause before retry round ``round_index`` (1-based)."""
        if round_index < 1:
            return 0.0
        return min(
            self.base * self.multiplier ** (round_index - 1), self.cap
        )


@dataclass(frozen=True)
class HedgePolicy:
    """When to duplicate a straggler subquery to a second replica.

    The hedge fires after the ``percentile``-th percentile of the
    shard's recent request latencies (clamped to
    ``[min_delay, max_delay]``) — the classic tail-at-scale recipe: the
    duplicate only spends a second replica's work on requests already
    slower than almost all recent ones.  Below ``min_samples`` observed
    latencies the estimate is noise and hedging stays off.
    """

    enabled: bool = False
    percentile: float = 99.0
    min_samples: int = 16
    min_delay: float = 0.02
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ClusterError(
                f"hedge percentile must be in (0, 100], "
                f"got {self.percentile}"
            )
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ClusterError(
                f"hedge delays must satisfy 0 <= min <= max, got "
                f"[{self.min_delay}, {self.max_delay}]"
            )
        if self.min_samples < 0:
            raise ClusterError("min_samples must be >= 0")

    def delay(self, window: "Window") -> float | None:
        """Seconds to wait before hedging, or None (don't hedge yet)."""
        if not self.enabled:
            return None
        values = window.values()
        if len(values) < self.min_samples:
            return None
        p = percentile(values, self.percentile) if values else 0.0
        return min(max(p, self.min_delay), self.max_delay)


class ReplicaGroup:
    """Membership + health ranking for one shard's replicas.

    Thread-safe: scatter threads mark successes/failures while the
    prober evicts/reintegrates.  Ranking prefers (state, fewest
    consecutive failures, configured order) — with everything healthy
    the configured primary always serves, so a single-replica group
    behaves exactly like the pre-replication coordinator.
    """

    def __init__(self, name: str, replicas: Sequence[str]) -> None:
        if not replicas:
            raise ClusterError(
                f"shard {name!r} needs at least one replica"
            )
        if len(set(replicas)) != len(replicas):
            raise ClusterError(
                f"shard {name!r} has duplicate replica names: "
                f"{list(replicas)}"
            )
        self.name = name
        self._order = tuple(replicas)
        self._states = {r: ReplicaState.HEALTHY for r in replicas}
        self._consecutive = {r: 0 for r in replicas}
        self._lock = threading.Lock()

    @property
    def replica_names(self) -> tuple[str, ...]:
        return self._order

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, replica: str) -> bool:
        return replica in self._states

    def _require(self, replica: str) -> None:
        if replica not in self._states:
            raise ClusterError(
                f"shard {self.name!r} has no replica {replica!r}"
            )

    def state(self, replica: str) -> ReplicaState:
        self._require(replica)
        with self._lock:
            return self._states[replica]

    def states(self) -> dict[str, ReplicaState]:
        with self._lock:
            return dict(self._states)

    def mark_success(self, replica: str) -> ReplicaState:
        """A request succeeded: clear suspicion (eviction stays)."""
        self._require(replica)
        with self._lock:
            self._consecutive[replica] = 0
            if self._states[replica] is ReplicaState.SUSPECT:
                self._states[replica] = ReplicaState.HEALTHY
            return self._states[replica]

    def mark_failure(self, replica: str) -> ReplicaState:
        """A request failed: healthy replicas become suspect."""
        self._require(replica)
        with self._lock:
            self._consecutive[replica] += 1
            if self._states[replica] is ReplicaState.HEALTHY:
                self._states[replica] = ReplicaState.SUSPECT
            return self._states[replica]

    def evict(self, replica: str) -> bool:
        """Remove from rotation (prober decision). True if it changed."""
        self._require(replica)
        with self._lock:
            changed = self._states[replica] is not ReplicaState.EVICTED
            self._states[replica] = ReplicaState.EVICTED
            return changed

    def reintegrate(self, replica: str) -> bool:
        """Return an evicted replica to rotation. True if it changed."""
        self._require(replica)
        with self._lock:
            changed = self._states[replica] is not ReplicaState.HEALTHY
            self._states[replica] = ReplicaState.HEALTHY
            self._consecutive[replica] = 0
            return changed

    def ranked(self) -> list[str]:
        """Candidates healthiest-first; evicted excluded.

        If *every* replica is evicted the full membership is returned
        as a last resort — an all-evicted shard should still be tried
        rather than silently dropped from the scatter.
        """
        with self._lock:
            index = {r: i for i, r in enumerate(self._order)}
            live = [
                r for r in self._order
                if self._states[r] is not ReplicaState.EVICTED
            ]
            pool = live or list(self._order)
            return sorted(
                pool,
                key=lambda r: (
                    self._states[r].value,
                    self._consecutive[r],
                    index[r],
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = {r: s.name.lower() for r, s in self.states().items()}
        return f"ReplicaGroup({self.name!r}, {states})"


class HealthProber:
    """Consecutive-ping membership: evict the flaky, rejoin the recovered.

    ``ping(replica) -> bool`` is the caller's probe (the coordinator
    pings over a dedicated connection so a slow data-plane request
    cannot fail a probe).  A replica is evicted after ``probe_failures``
    consecutive failed pings and offered back after
    ``probe_recoveries`` consecutive passes; ``on_evict`` /
    ``on_rejoin`` make the membership change real (the rejoin callback
    may veto by returning False — e.g. graph re-registration failed —
    keeping the replica evicted until a later round).

    ``step()`` runs exactly one probe round synchronously — the
    deterministic test surface.  ``start()`` runs rounds every
    ``interval`` seconds on a daemon thread until ``stop()``.
    """

    def __init__(
        self,
        ping: Callable[[str], bool],
        replicas: Iterable[str],
        *,
        probe_failures: int = 3,
        probe_recoveries: int = 2,
        interval: float = 1.0,
        on_evict: "Callable[[str], None] | None" = None,
        on_rejoin: "Callable[[str], bool] | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if probe_failures < 1 or probe_recoveries < 1:
            raise ClusterError(
                "probe_failures and probe_recoveries must be >= 1"
            )
        self._ping = ping
        self._names = tuple(replicas)
        self.probe_failures = probe_failures
        self.probe_recoveries = probe_recoveries
        self.interval = interval
        self._on_evict = on_evict
        self._on_rejoin = on_rejoin
        self._sleep = sleep
        self._fails = {r: 0 for r in self._names}
        self._passes = {r: 0 for r in self._names}
        self._evicted: set[str] = set()
        self._rounds = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def evicted(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._evicted))

    @property
    def rounds(self) -> int:
        with self._lock:
            return self._rounds

    def step(self) -> dict[str, bool]:
        """One probe round; returns ``{replica: ping passed}``."""
        results: dict[str, bool] = {}
        for name in self._names:
            try:
                alive = bool(self._ping(name))
            except Exception:
                alive = False
            results[name] = alive
            if alive:
                self._on_pass(name)
            else:
                self._on_fail(name)
        with self._lock:
            self._rounds += 1
        return results

    def _on_pass(self, name: str) -> None:
        with self._lock:
            self._fails[name] = 0
            if name not in self._evicted:
                return
            self._passes[name] += 1
            if self._passes[name] < self.probe_recoveries:
                return
            self._passes[name] = 0
        # rejoin outside the lock: the callback re-registers graphs
        accepted = (
            self._on_rejoin(name) if self._on_rejoin is not None else True
        )
        if accepted:
            with self._lock:
                self._evicted.discard(name)

    def _on_fail(self, name: str) -> None:
        with self._lock:
            self._passes[name] = 0
            if name in self._evicted:
                return
            self._fails[name] += 1
            if self._fails[name] < self.probe_failures:
                return
            self._fails[name] = 0
            self._evicted.add(name)
        if self._on_evict is not None:
            self._on_evict(name)

    # -- background loop ---------------------------------------------------

    def start(self) -> None:
        """Probe every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cluster-prober", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.step()
            self._sleep(self.interval)

    def stop(self, join_timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=join_timeout)
            self._thread = None


def states_to_gauges(
    states: Mapping[str, ReplicaState],
) -> dict[str, int]:
    """``{replica: gauge level}`` view of a group's states."""
    return {name: state.value for name, state in states.items()}
