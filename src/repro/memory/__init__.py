"""Memory subsystem: caches, DRAM timing, CACTI-lite, and the hierarchy."""

from .cache import LINE_BYTES, WORDS_PER_LINE, CacheConfig, CacheModel, CacheStats
from .cacti import SRAMEstimate, estimate_sram
from .dram import DRAMConfig, DRAMModel, DRAMStats
from .hierarchy import MemoryConfig, MemoryHierarchy, StreamResult

__all__ = [
    "LINE_BYTES",
    "WORDS_PER_LINE",
    "CacheConfig",
    "CacheModel",
    "CacheStats",
    "DRAMConfig",
    "DRAMModel",
    "DRAMStats",
    "MemoryConfig",
    "MemoryHierarchy",
    "SRAMEstimate",
    "StreamResult",
    "estimate_sram",
]
