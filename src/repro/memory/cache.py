"""Set-associative LRU cache model with banking.

Functional hit/miss state is tracked per cache line (64 B default, 16
32-bit words) with true LRU replacement inside each set, matching the
paper's configuration (Table 2: 32 KB / 4-way / 4-bank private caches and a
4 MB / 8-way / 8-bank shared cache, both LRU).  Banking is modelled as a
throughput constraint — each bank services one line access per cycle — which
the hierarchy turns into stream-latency terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["CacheConfig", "CacheModel", "CacheStats"]

LINE_BYTES = 64
WORD_BYTES = 4
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    banks: int
    hit_latency: int
    name: str = "cache"
    line_bytes: int = LINE_BYTES

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.banks <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.num_lines % self.ways:
            raise ConfigError(f"{self.name}: lines not divisible by ways")
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{self.name}: set count must be a power of 2")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheModel:
    """One level of set-associative LRU cache.

    LRU state per set is an insertion-ordered dict (most recently used last);
    Python dicts preserve order, so ``pop`` + re-insert implements the policy
    with O(1) amortised cost per access.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self.stats = CacheStats()
        self._sets: list[dict[int, None]] = [
            {} for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1

    def access_line(self, line_addr: int, allocate: bool = True) -> bool:
        """Touch one line; returns True on hit.  Misses allocate by default."""
        idx = line_addr & self._set_mask
        way_set = self._sets[idx]
        if line_addr in way_set:
            way_set.pop(line_addr)
            way_set[line_addr] = None  # move to MRU position
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if allocate:
            if len(way_set) >= self.config.ways:
                # evict LRU (first key in insertion order)
                way_set.pop(next(iter(way_set)))
            way_set[line_addr] = None
        return False

    def contains(self, line_addr: int) -> bool:
        """Non-mutating presence probe (used by tests/invariants)."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def bank_of(self, line_addr: int) -> int:
        return line_addr % self.config.banks

    def stream_bank_cycles(self, num_lines: int) -> int:
        """Cycles the banked array needs to serve ``num_lines`` accesses."""
        banks = self.config.banks
        return (num_lines + banks - 1) // banks

    def reset(self) -> None:
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
