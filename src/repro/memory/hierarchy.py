"""Private-cache / shared-cache / DRAM hierarchy used by the simulator.

Per Figure 5: every PE owns a private cache holding graph data and
intermediate candidate sets; all PEs share one banked cache in front of
DRAM.  The hierarchy exposes *stream* operations because the SIUs consume
and produce whole neighbour sets: a stream touches a line range, probes each
level functionally (real LRU state), and reports two quantities the SIU cost
model combines —

``first_latency``
    cycles until the first words arrive (fills the pipeline), and
``stream_cycles``
    occupancy cycles for the remainder, i.e. the bandwidth-limited service
    time of bank conflicts, shared-cache refills and DRAM transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryModelError
from ..resilience import faults as _faults
from .cache import WORDS_PER_LINE, CacheConfig, CacheModel
from .cacti import estimate_sram
from .dram import DRAMConfig, DRAMModel

__all__ = ["MemoryConfig", "StreamResult", "MemoryHierarchy"]


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry of the full memory subsystem (paper Table 2 defaults)."""

    num_pes: int = 16
    private_kb: int = 32
    private_ways: int = 4
    private_banks: int = 4
    shared_mb: float = 4.0
    shared_ways: int = 8
    shared_banks: int = 8
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def private_config(self, pe: int) -> CacheConfig:
        lat = estimate_sram(
            self.private_kb * 1024, self.private_ways, self.private_banks
        ).access_latency_cycles
        return CacheConfig(
            size_bytes=self.private_kb * 1024,
            ways=self.private_ways,
            banks=self.private_banks,
            hit_latency=lat,
            name=f"private{pe}",
        )

    def shared_config(self) -> CacheConfig:
        lat = estimate_sram(
            int(self.shared_mb * 1024 * 1024),
            self.shared_ways,
            self.shared_banks,
        ).access_latency_cycles
        return CacheConfig(
            size_bytes=int(self.shared_mb * 1024 * 1024),
            ways=self.shared_ways,
            banks=self.shared_banks,
            hit_latency=lat,
            name="shared",
        )


@dataclass
class StreamResult:
    """Timing/traffic outcome of one stream access."""

    first_latency: float
    stream_cycles: float
    lines: int
    private_misses: int
    shared_misses: int

    @property
    def total_cycles(self) -> float:
        return self.first_latency + self.stream_cycles


class MemoryHierarchy:
    """Functional-state memory hierarchy shared by all PEs."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        self.private = [
            CacheModel(self.config.private_config(pe))
            for pe in range(self.config.num_pes)
        ]
        self.shared = CacheModel(self.config.shared_config())
        self.dram = DRAMModel(self.config.dram)
        # bump allocator for intermediate-set buffers (word addresses),
        # placed far above the graph region
        self._scratch_next = [
            0x8000_0000 + pe * 0x0400_0000 for pe in range(self.config.num_pes)
        ]
        # per-bank port availability of the shared cache (PE contention)
        self._shared_bank_busy = [0.0] * self.shared.config.banks

    # -- scratch allocation -------------------------------------------------

    def allocate_scratch(self, pe: int, n_words: int) -> int:
        """Reserve a private buffer for an intermediate candidate set."""
        if not 0 <= pe < self.config.num_pes:
            raise MemoryModelError(f"PE {pe} out of range")
        addr = self._scratch_next[pe]
        self._scratch_next[pe] += max(n_words, 1)
        return addr

    # -- streams --------------------------------------------------------------

    def _line_range(self, addr_words: int, n_words: int) -> range:
        if n_words <= 0:
            return range(0)
        first = addr_words // WORDS_PER_LINE
        last = (addr_words + n_words - 1) // WORDS_PER_LINE
        return range(first, last + 1)

    def stream_read(
        self, now: float, pe: int, addr_words: int, n_words: int
    ) -> StreamResult:
        """Read ``n_words`` starting at ``addr_words`` through PE ``pe``."""
        priv = self.private[pe]
        lines = self._line_range(addr_words, n_words)
        n_lines = len(lines)
        if n_lines == 0:
            return StreamResult(0.0, 0.0, 0, 0, 0)
        private_misses = 0
        shared_misses = 0
        first_latency = float(priv.config.hit_latency)
        dram_finish = now
        shared_queue = 0.0
        for i, line in enumerate(lines):
            if priv.access_line(line):
                continue
            private_misses += 1
            # shared-cache bank port contention between PEs: each refill
            # occupies its bank for one cycle
            bank = line % self.shared.config.banks
            wait = max(self._shared_bank_busy[bank] - now, 0.0)
            self._shared_bank_busy[bank] = now + wait + 1.0
            shared_queue = max(shared_queue, wait)
            if self.shared.access_line(line):
                if i == 0:
                    first_latency += self.shared.config.hit_latency + wait
                continue
            shared_misses += 1
            finish = self.dram.request_line(now, line)
            dram_finish = max(dram_finish, finish)
            if i == 0:
                first_latency += self.shared.config.hit_latency + wait + (
                    finish - now
                )
        # Bandwidth-limited occupancy: bank throughput at each level plus
        # DRAM bus time already folded into dram_finish.
        bank_cycles = priv.stream_bank_cycles(n_lines)
        shared_cycles = (
            self.shared.stream_bank_cycles(private_misses)
            if private_misses
            else 0
        )
        dram_cycles = max(dram_finish - now - first_latency, 0.0)
        stream_cycles = float(
            max(bank_cycles, shared_cycles, dram_cycles, shared_queue)
        )
        # fault-injection site "memory.stream": with no injector armed this
        # is a single contextvar load (same contract as the obs hooks)
        inj = _faults.active()
        if inj is not None:
            first_latency, stream_cycles = inj.stall(
                "memory.stream", first_latency, stream_cycles
            )
        return StreamResult(
            first_latency=first_latency,
            stream_cycles=stream_cycles,
            lines=n_lines,
            private_misses=private_misses,
            shared_misses=shared_misses,
        )

    def stream_write(
        self, now: float, pe: int, addr_words: int, n_words: int
    ) -> StreamResult:
        """Write an intermediate set; allocates into the private cache."""
        priv = self.private[pe]
        lines = self._line_range(addr_words, n_words)
        for line in lines:
            priv.access_line(line)  # write-allocate
        n_lines = len(lines)
        return StreamResult(
            first_latency=0.0,
            stream_cycles=float(priv.stream_bank_cycles(n_lines)),
            lines=n_lines,
            private_misses=0,
            shared_misses=0,
        )

    def reset(self) -> None:
        for c in self.private:
            c.reset()
        self.shared.reset()
        self.dram.reset()
        self._shared_bank_busy = [0.0] * self.shared.config.banks
