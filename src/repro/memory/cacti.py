"""CACTI-lite: analytical SRAM area / power / latency model.

Plays the role CACTI 7 plays in the paper's methodology — turning cache
geometry into area, access energy and latency.  The model uses standard
scaling exponents (area slightly super-linear in capacity due to peripheral
overhead amortisation, latency ~ sqrt of capacity) and is *calibrated* so
the paper's two anchor points hold at 28 nm: a 32 KB 4-way private cache at
≈0.174 mm² per PE (Table 4) and shared-cache latencies in the tens of
cycles.  Trends across the Figure 18 sweeps come from the exponents, not
the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["SRAMEstimate", "estimate_sram"]

# Calibration anchors (28 nm):
_AREA_ANCHOR_BYTES = 32 * 1024
_AREA_ANCHOR_MM2 = 0.174     # Table 4 "Cache" column for our PE
_AREA_EXPONENT = 0.92        # capacity scaling of SRAM macro area
_LEAKAGE_MW_PER_MM2 = 12.0   # static power density
_DYN_PJ_ANCHOR = 18.0        # energy per 64B access at the anchor size
_DYN_EXPONENT = 0.55


@dataclass(frozen=True)
class SRAMEstimate:
    """Area/power/latency estimate for one SRAM array."""

    size_bytes: int
    area_mm2: float
    access_latency_cycles: int
    dynamic_pj_per_access: float
    leakage_mw: float


def estimate_sram(
    size_bytes: int, ways: int = 4, banks: int = 4
) -> SRAMEstimate:
    """Estimate a banked set-associative SRAM at 28 nm / 1 GHz.

    ``ways`` adds tag/peripheral overhead; ``banks`` shortens wordlines
    (slightly faster) at a small area premium.
    """
    if size_bytes <= 0:
        raise ConfigError("size_bytes must be positive")
    rel = size_bytes / _AREA_ANCHOR_BYTES
    way_overhead = 1.0 + 0.015 * max(ways - 4, 0)
    bank_overhead = 1.0 + 0.02 * max(banks - 4, 0)
    area = _AREA_ANCHOR_MM2 * rel**_AREA_EXPONENT * way_overhead * bank_overhead
    # latency ~ wire delay across one bank; pipelined arrays flatten the
    # growth to ~capacity^0.25 (large caches add pipeline stages, not
    # proportional wire delay)
    bank_bytes = size_bytes / banks
    latency = max(2, int(round(2.2 * (bank_bytes / 1024) ** 0.25)))
    dyn = _DYN_PJ_ANCHOR * rel**_DYN_EXPONENT
    return SRAMEstimate(
        size_bytes=size_bytes,
        area_mm2=area,
        access_latency_cycles=latency,
        dynamic_pj_per_access=dyn,
        leakage_mw=_LEAKAGE_MW_PER_MM2 * area,
    )
