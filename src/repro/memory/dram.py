"""Simplified DDR4 main-memory timing model.

Stands in for DRAMSys 5.0 in the paper's stack.  Captures the first-order
behaviour GPM cares about: access latency (CL/tRCD/tRP, row-hit vs row-miss),
per-channel bandwidth ceilings with queueing, and address interleaving across
channels.  Timing defaults follow Table 2: 4-channel DDR4-2400, 16-16-16,
76.84 GB/s aggregate peak, with the accelerator clocked at 1 GHz (so one
core cycle = 1 ns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .cache import LINE_BYTES

__all__ = ["DRAMConfig", "DRAMModel", "DRAMStats"]


@dataclass(frozen=True)
class DRAMConfig:
    """DDR timing/geometry expressed in 1 GHz core cycles (= ns)."""

    channels: int = 4
    #: data rate per channel in bytes per core cycle (DDR4-2400 x64 ≈ 19.2)
    bytes_per_cycle_per_channel: float = 19.2
    cl: int = 16            # CAS latency (cycles at 1 GHz ≈ ns)
    trcd: int = 16          # RAS-to-CAS delay
    trp: int = 16           # row precharge
    row_bytes: int = 8192   # row-buffer span per channel
    static_latency: int = 30  # controller + on-chip network overhead

    def validate(self) -> None:
        if self.channels <= 0 or self.bytes_per_cycle_per_channel <= 0:
            raise ConfigError("DRAM config must be positive")

    @property
    def row_hit_latency(self) -> int:
        return self.static_latency + self.cl

    @property
    def row_miss_latency(self) -> int:
        return self.static_latency + self.trp + self.trcd + self.cl

    @property
    def line_transfer_cycles(self) -> float:
        return LINE_BYTES / self.bytes_per_cycle_per_channel

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s (cycles are 1 ns at 1 GHz)."""
        return self.channels * self.bytes_per_cycle_per_channel


@dataclass
class DRAMStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_transferred: int = 0
    queue_cycles: float = 0.0


class DRAMModel:
    """Channel-interleaved DRAM with row-buffer locality and queueing.

    Each channel tracks when its data bus frees up (``busy_until``) and the
    currently open row; a request pays queueing delay, a row-hit or row-miss
    access latency, and occupies the bus for the line transfer.
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self.config.validate()
        self.stats = DRAMStats()
        self._busy_until = [0.0] * self.config.channels
        self._open_row = [-1] * self.config.channels

    def channel_of(self, line_addr: int) -> int:
        return line_addr % self.config.channels

    def request_line(self, now: float, line_addr: int) -> float:
        """Issue a line fill at time ``now``; returns completion time."""
        cfg = self.config
        ch = self.channel_of(line_addr)
        row = (line_addr * LINE_BYTES) // cfg.row_bytes
        queue = max(self._busy_until[ch] - now, 0.0)
        if self._open_row[ch] == row:
            access = cfg.row_hit_latency
            self.stats.row_hits += 1
        else:
            access = cfg.row_miss_latency
            self.stats.row_misses += 1
            self._open_row[ch] = row
        start = now + queue
        finish = start + access + cfg.line_transfer_cycles
        self._busy_until[ch] = start + cfg.line_transfer_cycles
        self.stats.requests += 1
        self.stats.bytes_transferred += LINE_BYTES
        self.stats.queue_cycles += queue
        return finish

    def reset(self) -> None:
        self.stats = DRAMStats()
        self._busy_until = [0.0] * self.config.channels
        self._open_row = [-1] * self.config.channels

    def achieved_bandwidth_gbps(self, elapsed_cycles: float) -> float:
        """Average consumed bandwidth over ``elapsed_cycles`` (GB/s @1 GHz)."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.stats.bytes_transferred / elapsed_cycles
