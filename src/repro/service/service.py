"""The :class:`QueryService`: async GPM queries over a worker pool.

This is the process-level analogue of the X-SET scheduler: independent
jobs (``graph_id × pattern × config``) flow through a bounded priority
queue into a pool of workers, with no barrier between jobs — exactly the
barrier-free philosophy of the hardware, lifted to Python processes.

Execution modes
---------------
``process``
    ``ProcessPoolExecutor`` — true parallelism for CPU-bound engine runs.
    Graphs ship to workers as the registry's pre-pickled payload and are
    deserialised once per worker process (see :mod:`repro.service.worker`).
``thread``
    ``ThreadPoolExecutor`` — shares graphs by reference.  NumPy kernels
    release the GIL only partially, so this mostly provides overlap, not
    speedup; it is the fallback where fork/spawn is unavailable.
``inline``
    Synchronous execution inside ``submit`` — deterministic, used by tests
    and as the zero-overhead mode for single queries.

Semantics
---------
* **Backpressure**: a full queue raises ``QueueFullError`` — submits never
  block.
* **Deadlines**: ``timeout=`` sets a deadline on the service clock; it is
  enforced while the job is *queued* (expired jobs never dispatch).  A job
  already on a worker runs to completion — results arriving after the
  deadline are still delivered.
* **Retries**: crash-shaped failures (a dying worker / broken pool) are
  retried with exponential backoff up to ``RetryPolicy.max_retries``;
  deterministic engine exceptions propagate immediately.
* **Caching**: results are cached by ``(graph fingerprint, canonical
  pattern, config)`` with LRU eviction; graph updates invalidate — or,
  through :meth:`QueryService.dynamic_session`, delta-patch — entries.

The clock and sleep functions are injectable so every timing-dependent
code path is testable without real sleeps.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import random
import threading
import time
from collections import deque
from pathlib import Path
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.config import SystemConfig, xset_default
from ..core.incremental import IncrementalGPM
from ..errors import (
    AdmissionError,
    CircuitOpenError,
    InjectedCrashError,
    LoadShedError,
    QueueFullError,
    ServiceError,
    WorkerCrashError,
)
from ..obs import MetricsRegistry, Observation, Tracer
from ..obs.export import chrome_trace_events
from ..obs.flight import FlightRecorder
from ..patterns.plan import build_plan
from ..sched.adaptive import (
    CostPredictor,
    SchedulingConfig,
    query_features,
    select_engine,
)
from ..resilience import (
    BreakerBoard,
    BreakerState,
    HealthReport,
    HealthState,
    ResilienceConfig,
    Watchdog,
    assess,
)
from .cache import CacheKey, ResultCache, pattern_cache_key
from .job import Job, JobHandle, JobStatus
from .registry import GraphRegistry
from .scheduler import JobQueue, RetryPolicy
from .stats import LatencyRecorder, ServiceStats
from .worker import run_job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph
    from ..obs import ExecutionProfile
    from ..patterns.pattern import Pattern
    from ..resilience import FaultPlan
    from ..sim.report import SimReport

__all__ = ["QueryService", "InlineExecutor", "MODES"]

logger = logging.getLogger(__name__)

#: accepted values for ``QueryService(mode=...)``
MODES = ("process", "thread", "inline")

#: exception types treated as "the worker died" → retried with backoff
_CRASH_TYPES = (BrokenExecutor, WorkerCrashError)

#: finished spans retained by a traced service (most recent history)
TRACE_SPAN_LIMIT = 20_000

#: execution profiles retained by a traced service
PROFILE_LIMIT = 256


class InlineExecutor:
    """Executor running submissions synchronously (tests, single queries)."""

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirrored to the future
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        pass


class QueryService:
    """Async GPM query service: registry + scheduler + pool + cache."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        mode: str = "process",
        max_workers: int | None = None,
        queue_limit: int = 256,
        cache_capacity: int = 512,
        retry: RetryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        executor=None,
        start_paused: bool = False,
        observability: bool = False,
        resilience: ResilienceConfig | None = None,
        scheduling: SchedulingConfig | None = None,
    ) -> None:
        if mode not in MODES:
            raise ServiceError(
                f"unknown service mode {mode!r}; available: "
                f"{', '.join(MODES)}"
            )
        self.mode = mode
        self.config = config or xset_default()
        if max_workers is None:
            max_workers = 1 if mode == "inline" else (os.cpu_count() or 1)
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.retry = retry or RetryPolicy()
        self._clock = clock
        self._sleep = sleep
        self._executor = executor
        self._owns_executor = executor is None
        self._registry = GraphRegistry()
        self._cache = ResultCache(cache_capacity)
        # -- adaptive scheduling (cost model, dispatch policy, admission) --
        self.scheduling = scheduling or SchedulingConfig()
        self._queue = JobQueue(
            queue_limit,
            on_timeout=self._note_timeout,
            policy=self.scheduling.policy,
            age_limit=self.scheduling.age_limit_seconds,
        )
        # metrics always exist (they are cheap, per-job bookkeeping);
        # span tracing + per-query profiling is opt-in via observability=
        self.metrics = MetricsRegistry()
        self._latency = LatencyRecorder(registry=self.metrics)
        #: online cost model trained from every completed job; drives
        #: engine auto-selection, cost-ranked dispatch and admission
        self.predictor = CostPredictor(registry=self.metrics)
        self._observation: Observation | None = (
            Observation(
                registry=self.metrics,
                tracer=Tracer(max_spans=TRACE_SPAN_LIMIT),
            )
            if observability
            else None
        )
        self._profiles: deque["ExecutionProfile"] = deque(
            maxlen=PROFILE_LIMIT
        )
        # the flight recorder is always on, like the metrics: one bounded
        # deque append per lifecycle event, dumped on demand or when the
        # cluster layer sees this service degrade
        self.flight = FlightRecorder(name=f"service-{mode}")
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        self._cond = threading.Condition()
        self._dispatcher: threading.Thread | None = None
        self._paused = start_paused
        self._shutdown = False
        self._in_flight = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._timed_out = 0
        self._retries = 0
        # -- resilience layer (breakers, watchdog, shedding, fault plan) --
        self.resilience = resilience or ResilienceConfig()
        self._fault_plan: "FaultPlan | None" = None
        self._breakers: BreakerBoard | None = (
            BreakerBoard(
                failure_threshold=self.resilience.failure_threshold,
                recovery_seconds=self.resilience.recovery_seconds,
                half_open_probes=self.resilience.half_open_probes,
                clock=clock,
                on_transition=self._on_breaker_transition,
            )
            if self.resilience.enabled
            else None
        )
        self._watchdog = Watchdog(
            clock,
            interval=self.resilience.watchdog_interval,
            enforce_deadlines=(
                self.resilience.enabled
                and self.resilience.enforce_running_deadlines
            ),
        )
        self._shed = 0
        self._abandoned = 0
        self._rerouted = 0
        self._crosscheck_mismatches = 0
        self._faults_injected = 0
        self._dispatcher_stuck = False
        self._rejected = 0
        self._auto_selected: dict[str, int] = {}

    def _on_breaker_transition(self, engine, old, new) -> None:
        """Breaker state changes land in the flight recorder (one append;
        called with the breaker lock held, so nothing heavier belongs
        here)."""
        self.flight.record(
            "breaker_trip" if new is BreakerState.OPEN
            else "breaker_transition",
            engine=engine,
            from_state=old.name.lower(),
            to_state=new.name.lower(),
        )

    # -- graph registry ----------------------------------------------------

    def register_graph(
        self, graph: "CSRGraph", graph_id: str | None = None
    ) -> str:
        """Register ``graph`` once; jobs then reference it by the id."""
        return self._registry.register(graph, graph_id)

    def update_graph(self, graph_id: str, graph: "CSRGraph") -> int:
        """Swap in a new snapshot for ``graph_id``.

        Cached results of the previous snapshot are invalidated; returns
        how many entries were dropped.  Jobs already queued keep running
        against the snapshot captured at submit time.
        """
        old_fp, _ = self._registry.update(graph_id, graph)
        return len(self._cache.invalidate_fingerprint(old_fp))

    def unregister_graph(self, graph_id: str) -> int:
        """Drop ``graph_id``: unlink its shared segment, evict its cache.

        Jobs already queued against the graph keep the record pinned and
        may still fail with a not-found attach — unregister is a statement
        that the graph is gone, not a graceful drain.  Returns the number
        of cache entries dropped.
        """
        record = self._registry.get(graph_id)
        dropped = len(self._cache.invalidate_fingerprint(record.fingerprint))
        self._registry.unregister(graph_id)
        return dropped

    def invalidate_graph(self, graph_id: str) -> int:
        """Explicitly drop cached results for ``graph_id``'s snapshot."""
        record = self._registry.get(graph_id)
        return len(self._cache.invalidate_fingerprint(record.fingerprint))

    def graphs(self) -> tuple[str, ...]:
        return self._registry.ids()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        graph_id: str,
        pattern: "Pattern",
        *,
        induced: bool | None = None,
        priority: int = 0,
        timeout: float | None = None,
        engine: str | None = None,
        config: SystemConfig | None = None,
        use_cache: bool = True,
        root_range: tuple[int, int] | None = None,
    ) -> JobHandle:
        """Enqueue one query; returns immediately with a :class:`JobHandle`.

        ``priority``: lower runs first (FIFO within a class).  ``timeout``
        is a queue deadline in seconds on the service clock.  ``engine`` /
        ``config`` override the service defaults for this job only.
        ``root_range`` restricts matching to search trees rooted in the
        half-open vertex range ``[lo, hi)`` — the cluster layer's shard
        workers submit exactly such root-partitioned subqueries.
        Raises :class:`~repro.errors.QueueFullError` under backpressure.
        """
        if self._shutdown:
            raise ServiceError("service has been shut down")
        res = self.resilience
        if (
            res.enabled
            and priority >= res.degradation.shed_min_priority
            and self._health_state() is HealthState.OVERLOADED
        ):
            self.metrics.counter(
                "repro_jobs_shed_total",
                "low-priority submissions shed while overloaded",
            ).inc()
            with self._cond:
                self._shed += 1
            self.flight.record(
                "shed",
                graph_id=graph_id,
                pattern=pattern.name,
                priority=priority,
                queue_depth=self._queue.depth(),
            )
            raise LoadShedError(
                f"service overloaded (queue {self._queue.depth()}/"
                f"{self._queue.limit}); shed priority-{priority} "
                f"submission of {pattern.name!r} on {graph_id!r}"
            )
        record = self._registry.get(graph_id)
        cfg = config or self.config
        if engine is not None and engine != cfg.engine:
            cfg = cfg.with_overrides(engine=engine)
        if root_range is not None:
            lo, hi = int(root_range[0]), int(root_range[1])
            if lo < 0 or hi < lo:
                raise ServiceError(
                    f"root_range must be a half-open [lo, hi) with "
                    f"0 <= lo <= hi, got {root_range!r}"
                )
            root_range = (lo, hi)
        plan = build_plan(pattern, induced=induced)
        pkey = pattern_cache_key(pattern, induced)
        features = query_features(record.graph, record.fingerprint, pkey)
        board = self._breakers
        if cfg.engine == "auto":
            # pick the cheapest predicted backend whose breaker allows it;
            # the concrete choice lands in cfg (and the cache key) so
            # everything downstream sees a real engine, never the sentinel
            estimate = select_engine(
                self.predictor,
                features,
                allow=(
                    None if board is None
                    else lambda e: board.for_engine(e).allow()
                ),
            )
            cfg = cfg.with_overrides(engine=estimate.engine)
            self.metrics.counter(
                "repro_auto_engine_total",
                'engine="auto" resolutions per chosen backend',
                engine=estimate.engine,
                source=estimate.source,
            ).inc()
            with self._cond:
                self._auto_selected[estimate.engine] = (
                    self._auto_selected.get(estimate.engine, 0) + 1
                )
        else:
            estimate = self.predictor.predict(features, cfg.engine)
        predicted = estimate.seconds
        key = CacheKey(
            fingerprint=record.fingerprint,
            pattern_key=pkey,
            config_key=cfg.cache_key(),
            root_key=root_range,
        )
        handle = JobHandle(
            job_id=next(self._job_ids),
            graph_id=graph_id,
            pattern_name=pattern.name,
            engine=cfg.engine,
            cancel_cb=self._cancel,
        )
        self.metrics.counter(
            "repro_jobs_submitted_total", "jobs accepted by submit()"
        ).inc()
        self.flight.record(
            "submit",
            job_id=handle.job_id,
            graph_id=graph_id,
            pattern=pattern.name,
            engine=cfg.engine,
            priority=priority,
        )
        ob = self._observation
        job_span = (
            ob.tracer.start_span(
                "service.job",
                graph_id=graph_id,
                pattern=pattern.name,
                engine=cfg.engine,
                job_id=handle.job_id,
            )
            if ob is not None
            else None
        )
        if timeout is not None and timeout <= 0:
            # a non-positive deadline can never be met: finish the job as
            # TIMEOUT here instead of enqueueing work that is already dead
            self.metrics.counter(
                "repro_jobs_timed_out_total",
                "jobs whose deadline expired",
            ).inc()
            if ob is not None and job_span is not None:
                job_span.set_attr("outcome", "timeout")
                ob.tracer.end_span(job_span)
            handle._finish(JobStatus.TIMEOUT)
            with self._cond:
                self._submitted += 1
                self._timed_out += 1
            return handle
        if use_cache:
            cached = self._cache.get(key)
            self.metrics.counter(
                "repro_cache_hits_total" if cached is not None
                else "repro_cache_misses_total",
                "result-cache outcome of cached submits",
            ).inc()
            if cached is not None:
                handle.from_cache = True
                handle._finish(JobStatus.DONE, report=cached)
                if ob is not None and job_span is not None:
                    job_span.set_attr("cache_hit", True)
                    job_span.set_attr("outcome", "done")
                    ob.tracer.end_span(job_span)
                with self._cond:
                    self._submitted += 1
                    self._completed += 1
                return handle
        admission = self.scheduling.admission
        if admission.enabled and timeout is not None:
            # reject-at-submit: a deadline the predicted completion time
            # cannot meet (given the work already queued) fails NOW with a
            # typed error instead of timing out after consuming resources
            try:
                admission.check(
                    timeout=timeout,
                    predicted_seconds=predicted,
                    backlog_seconds=self._queue.predicted_backlog(),
                    workers=self.max_workers,
                    describe=f"{pattern.name!r} on {graph_id!r}",
                )
            except AdmissionError:
                self.metrics.counter(
                    "repro_jobs_rejected_total",
                    "submissions rejected by admission control",
                ).inc()
                self.flight.record(
                    "admission_reject",
                    job_id=handle.job_id,
                    graph_id=graph_id,
                    pattern=pattern.name,
                    timeout=timeout,
                    predicted_seconds=predicted,
                )
                if ob is not None and job_span is not None:
                    job_span.set_attr("outcome", "rejected")
                    ob.tracer.end_span(job_span)
                with self._cond:
                    self._rejected += 1
                raise
        job = Job(
            handle=handle,
            graph_id=graph_id,
            fingerprint=record.fingerprint,
            plan=plan,
            config=cfg,
            cache_key=key,
            priority=priority,
            root_range=root_range,
            seq=next(self._seq),
            deadline=(
                None if timeout is None else self._clock() + timeout
            ),
            record=record,  # snapshot pinned at submit time
            predicted_seconds=predicted,
            features=features,
            enqueued_at=self._clock(),
            span=job_span,
            queued_span=(
                ob.tracer.start_span("service.queued", parent=job_span)
                if ob is not None
                else None
            ),
        )
        self._queue.push(job)  # raises QueueFullError under backpressure
        with self._cond:
            self._submitted += 1
            self._cond.notify_all()
        if self.mode == "inline":
            self._drain_inline()
        else:
            self._ensure_dispatcher()
        return handle

    def count(
        self, graph_id: str, pattern: "Pattern", **submit_kwargs
    ) -> "SimReport":
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(graph_id, pattern, **submit_kwargs).result()

    def count_many(
        self,
        graph_id: str,
        patterns: Sequence["Pattern"],
        **submit_kwargs,
    ) -> dict[str, "SimReport"]:
        """Batch entry point: submit every pattern, gather all reports."""
        handles = [
            self.submit(graph_id, p, **submit_kwargs) for p in patterns
        ]
        return {
            p.name: h.result() for p, h in zip(patterns, handles)
        }

    # -- dynamic graphs ----------------------------------------------------

    def dynamic_session(
        self,
        graph_id: str,
        pattern: "Pattern",
        induced: bool | None = None,
        delta_patch: bool = True,
    ) -> IncrementalGPM:
        """An :class:`IncrementalGPM` wired to this service's cache.

        Every ``insert_edge``/``remove_edge`` re-registers the updated
        snapshot under ``graph_id`` and invalidates cached results of the
        old snapshot.  With ``delta_patch=True``, entries for *this*
        pattern are immediately re-cached for the new fingerprint with the
        incrementally maintained exact count (their timing fields are
        carried over from the stale run and should be treated as
        approximate).
        """
        record = self._registry.get(graph_id)
        pkey = pattern_cache_key(pattern, induced)

        def on_update(gpm: IncrementalGPM, u, v, inserted, delta) -> None:
            old_fp, new_fp = self._registry.update(graph_id, gpm.snapshot())
            dropped = self._cache.invalidate_fingerprint(old_fp)
            if not delta_patch:
                return
            for key, report in dropped:
                # root-restricted (cluster shard) entries hold partial
                # counts; the maintained total must not overwrite them
                if key.pattern_key == pkey and key.root_key is None:
                    patched = replace(report, embeddings=gpm.count)
                    self._cache.put(key.with_fingerprint(new_fp), patched)

        return IncrementalGPM(
            record.graph, pattern, induced=induced, on_update=on_update
        )

    # -- scheduling internals ----------------------------------------------

    def _end_job_span(self, job: Job, outcome: str) -> None:
        """Close the job's open spans (queued child first), if traced."""
        ob = self._observation
        if ob is None or job.span is None:
            return
        if job.queued_span is not None:
            ob.tracer.end_span(job.queued_span)
            job.queued_span = None
        job.span.set_attr("outcome", outcome)
        job.span.set_attr("attempts", job.attempts)
        ob.tracer.end_span(job.span)
        job.span = None

    def _note_timeout(self, job: Job) -> None:
        logger.info(
            "job %d (%s on %s) deadline expired while queued",
            job.handle.job_id, job.handle.pattern_name, job.graph_id,
        )
        self.metrics.counter(
            "repro_jobs_timed_out_total", "jobs whose deadline expired"
        ).inc()
        self._end_job_span(job, "timeout")
        self.flight.record(
            "timeout", job_id=job.handle.job_id, where="queued"
        )
        with self._cond:
            self._timed_out += 1

    def _cancel(self, handle: JobHandle) -> bool:
        # compare-and-set: a job racing from PENDING to RUNNING between a
        # status check and the transition must NOT be marked cancelled
        # while its worker keeps executing
        if handle._finish_if(JobStatus.PENDING, JobStatus.CANCELLED):
            with self._cond:
                self._cancelled += 1
            return True
        return False

    def pause(self) -> None:
        """Stop dispatching; queued jobs accumulate (tests, maintenance)."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()
        if self.mode == "inline":
            self._drain_inline()

    def _make_executor(self):
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        if self.mode == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-service",
            )
        return InlineExecutor()

    def _get_executor(self):
        with self._cond:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def _rebuild_executor_if_broken(self) -> None:
        """Replace a broken process pool so retries land on live workers."""
        if not self._owns_executor:
            return
        with self._cond:
            executor = self._executor
            if executor is None or not getattr(executor, "_broken", False):
                return
            self._executor = None
        executor.shutdown(wait=False)

    def _ensure_dispatcher(self) -> None:
        with self._cond:
            if self._dispatcher is not None or self._shutdown:
                return
            self._dispatcher = threading.Thread(
                target=self._dispatcher_loop,
                name="repro-service-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()

    def _dispatcher_loop(self) -> None:
        while True:
            with self._cond:
                while not self._shutdown and (
                    self._paused or self._in_flight >= self.max_workers
                ):
                    self._cond.wait(0.05)
                if self._shutdown:
                    return
            job = self._queue.pop(self._clock())
            if job is None:
                with self._cond:
                    if not self._shutdown:
                        self._cond.wait(0.05)
                    elif self._in_flight == 0:
                        return
                continue
            self._dispatch(job)

    def _drain_inline(self) -> None:
        while True:
            with self._cond:
                if self._paused or self._shutdown:
                    return
            job = self._queue.pop(self._clock())
            if job is None:
                return
            self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        if job.handle.status is not JobStatus.PENDING:
            return
        if not self._route(job):
            return
        job.attempts += 1
        job.handle.attempts = job.attempts
        job.handle._set_running()
        self.flight.record(
            "dispatch",
            job_id=job.handle.job_id,
            engine=job.config.engine,
            attempt=job.attempts,
        )
        job.dispatched_at = time.perf_counter()
        if job.enqueued_at:
            self._latency.record_queue_wait(
                max(self._clock() - job.enqueued_at, 0.0)
            )
        if job.queued_span is not None and self._observation is not None:
            self._observation.tracer.end_span(job.queued_span)
            job.queued_span = None
        if self._fault_plan is not None:
            job.faults = (
                self._fault_plan.for_job(job.handle.job_id, job.attempts)
                or None
            )
        self._maybe_sample_verify(job)
        # thread/inline: the live graph; process: a SharedGraphRef the
        # worker attaches to (pickle bytes when shared memory is off)
        payload = job.record.ship(self.mode)
        with self._cond:
            self._in_flight += 1
        # watch BEFORE the executor submit: inline futures complete (and
        # run _on_done) synchronously, and _on_done's unwatch() is the
        # ownership handshake that keeps the accounting single-owner
        self._watchdog.watch(job)
        if job.deadline is not None:
            self._ensure_watchdog_thread()
        try:
            future = self._get_executor().submit(
                run_job,
                job.graph_id,
                job.fingerprint,
                payload,
                job.plan,
                job.config,
                observe_run=self._observation is not None,
                faults=job.faults,
                verify_engine=job.verify_engine,
                root_range=job.root_range,
            )
        except BaseException as exc:  # pool already broken at submit time
            future = Future()
            future.set_exception(exc)
        self._watchdog.attach_future(job.handle.job_id, future)
        future.add_done_callback(lambda f: self._on_done(job, f))

    def _route(self, job: Job) -> bool:
        """Apply breaker routing; False when the job was failed instead.

        An open breaker on the job's engine either reroutes it to the
        configured fallback (if that engine's breaker allows), dispatches
        anyway (advisory mode, the default), or — under ``fail_fast`` —
        fails the job with a typed :class:`CircuitOpenError`.
        """
        board = self._breakers
        if board is None:
            return True
        res = self.resilience
        engine = job.config.engine
        if board.for_engine(engine).allow():
            return True
        fallback = res.fallback_for(engine)
        if (
            fallback is not None
            and job.rerouted_from is None
            and board.for_engine(fallback).allow()
        ):
            self._reroute(job, engine, fallback, "breaker_open")
            return True
        if not res.fail_fast:
            # advisory breaker: dispatch anyway; outcomes keep feeding the
            # breaker so a recovered engine closes it again
            return True
        exc = CircuitOpenError(
            f"engine {engine!r} breaker is open and no fallback is "
            f"available for job {job.handle.job_id}"
        )
        logger.error(
            "job %d (%s on %s) failed fast: %s",
            job.handle.job_id, job.handle.pattern_name, job.graph_id, exc,
        )
        self.metrics.counter(
            "repro_jobs_failed_total", "jobs that exhausted their retries"
        ).inc()
        self._end_job_span(job, "failed")
        if job.handle._finish(JobStatus.FAILED, error=exc):
            with self._cond:
                self._failed += 1
        return False

    def _reroute(
        self, job: Job, engine: str, fallback: str, reason: str
    ) -> None:
        """Send the job to ``fallback`` instead of its configured engine."""
        logger.warning(
            "job %d (%s on %s) rerouted %s -> %s (%s)",
            job.handle.job_id, job.handle.pattern_name, job.graph_id,
            engine, fallback, reason,
        )
        job.config = job.config.with_overrides(engine=fallback)
        job.rerouted_from = engine
        job.handle.engine = fallback
        if job.span is not None:
            job.span.set_attr("rerouted_from", engine)
            job.span.set_attr("reroute_reason", reason)
        self.metrics.counter(
            "repro_jobs_rerouted_total",
            "jobs rerouted to a fallback engine",
            from_engine=engine,
            to_engine=fallback,
        ).inc()
        self.flight.record(
            "reroute",
            job_id=job.handle.job_id,
            from_engine=engine,
            to_engine=fallback,
            reason=reason,
        )
        with self._cond:
            self._rerouted += 1

    def _maybe_sample_verify(self, job: Job) -> None:
        """Deterministically sample this job for a cross-engine check.

        The decision is a pure function of ``(verify_seed, job_id)`` so a
        replayed workload cross-checks exactly the same jobs regardless
        of scheduling.  Rerouted jobs are skipped — their fallback engine
        *is* the cross-check engine.
        """
        res = self.resilience
        if (
            not res.enabled
            or res.verify_fraction <= 0.0
            or job.verify_engine is not None
            or job.rerouted_from is not None
        ):
            return
        rng = random.Random(hash((res.verify_seed, job.handle.job_id)))
        if rng.random() >= res.verify_fraction:
            return
        engine = job.config.engine
        verify = res.fallback_for(engine)
        if verify is None:
            verify = "event" if engine != "event" else "batched"
        if verify == engine:
            return
        job.verify_engine = verify
        if job.span is not None:
            job.span.set_attr("verify_engine", verify)

    def _on_done(self, job: Job, future: Future) -> None:
        if not self._watchdog.unwatch(job.handle.job_id):
            # the watchdog already abandoned this job (running-deadline
            # expiry): it owned the in-flight slot and finished the
            # waiters with TIMEOUT, so this late result is dropped
            return
        with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()
        if future.cancelled():
            # the executor dropped the job (e.g. cancel_futures on
            # shutdown); release waiters instead of hanging them forever
            self._end_job_span(job, "cancelled")
            if job.handle._finish(JobStatus.CANCELLED):
                with self._cond:
                    self._cancelled += 1
            return
        exc = future.exception()
        board = self._breakers
        if exc is None:
            report = future.result()
            notes = getattr(report, "notes", None) or {}
            self._note_injected(notes.get("injected"))
            crosscheck = notes.get("crosscheck")
            mismatch = bool(crosscheck and crosscheck.get("mismatch"))
            if board is not None:
                breaker = board.for_engine(job.config.engine)
                if mismatch:
                    breaker.record_failure("wrong_result")
                else:
                    breaker.record_success()
            if crosscheck is not None:
                self.metrics.counter(
                    "repro_crosschecks_total",
                    "sampled cross-engine verification runs",
                    result="mismatch" if mismatch else "match",
                ).inc()
                if mismatch:
                    logger.error(
                        "job %d cross-check mismatch: %s counted %s but "
                        "%s counted %s; serving the verified report",
                        job.handle.job_id,
                        crosscheck.get("primary_engine"),
                        crosscheck.get("primary_count"),
                        crosscheck.get("verify_engine"),
                        crosscheck.get("verify_count"),
                    )
                    with self._cond:
                        self._crosscheck_mismatches += 1
            if (
                not mismatch
                and job.rerouted_from is None
                and not notes.get("injected")
            ):
                # mismatched, fault-perturbed or rerouted reports must not
                # poison the cache: their counts or timings are not what a
                # clean run of the submitted (engine, config) would yield
                self._cache.put(job.cache_key, report)
            profile = getattr(report, "profile", None)
            ob = self._observation
            if ob is not None and profile is not None:
                # worker processes have their own perf_counter origin, so
                # re-anchor their spans at the dispatch timestamp; threads
                # and inline runs already share this process's clock
                ob.tracer.ingest(
                    profile.spans,
                    parent=job.span,
                    align_to=(
                        job.dispatched_at if self.mode == "process" else None
                    ),
                )
                self._profiles.append(profile)
            self._end_job_span(job, "done")
            if job.handle._finish(JobStatus.DONE, report=report):
                self.metrics.counter(
                    "repro_jobs_completed_total", "jobs finished successfully"
                ).inc()
                elapsed = time.perf_counter() - job.dispatched_at
                self._latency.record(job.config.engine, elapsed)
                if (
                    job.features is not None
                    and job.verify_engine is None
                    and not notes.get("injected")
                    and not mismatch
                ):
                    # clean single-engine run: valid training data for the
                    # cost model (cross-checked jobs time two engines;
                    # fault-perturbed timings are noise).  Rerouted jobs
                    # train too — keyed by the engine that actually ran.
                    self.predictor.observe(
                        job.features, job.config.engine, elapsed
                    )
                    if job.predicted_seconds > 0.0:
                        self.predictor.record_accuracy(
                            job.predicted_seconds, elapsed
                        )
                self.flight.record(
                    "done",
                    job_id=job.handle.job_id,
                    engine=job.config.engine,
                    seconds=elapsed,
                )
                with self._cond:
                    self._completed += 1
            return
        if isinstance(exc, _CRASH_TYPES):
            if board is not None:
                board.for_engine(job.config.engine).record_failure("crash")
            if isinstance(exc, InjectedCrashError):
                # the worker died before it could ship notes home; count
                # the injected crash from the typed error's site instead
                self._note_injected({f"{exc.site}:crash": 1})
        if isinstance(exc, _CRASH_TYPES) and job.attempts <= \
                self.retry.max_retries:
            logger.warning(
                "job %d (%s on %s) crashed on attempt %d, retrying: %s",
                job.handle.job_id, job.handle.pattern_name, job.graph_id,
                job.attempts, exc,
            )
            self.metrics.counter(
                "repro_job_retries_total", "crash-shaped failures retried"
            ).inc()
            with self._cond:
                self._retries += 1
            self.flight.record(
                "retry",
                job_id=job.handle.job_id,
                attempt=job.attempts,
                error=type(exc).__name__,
            )
            if self._observation is not None and job.span is not None:
                job.queued_span = self._observation.tracer.start_span(
                    "service.queued", parent=job.span, retry=job.attempts
                )
            delay = self.retry.backoff_for(job.attempts)
            if self.mode == "inline":
                # synchronous mode: this callback runs on the submitting
                # thread, so sleeping delays no other completion
                self._sleep(delay)
            else:
                # pool modes run this callback on the executor's completion
                # thread — sleeping there would serialise every in-flight
                # completion behind the backoff, so defer via the queue
                job.not_before = self._clock() + delay
            self._rebuild_executor_if_broken()
            job.handle._requeue()
            job.enqueued_at = self._clock()
            try:
                self._queue.push(job)
            except QueueFullError as full:
                self._end_job_span(job, "failed")
                if job.handle._finish(JobStatus.FAILED, error=full):
                    with self._cond:
                        self._failed += 1
                return
            with self._cond:
                self._cond.notify_all()
            return
        if isinstance(exc, _CRASH_TYPES):
            fallback = self.resilience.fallback_for(job.config.engine)
            if (
                self.resilience.enabled
                and fallback is not None
                and job.rerouted_from is None
                and (board is None or board.for_engine(fallback).allow())
            ):
                # last resort: retries on the primary engine are spent, but
                # a fallback route exists — restart the attempt budget there
                self._reroute(
                    job, job.config.engine, fallback,
                    "crash_retries_exhausted",
                )
                job.attempts = 0
                job.handle.attempts = 0
                job.not_before = None
                if self._observation is not None and job.span is not None:
                    job.queued_span = self._observation.tracer.start_span(
                        "service.queued", parent=job.span, reroute=fallback
                    )
                self._rebuild_executor_if_broken()
                job.handle._requeue()
                job.enqueued_at = self._clock()
                try:
                    self._queue.push(job)
                except QueueFullError as full:
                    self._end_job_span(job, "failed")
                    if job.handle._finish(JobStatus.FAILED, error=full):
                        with self._cond:
                            self._failed += 1
                    return
                # inline mode needs no kick: _on_done runs inside
                # _drain_inline's loop, which pops the requeued job next
                with self._cond:
                    self._cond.notify_all()
                return
            exc = WorkerCrashError(
                f"job {job.handle.job_id} crashed {job.attempts} time(s); "
                f"retries exhausted ({self.retry.max_retries}): {exc}"
            )
        logger.error(
            "job %d (%s on %s) failed: %s",
            job.handle.job_id, job.handle.pattern_name, job.graph_id, exc,
        )
        self.metrics.counter(
            "repro_jobs_failed_total", "jobs that exhausted their retries"
        ).inc()
        self._end_job_span(job, "failed")
        self.flight.record(
            "failed",
            job_id=job.handle.job_id,
            engine=job.config.engine,
            error=type(exc).__name__ if exc is not None else "unknown",
        )
        if exc is not None and job.handle._finish(
            JobStatus.FAILED, error=exc
        ):
            with self._cond:
                self._failed += 1

    # -- resilience --------------------------------------------------------

    def arm_faults(self, plan: "FaultPlan | None") -> None:
        """Arm (or, with None, disarm) a seeded fault plan for chaos runs.

        Each subsequent dispatch asks the plan which faults apply to that
        ``(job_id, attempt)`` and ships the specs to the worker; with no
        plan armed the dispatch path is one ``is None`` check and the
        worker path is byte-identical to normal operation.
        """
        with self._cond:
            self._fault_plan = plan

    def _note_injected(self, events: "dict[str, int] | None") -> None:
        """Fold a worker's ``site:kind`` fault events into the metrics."""
        if not events:
            return
        total = 0
        for key, count in events.items():
            site, _, kind = key.partition(":")
            self.metrics.counter(
                "repro_faults_injected_total",
                "injected faults observed by the service",
                site=site,
                kind=kind,
            ).inc(count)
            total += count
        with self._cond:
            self._faults_injected += total

    def check_watchdog(self) -> int:
        """One watchdog pass: abandon running jobs past their deadline.

        The background watchdog thread calls this on an interval in pool
        modes; deterministic tests call it directly against a fake clock.
        Returns how many jobs were abandoned on this pass.  Abandoned
        jobs free their in-flight slot and finish their waiters with
        ``TIMEOUT``; the (possibly hung) worker future is cancelled
        best-effort and any late result it produces is dropped by the
        unwatch handshake in ``_on_done``.
        """
        expired = self._watchdog.scan()
        for job, future in expired:
            if future is not None:
                future.cancel()
            self.metrics.counter(
                "repro_jobs_abandoned_total",
                "running jobs abandoned by the watchdog",
            ).inc()
            self.metrics.counter(
                "repro_jobs_timed_out_total",
                "jobs whose deadline expired",
            ).inc()
            self._end_job_span(job, "timeout")
            self.flight.record(
                "abandoned",
                job_id=job.handle.job_id,
                engine=job.config.engine,
                attempt=job.attempts,
            )
            job.handle._finish(JobStatus.TIMEOUT)
            with self._cond:
                self._in_flight -= 1
                self._timed_out += 1
                self._abandoned += 1
                self._cond.notify_all()
        if expired:
            # a worker stuck in a hung job may have broken the pool (or we
            # may simply want fresh capacity); replace it if so
            self._rebuild_executor_if_broken()
        return len(expired)

    def _ensure_watchdog_thread(self) -> None:
        """Start the background scan thread (pool modes only).

        Inline mode completes every job synchronously inside ``submit``,
        so there is never a *running* job for a thread to observe —
        deterministic tests drive :meth:`check_watchdog` directly.
        """
        if self.mode == "inline" or not self._watchdog.enforce_deadlines:
            return
        self._watchdog.start(self.check_watchdog)

    def _health_state(self) -> HealthState:
        """Classify the service right now (queue occupancy + breakers)."""
        if not self.resilience.enabled:
            return HealthState.HEALTHY
        breakers = (
            self._breakers.states().values()
            if self._breakers is not None
            else ()
        )
        return assess(
            self._queue.depth(),
            self._queue.limit,
            breakers,
            self.resilience.degradation,
        )

    def health(self) -> HealthReport:
        """Point-in-time degradation report (state machine + counters)."""
        with self._cond:
            in_flight = self._in_flight
            shed = self._shed
            abandoned = self._abandoned
            rerouted = self._rerouted
            mismatches = self._crosscheck_mismatches
            faults = self._faults_injected
            stuck = self._dispatcher_stuck
        return HealthReport(
            state=self._health_state(),
            queue_depth=self._queue.depth(),
            queue_limit=self._queue.limit,
            in_flight=in_flight,
            breakers=(
                self._breakers.snapshots()
                if self._breakers is not None
                else {}
            ),
            shed=shed,
            abandoned=abandoned,
            rerouted=rerouted,
            crosscheck_mismatches=mismatches,
            faults_injected=faults,
            dispatcher_stuck=stuck,
        )

    # -- introspection / lifecycle -----------------------------------------

    def stats(self) -> ServiceStats:
        """Point-in-time snapshot of queue, pool, cache and latencies."""
        with self._cond:
            in_flight = self._in_flight
            submitted = self._submitted
            completed = self._completed
            failed = self._failed
            cancelled = self._cancelled
            timed_out = self._timed_out
            retries = self._retries
            shed = self._shed
            abandoned = self._abandoned
            rerouted = self._rerouted
            mismatches = self._crosscheck_mismatches
            faults = self._faults_injected
            stuck = self._dispatcher_stuck
            rejected = self._rejected
            auto_selected = dict(self._auto_selected)
        self.metrics.gauge(
            "repro_queue_depth", "jobs currently queued"
        ).set(self._queue.depth())
        self.metrics.gauge(
            "repro_in_flight", "jobs currently on workers"
        ).set(in_flight)
        health = self._health_state()
        if self.resilience.enabled:
            self.metrics.set_state_gauge(
                "repro_health_state",
                "service degradation state (1 = current)",
                health.name.lower(),
                [s.name.lower() for s in HealthState],
            )
            if self._breakers is not None:
                for engine, state in self._breakers.states().items():
                    self.metrics.set_state_gauge(
                        "repro_breaker_state",
                        "per-engine circuit breaker state (1 = current)",
                        state.name.lower(),
                        [s.name.lower() for s in BreakerState],
                        engine=engine,
                    )
        return ServiceStats(
            mode=self.mode,
            workers=self.max_workers,
            graphs=len(self._registry),
            queue_depth=self._queue.depth(),
            in_flight=in_flight,
            submitted=submitted,
            completed=completed,
            failed=failed,
            cancelled=cancelled,
            timed_out=timed_out,
            retries=retries,
            shed=shed,
            abandoned=abandoned,
            rerouted=rerouted,
            crosscheck_mismatches=mismatches,
            faults_injected=faults,
            health=health.name.lower(),
            dispatcher_stuck=stuck,
            rejected=rejected,
            auto_selected=auto_selected,
            queue_wait=self._latency.queue_wait_summary(),
            predictor=self.predictor.snapshot(),
            cache_size=len(self._cache),
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_evictions=self._cache.evictions,
            cache_invalidations=self._cache.invalidations,
            cache_hit_rate=self._cache.hit_rate,
            latency=self._latency.summary(),
            metrics=self.metrics.snapshot(),
        )

    @property
    def observability(self) -> bool:
        """True when span tracing / profiling was enabled at construction."""
        return self._observation is not None

    def metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        self.stats()  # refresh the queue/in-flight gauges first
        return self.metrics.render_prometheus()

    def profiles(self) -> list["ExecutionProfile"]:
        """Recent :class:`ExecutionProfile`\\ s (newest last, bounded)."""
        return list(self._profiles)

    def trace_events(self) -> list[dict]:
        """Chrome trace events for all finished spans + PE activity."""
        ob = self._observation
        if ob is None:
            raise ServiceError(
                "tracing is disabled; construct the service with "
                "observability=True"
            )
        pe_events: list[tuple] = []
        for profile in self._profiles:
            pe_events.extend(profile.pe_events)
        return chrome_trace_events(ob.tracer.finished(), pe_events)

    def export_trace(self, path: str | None = None) -> "list[dict] | None":
        """Write (or return) the unified Chrome/Perfetto trace.

        With ``path`` the trace JSON is written there and None is returned;
        without it the raw event list comes back.  Raises
        :class:`~repro.errors.ServiceError` when tracing is disabled.
        """
        events = self.trace_events()
        if path is None:
            return events
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        Path(path).write_text(json.dumps(payload))
        return None

    def shutdown(self, wait: bool = True, join_timeout: float = 5.0) -> None:
        """Stop the service: cancel queued jobs, drain or drop in-flight.

        A dispatcher thread that fails to stop within ``join_timeout``
        seconds (a worker pinned by a hung job can block it on the
        in-flight gate) is reported — logged with the ids of the jobs it
        is stuck behind and surfaced as ``dispatcher_stuck`` in
        :meth:`stats` / :meth:`health` — rather than waited on forever.
        """
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
            dispatcher = self._dispatcher
        # queued-but-never-run jobs (including any parked on a retry
        # backoff, which pop() would defer) must not hang their waiters
        for job in self._queue.drain():
            self._end_job_span(job, "cancelled")
            if job.handle._finish(JobStatus.CANCELLED):
                with self._cond:
                    self._cancelled += 1
        if dispatcher is not None:
            dispatcher.join(timeout=join_timeout)
            if dispatcher.is_alive():
                stuck_ids = self._watchdog.running_ids()
                logger.warning(
                    "dispatcher thread failed to stop within %.1fs; "
                    "still-running job ids: %s",
                    join_timeout, list(stuck_ids) or "none",
                )
                with self._cond:
                    self._dispatcher_stuck = True
        self._watchdog.stop()
        with self._cond:
            executor = self._executor
            self._executor = None
        if executor is not None and self._owns_executor:
            executor.shutdown(wait=wait)
        # all workers are gone (or externally owned and done with our
        # jobs): unlink every shared-memory segment the registry created
        self._registry.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService(mode={self.mode!r}, workers={self.max_workers}, "
            f"graphs={len(self._registry)})"
        )
