"""Pool-worker side of the service: run one job, cache graphs per process.

``run_job`` is the only function the service ever submits to an executor.
It must stay a module-level callable (process pools pickle it by reference)
and its arguments must be cheap to serialise.  The graph travels one of
three ways, resolved here per worker process:

* a :class:`~repro.graph.store.SharedGraphRef` (process mode, default):
  the worker attaches to the registry's shared-memory segment and builds
  zero-copy array views — no CSR bytes are ever unpickled or duplicated;
* pickled payload bytes (process-mode fallback when shared memory is
  unavailable) — deserialised at most once per worker and fingerprint;
* the live :class:`CSRGraph` object (thread/inline modes — zero copies).

Resilience hooks (both default-off and free when unused):

* ``faults`` — the job's assigned :class:`~repro.resilience.FaultSpec`
  set, derived service-side from the armed seeded plan.  A
  :class:`~repro.resilience.FaultInjector` is armed around the run so
  the ``worker.run`` / ``engine.*`` / ``memory.stream`` sites fire;
  whatever actually fired ships home in ``report.notes["injected"]``.
* ``verify_engine`` — the sampled cross-check: the job is re-run on a
  second engine and the exact embedding counts compared.  On a mismatch
  (silent corruption somewhere in the primary datapath) the *verified*
  report is returned instead, with both counts recorded in
  ``report.notes["crosscheck"]`` so the service can trip the primary
  engine's breaker.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING

from ..graph.csr import CSRGraph
from ..graph.store import AttachedGraph, SharedGraphRef, attach_graph
from ..resilience.faults import FaultInjector, FaultSpec, inject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SystemConfig
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = ["run_job", "worker_graph_cache_info"]

#: per-process resolved graphs, keyed by graph_id.  One entry per id: an
#: updated snapshot (new fingerprint) replaces the old.  The third slot
#: holds the AttachedGraph keeping a shared-memory mapping alive, or None
#: for graphs that arrived as pickle bytes / live objects.
_GRAPH_CACHE: dict[str, tuple[str, CSRGraph, "AttachedGraph | None"]] = {}

#: deserialisations performed by this process (observability for tests)
_CACHE_FILLS = 0

#: shared-memory attachments performed by this process
_SHM_ATTACHES = 0


def _cache_graph(
    graph_id: str,
    fingerprint: str,
    graph: CSRGraph,
    holder: "AttachedGraph | None",
) -> None:
    old = _GRAPH_CACHE.get(graph_id)
    _GRAPH_CACHE[graph_id] = (fingerprint, graph, holder)
    if old is not None and old[2] is not None:
        # replaced an attached snapshot: release this process's mapping of
        # the retired segment (the creator-side unlink already happened or
        # will happen; close() frees our address space either way)
        old[2].close()


def _resolve_graph(
    graph_id: str,
    fingerprint: str,
    payload: "bytes | CSRGraph | SharedGraphRef",
) -> CSRGraph:
    global _CACHE_FILLS, _SHM_ATTACHES
    if isinstance(payload, CSRGraph):
        return payload
    cached = _GRAPH_CACHE.get(graph_id)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    if isinstance(payload, SharedGraphRef):
        attached = attach_graph(payload)
        _SHM_ATTACHES += 1
        _cache_graph(graph_id, fingerprint, attached.graph, attached)
        return attached.graph
    graph = pickle.loads(payload)
    _CACHE_FILLS += 1
    _cache_graph(graph_id, fingerprint, graph, None)
    return graph


def _run_primary(
    graph: CSRGraph,
    plan: "MatchingPlan",
    config: "SystemConfig",
    observe_run: bool,
    roots=None,
) -> "SimReport":
    """The pre-resilience execution paths, byte-for-byte unchanged."""
    from ..sim.host import run_on_soc

    if not observe_run:
        t0 = time.perf_counter()
        report = run_on_soc(graph, plan, config, roots=roots)
        report.wall_seconds = time.perf_counter() - t0
        return report

    from ..obs import build_profile, observe

    t0 = time.perf_counter()
    with observe() as ob:
        with ob.tracer.span(
            "worker.run_job",
            graph_id=graph.name,
            pattern=plan.pattern.name,
            engine=config.engine,
            pid=os.getpid(),
        ):
            report = run_on_soc(graph, plan, config, roots=roots)
    report.wall_seconds = time.perf_counter() - t0
    report.profile = build_profile(report, ob, engine=config.engine)
    return report


def run_job(
    graph_id: str,
    fingerprint: str,
    payload: "bytes | CSRGraph | SharedGraphRef",
    plan: "MatchingPlan",
    config: "SystemConfig",
    observe_run: bool = False,
    faults: "tuple[FaultSpec, ...] | None" = None,
    verify_engine: str | None = None,
    root_range: "tuple[int, int] | None" = None,
) -> "SimReport":
    """Execute one query on the configured engine; returns the report.

    With ``observe_run=True`` the run executes inside its own observation
    scope and the report comes back with an
    :class:`~repro.obs.profile.ExecutionProfile` attached — spans, per-level
    totals and the PE activity timeline all recorded worker-side and
    shipped home with the (picklable) report.
    """
    import numpy as np

    from ..sim.host import run_on_soc

    graph = _resolve_graph(graph_id, fingerprint, payload)
    # a half-open [lo, hi) root range ships as two ints and becomes the
    # engines' root-vertex array here, worker-side (cluster subqueries)
    roots = (
        None
        if root_range is None
        else np.arange(root_range[0], root_range[1], dtype=np.int32)
    )
    injector = FaultInjector(faults) if faults else None
    with inject(injector) if injector is not None else nullcontext():
        if injector is not None:
            # site "worker.run": CRASH raises a crash-shaped error the
            # service retries/reroutes, HANG stalls this worker
            injector.fire("worker.run")
        report = _run_primary(graph, plan, config, observe_run, roots)
    # the cross-check runs outside the fault scope: it is the trusted
    # independent recomputation, never subject to the job's injections
    verify_report: "SimReport | None" = None
    if verify_engine is not None and verify_engine != config.engine:
        verify_report = run_on_soc(
            graph,
            plan,
            config.with_overrides(engine=verify_engine),
            roots=roots,
        )
    if injector is not None and injector.events:
        report.notes["injected"] = dict(injector.events)
    if verify_report is not None:
        mismatch = verify_report.embeddings != report.embeddings
        crosscheck = {
            "primary_engine": config.engine,
            "verify_engine": verify_engine,
            "primary_count": report.embeddings,
            "verify_count": verify_report.embeddings,
            "mismatch": mismatch,
        }
        if mismatch:
            # silent corruption detected: serve the independently computed
            # report (the verify engine re-ran outside the fault scope's
            # one-shot corruptions) and let the service trip the breaker
            verify_report.notes.update(report.notes)
            report = verify_report
        report.notes["crosscheck"] = crosscheck
    return report


def worker_graph_cache_info() -> dict:
    """Snapshot of this process's graph cache (used by tests/debugging)."""
    return {
        "pid": os.getpid(),
        "graphs": sorted(_GRAPH_CACHE),
        "fills": _CACHE_FILLS,
        "attaches": _SHM_ATTACHES,
    }
