"""Introspection surface: counters, latency percentiles, stats snapshot.

``QueryService.stats()`` returns one immutable :class:`ServiceStats`
snapshot.  Latencies are recorded per engine over a bounded window so a
long-lived service reports *recent* behaviour, not its lifetime average.

Since the observability layer landed, the recorder is built on the shared
:mod:`repro.obs` vocabulary instead of ad-hoc math: samples live in
:class:`repro.obs.summary.Window` rings, summaries use the one shared
nearest-rank :func:`repro.obs.summary.percentile`, and every recorded
sample also feeds a ``repro_job_latency_seconds`` histogram in the
service's :class:`~repro.obs.metrics.MetricsRegistry` so the same numbers
are scrapeable in Prometheus text form.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.summary import Window, percentile

__all__ = ["LatencyRecorder", "ServiceStats", "percentile"]

#: latency samples kept per engine (ring buffer)
LATENCY_WINDOW = 1024

#: percentiles reported by ``stats()``
PERCENTILES = (50, 90, 99)


class LatencyRecorder:
    """Windowed per-engine latency samples with percentile summaries.

    Thin façade over the shared observability primitives: one
    :class:`~repro.obs.summary.Window` per engine plus a labelled
    histogram in ``registry`` (a private registry is created when none is
    supplied, so standalone use keeps working).
    """

    def __init__(
        self,
        window: int = LATENCY_WINDOW,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._window = window
        # explicit None check: an *empty* registry is falsy (len() == 0)
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._windows: dict[str, Window] = {}
        self._queue_wait = Window(window)
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def record(self, engine: str, seconds: float) -> None:
        with self._lock:
            ring = self._windows.get(engine)
            if ring is None:
                ring = self._windows[engine] = Window(self._window)
        ring.add(seconds)
        self._registry.histogram(
            "repro_job_latency_seconds",
            "per-engine job execution latency",
            engine=engine,
        ).observe(seconds)

    def record_queue_wait(self, seconds: float) -> None:
        """One job's queue-wait time (submit/requeue → dispatch)."""
        self._queue_wait.add(seconds)
        self._registry.histogram(
            "repro_job_queue_wait_seconds",
            "time jobs spent queued before dispatch",
        ).observe(seconds)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{engine: {"p50": ..., "p90": ..., "p99": ..., "count": n}}``."""
        with self._lock:
            windows = dict(self._windows)
        return {
            engine: ring.summary(PERCENTILES)
            for engine, ring in windows.items()
        }

    def queue_wait_summary(self) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ..., "count": n}`` of waits."""
        return self._queue_wait.summary(PERCENTILES)


@dataclass(frozen=True)
class ServiceStats:
    """One point-in-time view of the service (all fields are snapshots)."""

    mode: str
    workers: int
    graphs: int
    queue_depth: int
    in_flight: int
    submitted: int
    completed: int
    failed: int
    cancelled: int
    timed_out: int
    retries: int
    cache_size: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_invalidations: int
    cache_hit_rate: float
    # -- resilience counters (zero on an undisturbed service) --------------
    #: submissions shed while OVERLOADED
    shed: int = 0
    #: running jobs abandoned by the watchdog
    abandoned: int = 0
    #: jobs sent to a fallback engine (breaker open / retries exhausted)
    rerouted: int = 0
    #: sampled cross-engine checks that disagreed on the count
    crosscheck_mismatches: int = 0
    #: injected faults observed (chaos runs only)
    faults_injected: int = 0
    #: degradation state at snapshot time: healthy/degraded/overloaded
    health: str = "healthy"
    #: True when shutdown() could not join the dispatcher thread
    dispatcher_stuck: bool = False
    # -- adaptive scheduling (repro.sched.adaptive) ------------------------
    #: submissions rejected by deadline-aware admission control
    rejected: int = 0
    #: ``engine="auto"`` resolutions per chosen engine
    auto_selected: dict[str, int] = field(default_factory=dict)
    #: queue-wait percentiles (submit → dispatch) over the recent window
    queue_wait: dict[str, float] = field(default_factory=dict)
    #: cost-predictor self-assessment: accuracy window + model coverage
    predictor: dict = field(default_factory=dict)
    #: per-engine latency percentiles over the recent window
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    #: flattened metrics-registry snapshot (``{"name{label=...}": value}``)
    metrics: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [
            f"mode={self.mode} workers={self.workers} graphs={self.graphs}",
            f"queue depth {self.queue_depth}, in flight {self.in_flight}",
            (
                f"jobs: {self.submitted} submitted, {self.completed} done, "
                f"{self.failed} failed, {self.cancelled} cancelled, "
                f"{self.timed_out} timed out, {self.retries} retries"
            ),
            (
                f"cache: {self.cache_size} entries, {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%}), "
                f"{self.cache_evictions} evicted, "
                f"{self.cache_invalidations} invalidated"
            ),
        ]
        if (
            self.health != "healthy" or self.shed or self.abandoned
            or self.rerouted or self.crosscheck_mismatches
            or self.faults_injected or self.dispatcher_stuck
        ):
            lines.append(
                f"resilience: health={self.health}, {self.shed} shed, "
                f"{self.abandoned} abandoned, {self.rerouted} rerouted, "
                f"{self.crosscheck_mismatches} cross-check mismatches, "
                f"{self.faults_injected} faults injected"
                + (", DISPATCHER STUCK" if self.dispatcher_stuck else "")
            )
        for engine, pcts in sorted(self.latency.items()):
            lines.append(
                f"latency[{engine}]: "
                f"p50 {pcts['p50'] * 1e3:.2f}ms  "
                f"p90 {pcts['p90'] * 1e3:.2f}ms  "
                f"p99 {pcts['p99'] * 1e3:.2f}ms  "
                f"(n={pcts['count']:.0f})"
            )
        if self.queue_wait.get("count"):
            qw = self.queue_wait
            lines.append(
                f"queue wait: p50 {qw['p50'] * 1e3:.2f}ms  "
                f"p99 {qw['p99'] * 1e3:.2f}ms  (n={qw['count']:.0f})"
            )
        if self.rejected or self.auto_selected:
            auto = ", ".join(
                f"{engine}={n}"
                for engine, n in sorted(self.auto_selected.items())
            )
            lines.append(
                f"adaptive: {self.rejected} admission-rejected"
                + (f", auto-selected {auto}" if auto else "")
            )
        if self.predictor.get("count"):
            pred = self.predictor
            lines.append(
                f"predictor: {pred.get('observations', 0):.0f} observed, "
                f"ratio p50 {pred['p50']:.2f} p99 {pred['p99']:.2f}, "
                f"{pred.get('within_2x', 0.0):.0%} within 2x"
            )
        return "\n".join(lines)
