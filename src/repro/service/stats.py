"""Introspection surface: counters, latency percentiles, stats snapshot.

``QueryService.stats()`` returns one immutable :class:`ServiceStats`
snapshot.  Latencies are recorded per engine over a bounded window so a
long-lived service reports *recent* behaviour, not its lifetime average.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["LatencyRecorder", "ServiceStats"]

#: latency samples kept per engine (ring buffer)
LATENCY_WINDOW = 1024

#: percentiles reported by ``stats()``
PERCENTILES = (50, 90, 99)


def percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty window)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


class LatencyRecorder:
    """Windowed per-engine latency samples with percentile summaries."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._window = window
        self._samples: dict[str, deque[float]] = {}
        self._lock = threading.Lock()

    def record(self, engine: str, seconds: float) -> None:
        with self._lock:
            bucket = self._samples.get(engine)
            if bucket is None:
                bucket = self._samples[engine] = deque(maxlen=self._window)
            bucket.append(seconds)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{engine: {"p50": ..., "p90": ..., "p99": ..., "count": n}}``."""
        with self._lock:
            snapshot = {k: list(v) for k, v in self._samples.items()}
        return {
            engine: {
                **{f"p{p}": percentile(vals, p) for p in PERCENTILES},
                "count": float(len(vals)),
            }
            for engine, vals in snapshot.items()
        }


@dataclass(frozen=True)
class ServiceStats:
    """One point-in-time view of the service (all fields are snapshots)."""

    mode: str
    workers: int
    graphs: int
    queue_depth: int
    in_flight: int
    submitted: int
    completed: int
    failed: int
    cancelled: int
    timed_out: int
    retries: int
    cache_size: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_invalidations: int
    cache_hit_rate: float
    #: per-engine latency percentiles over the recent window
    latency: dict[str, dict[str, float]] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [
            f"mode={self.mode} workers={self.workers} graphs={self.graphs}",
            f"queue depth {self.queue_depth}, in flight {self.in_flight}",
            (
                f"jobs: {self.submitted} submitted, {self.completed} done, "
                f"{self.failed} failed, {self.cancelled} cancelled, "
                f"{self.timed_out} timed out, {self.retries} retries"
            ),
            (
                f"cache: {self.cache_size} entries, {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%}), "
                f"{self.cache_evictions} evicted, "
                f"{self.cache_invalidations} invalidated"
            ),
        ]
        for engine, pcts in sorted(self.latency.items()):
            lines.append(
                f"latency[{engine}]: "
                f"p50 {pcts['p50'] * 1e3:.2f}ms  "
                f"p90 {pcts['p90'] * 1e3:.2f}ms  "
                f"p99 {pcts['p99'] * 1e3:.2f}ms  "
                f"(n={pcts['count']:.0f})"
            )
        return "\n".join(lines)
