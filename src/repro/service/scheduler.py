"""Job queue and retry policy for the service dispatcher.

The queue is a bounded binary heap ordered by ``(priority, submit seq)`` —
lower priority values dispatch first, FIFO within a priority class, which
is the process-level analogue of the X-SET scheduler's in-order TaskSet
draining.  Backpressure is a typed error, never a blocking submit: a full
queue raises :class:`~repro.errors.QueueFullError` so callers can shed
load (the paper's "heavy traffic" framing demands the service itself stay
responsive).

Cancelled jobs are removed lazily (tombstoned), deadline-expired jobs are
reaped at pop time, and crash-retried jobs waiting out their backoff
(``Job.not_before``) are deferred in place — all against the
caller-supplied clock, which keeps every timing decision injectable and
the concurrency tests sleep-free.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from ..errors import QueueFullError
from .job import Job, JobStatus

__all__ = ["JobQueue", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for worker crashes.

    Only *crash-shaped* failures (a worker process dying, the pool
    breaking) are retried; ordinary exceptions from the engine are
    deterministic and propagate immediately.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


class JobQueue:
    """Bounded priority/FIFO queue of :class:`Job` records."""

    def __init__(self, limit: int = 256, on_timeout=None) -> None:
        self.limit = max(int(limit), 1)
        self._heap: list[tuple[int, int, Job]] = []
        self._live = 0
        self._lock = threading.Lock()
        #: called with each job whose queue deadline expired (stats hook)
        self._on_timeout = on_timeout

    def push(self, job: Job) -> None:
        with self._lock:
            if self._live >= self.limit:
                # the fast counter includes cancelled tombstones; recount
                # before rejecting so cancellations free queue space
                self._live = sum(
                    1 for _, _, j in self._heap
                    if j.handle.status is JobStatus.PENDING
                )
            if self._live >= self.limit:
                raise QueueFullError(
                    f"service queue is full ({self.limit} jobs pending); "
                    f"retry later or raise queue_limit"
                )
            heapq.heappush(self._heap, (*job.sort_key(), job))
            self._live += 1

    def pop(self, now: float) -> Job | None:
        """Next runnable job, or None.

        Skips cancelled tombstones, moves queued jobs whose deadline has
        passed (``job.deadline < now``) to ``TIMEOUT``, and leaves jobs
        whose retry backoff (``job.not_before``) has not yet elapsed in
        the queue — everything is assessed lazily, at dispatch time,
        against the injected clock.
        """
        deferred: list[Job] = []
        try:
            while True:
                with self._lock:
                    if not self._heap:
                        return None
                    _, _, job = heapq.heappop(self._heap)
                    self._live -= 1
                if job.handle.status is not JobStatus.PENDING:
                    continue  # cancelled (or otherwise finished) while queued
                if job.deadline is not None and now > job.deadline:
                    if job.handle._finish(JobStatus.TIMEOUT) and \
                            self._on_timeout is not None:
                        self._on_timeout(job)
                    continue
                if job.not_before is not None and now < job.not_before:
                    deferred.append(job)  # backoff pending; stays queued
                    continue
                return job
        finally:
            if deferred:
                with self._lock:
                    for job in deferred:
                        heapq.heappush(self._heap, (*job.sort_key(), job))
                        self._live += 1

    def drain(self) -> list[Job]:
        """Remove and return every still-pending job, backoff or not.

        Shutdown path: unlike :meth:`pop` this never defers, so waiters
        of a job parked on its retry backoff are released too.
        """
        with self._lock:
            heap, self._heap = self._heap, []
            self._live = 0
        return [
            job for _, _, job in heap
            if job.handle.status is JobStatus.PENDING
        ]

    def depth(self) -> int:
        """Live (non-tombstoned) queued jobs."""
        with self._lock:
            live = sum(
                1 for _, _, job in self._heap
                if job.handle.status is JobStatus.PENDING
            )
            self._live = live
            return live

    def __len__(self) -> int:
        return self.depth()
