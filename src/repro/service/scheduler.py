"""Job queue and retry policy for the service dispatcher.

The queue is a bounded binary heap with two dispatch policies:

``fifo``
    Ordered by ``(priority, submit seq)`` — lower priority values
    dispatch first, FIFO within a priority class.  The process-level
    analogue of the X-SET scheduler's in-order TaskSet draining, and the
    pre-adaptive service behaviour.
``cost``
    Ordered by ``(priority, predicted seconds, submit seq)`` — shortest
    predicted job first within a priority class, so one heavy clique
    query stops blowing the p99 of hundreds of cheap triangle counts.
    Jobs with identical predictions degrade to FIFO, and an
    **anti-starvation aging bound** guarantees progress: a job queued
    longer than ``age_limit`` seconds dispatches ahead of cheaper
    newcomers (tracked in arrival order through a side deque).

Backpressure is a typed error, never a blocking submit: a full queue
raises :class:`~repro.errors.QueueFullError` so callers can shed load
(the paper's "heavy traffic" framing demands the service itself stay
responsive).

Cancelled jobs are removed lazily (tombstoned), deadline-expired jobs are
reaped at pop time, and crash-retried jobs waiting out their backoff
(``Job.not_before``) are deferred in place — all against the
caller-supplied clock, which keeps every timing decision injectable and
the concurrency tests sleep-free.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass

from ..errors import QueueFullError
from .job import Job, JobStatus

__all__ = ["JobQueue", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for worker crashes.

    Only *crash-shaped* failures (a worker process dying, the pool
    breaking) are retried; ordinary exceptions from the engine are
    deterministic and propagate immediately.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


class JobQueue:
    """Bounded priority queue of :class:`Job` records (fifo/cost policy)."""

    def __init__(
        self,
        limit: int = 256,
        on_timeout=None,
        *,
        policy: str = "fifo",
        age_limit: float | None = None,
    ) -> None:
        if policy not in ("fifo", "cost"):
            raise ValueError(
                f"unknown queue policy {policy!r}; available: fifo, cost"
            )
        self.limit = max(int(limit), 1)
        self.policy = policy
        #: seconds after which a queued job outranks cheaper newcomers
        #: (cost policy only; None disables aging)
        self.age_limit = age_limit
        self._heap: list[tuple[tuple, int, Job]] = []
        #: arrival-order view for the aging bound (cost policy only)
        self._arrivals: deque[Job] = deque()
        self._live = 0
        self._lock = threading.Lock()
        #: called with each job whose queue deadline expired (stats hook)
        self._on_timeout = on_timeout

    def _key(self, job: Job) -> tuple:
        return job.cost_key() if self.policy == "cost" else job.sort_key()

    @staticmethod
    def _pending(job: Job) -> bool:
        return not job.taken and job.handle.status is JobStatus.PENDING

    def push(self, job: Job) -> None:
        with self._lock:
            if self._live >= self.limit:
                # the fast counter includes cancelled tombstones; recount
                # before rejecting so cancellations free queue space
                self._live = sum(
                    1 for _, _, j in self._heap if self._pending(j)
                )
            if self._live >= self.limit:
                raise QueueFullError(
                    f"service queue is full ({self.limit} jobs pending); "
                    f"retry later or raise queue_limit"
                )
            job.taken = False
            heapq.heappush(self._heap, (self._key(job), job.seq, job))
            if self.policy == "cost" and self.age_limit is not None:
                self._arrivals.append(job)
            self._live += 1

    def _take_starving(self, now: float) -> tuple[str, Job] | None:
        """Arrival-order head older than the aging bound, if dispatchable.

        Called under the lock.  Prunes taken/finished heads as it goes;
        returns ``("run", job)`` for a starving runnable job (removed and
        marked taken) or ``("timeout", job)`` when the starving head's
        own deadline expired (caller finishes it outside the lock).
        """
        if self.policy != "cost" or self.age_limit is None:
            return None
        while self._arrivals:
            job = self._arrivals[0]
            if not self._pending(job):
                self._arrivals.popleft()
                continue
            if now - job.enqueued_at < self.age_limit:
                return None  # youngest-possible head is not starving yet
            if job.deadline is not None and now > job.deadline:
                self._arrivals.popleft()
                job.taken = True
                return ("timeout", job)
            if job.not_before is not None and now < job.not_before:
                return None  # parked on retry backoff; cannot jump ahead
            self._arrivals.popleft()
            job.taken = True
            return ("run", job)
        return None

    def pop(self, now: float) -> Job | None:
        """Next runnable job, or None.

        Skips cancelled tombstones, moves queued jobs whose deadline has
        passed (``job.deadline < now``) to ``TIMEOUT``, and leaves jobs
        whose retry backoff (``job.not_before``) has not yet elapsed in
        the queue — everything is assessed lazily, at dispatch time,
        against the injected clock.  Under the cost policy, a job queued
        past ``age_limit`` seconds dispatches first regardless of its
        predicted cost (anti-starvation).
        """
        deferred: list[Job] = []
        try:
            while True:
                with self._lock:
                    starving = self._take_starving(now)
                if starving is not None:
                    verdict, job = starving
                    if verdict == "timeout":
                        if job.handle._finish(JobStatus.TIMEOUT) and \
                                self._on_timeout is not None:
                            self._on_timeout(job)
                        continue
                    return job
                with self._lock:
                    if not self._heap:
                        return None
                    _, _, job = heapq.heappop(self._heap)
                    self._live -= 1
                if job.taken:
                    continue  # already handed out through the aging path
                if job.handle.status is not JobStatus.PENDING:
                    continue  # cancelled (or otherwise finished) while queued
                if job.deadline is not None and now > job.deadline:
                    job.taken = True
                    if job.handle._finish(JobStatus.TIMEOUT) and \
                            self._on_timeout is not None:
                        self._on_timeout(job)
                    continue
                if job.not_before is not None and now < job.not_before:
                    deferred.append(job)  # backoff pending; stays queued
                    continue
                job.taken = True
                return job
        finally:
            if deferred:
                with self._lock:
                    for job in deferred:
                        heapq.heappush(
                            self._heap, (self._key(job), job.seq, job)
                        )
                        self._live += 1

    def drain(self) -> list[Job]:
        """Remove and return every still-pending job, backoff or not.

        Shutdown path: unlike :meth:`pop` this never defers, so waiters
        of a job parked on its retry backoff are released too.
        """
        with self._lock:
            heap, self._heap = self._heap, []
            self._arrivals.clear()
            self._live = 0
        return [job for _, _, job in heap if self._pending(job)]

    def depth(self) -> int:
        """Live (non-tombstoned) queued jobs."""
        with self._lock:
            live = sum(1 for _, _, job in self._heap if self._pending(job))
            self._live = live
            return live

    def predicted_backlog(self) -> float:
        """Summed predicted seconds of every live queued job.

        The admission controller's backlog estimate: how much predicted
        work is already waiting (jobs with no prediction contribute 0).
        """
        with self._lock:
            return sum(
                job.predicted_seconds
                for _, _, job in self._heap
                if self._pending(job)
            )

    def __len__(self) -> int:
        return self.depth()
