"""`repro.service`: an async GPM query service over a worker pool.

SISA-style framing: graph pattern matching as a reusable *service*
surface rather than a one-shot kernel call.  The pieces:

* :class:`GraphRegistry` — register a :class:`~repro.graph.csr.CSRGraph`
  once, reference it by id; workers cache deserialised graphs per process.
* :class:`JobQueue` + dispatcher — bounded priority/FIFO queue with
  deadlines, typed backpressure and crash retries (``repro.service.scheduler``).
* :class:`ResultCache` — LRU over ``(graph fingerprint, canonical pattern,
  config)``, invalidated/delta-patched on graph updates.
* :class:`QueryService` — the facade tying them together, with
  ``stats()`` introspection and process/thread/inline execution modes.

Quickstart::

    from repro.service import QueryService

    with QueryService(mode="process") as svc:
        gid = svc.register_graph(graph)
        handles = [svc.submit(gid, p, engine="batched") for p in patterns]
        reports = [h.result() for h in handles]
        print(svc.stats().summary())
"""

from ..sched.adaptive import AdmissionPolicy, SchedulingConfig
from .cache import CacheKey, ResultCache, pattern_cache_key
from .job import Job, JobHandle, JobStatus
from .registry import GraphRecord, GraphRegistry
from .scheduler import JobQueue, RetryPolicy
from .service import MODES, InlineExecutor, QueryService
from .stats import LatencyRecorder, ServiceStats

__all__ = [
    "AdmissionPolicy",
    "CacheKey",
    "GraphRecord",
    "GraphRegistry",
    "InlineExecutor",
    "Job",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "LatencyRecorder",
    "MODES",
    "QueryService",
    "ResultCache",
    "RetryPolicy",
    "SchedulingConfig",
    "ServiceStats",
    "pattern_cache_key",
]
