"""Result cache: LRU over ``(graph fingerprint, pattern, config)`` keys.

The pattern component is *canonical* — isomorphic patterns (same structure
and labels, any vertex numbering or name) map to the same key, so a query
for a hand-built triangle hits the entry cached for ``PATTERNS["3CF"]``.
The config component is :meth:`SystemConfig.cache_key`, because a cached
:class:`SimReport` carries timing numbers that depend on every knob, not
just the count-relevant ones.

Eviction is LRU with a fixed capacity; ``invalidate_fingerprint`` removes
(and returns) every entry of a graph that changed, which is how edge
updates through :class:`~repro.core.incremental.IncrementalGPM` are wired
to the cache (the returned entries let the service delta-patch counts for
the new fingerprint instead of recomputing from scratch).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache
from itertools import permutations
from typing import TYPE_CHECKING, NamedTuple

from ..patterns.plan import DEFAULT_INDUCED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..patterns.pattern import Pattern
    from ..sim.report import SimReport

__all__ = ["CacheKey", "ResultCache", "pattern_cache_key"]


class CacheKey(NamedTuple):
    """One result-cache key; a plain tuple so it pickles and hashes."""

    fingerprint: str
    pattern_key: tuple
    config_key: tuple
    #: ``(lo, hi)`` when the query was restricted to a root-vertex range
    #: (cluster shard subqueries); None for whole-graph queries.  Part of
    #: the key because a root-restricted count is a different result.
    root_key: "tuple[int, int] | None" = None

    def with_fingerprint(self, fingerprint: str) -> "CacheKey":
        """The same query keyed against an updated graph snapshot."""
        return self._replace(fingerprint=fingerprint)


@lru_cache(maxsize=256)
def _canonical_form(
    num_vertices: int,
    edges: tuple[tuple[int, int], ...],
    labels: tuple[int, ...] | None,
) -> tuple:
    """Lexicographically minimal (edge set, labels) over all relabelings.

    Patterns are tiny (≤ ~8 vertices) so brute-force permutation search is
    exact and cheap, mirroring ``motif_patterns``'s canonicalisation.
    """
    best = None
    for perm in permutations(range(num_vertices)):
        relabeled_edges = tuple(sorted(
            (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in edges
        ))
        relabeled_labels = None
        if labels is not None:
            out = [0] * num_vertices
            for v, lab in enumerate(labels):
                out[perm[v]] = lab
            relabeled_labels = tuple(out)
        candidate = (relabeled_edges, relabeled_labels)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return (num_vertices,) + best


def pattern_cache_key(pattern: "Pattern", induced: bool | None) -> tuple:
    """Canonical, name-independent cache key for one query pattern.

    ``induced=None`` is resolved to the per-pattern default *before*
    keying, exactly as :func:`~repro.patterns.plan.build_plan` resolves
    it — the key must reflect the plan that actually runs, or a
    ``submit(..., induced=None)`` on a :data:`DEFAULT_INDUCED` pattern
    would share an entry with ``induced=False`` and return wrong counts.
    """
    if induced is None:
        induced = pattern.name in DEFAULT_INDUCED
    return _canonical_form(
        pattern.num_vertices, tuple(pattern.edge_list), pattern.labels
    ) + (bool(induced),)


class ResultCache:
    """Bounded LRU mapping :class:`CacheKey` → :class:`SimReport`."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = max(int(capacity), 1)
        self._entries: "OrderedDict[CacheKey, SimReport]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: CacheKey) -> "SimReport | None":
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return report

    def put(self, key: CacheKey, report: "SimReport") -> None:
        with self._lock:
            self._entries[key] = report
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_fingerprint(
        self, fingerprint: str
    ) -> list[tuple[CacheKey, "SimReport"]]:
        """Drop every entry of one graph snapshot; returns what was dropped."""
        with self._lock:
            dead = [k for k in self._entries if k.fingerprint == fingerprint]
            dropped = [(k, self._entries.pop(k)) for k in dead]
            self.invalidations += len(dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
