"""The graph registry: load once, ship to workers by id.

Graphs are registered with the service once and referenced by id in every
job, so a 16-job batch on one graph serialises the CSR arrays a single
time (``GraphRecord.payload`` caches the pickled bytes) and each pool
worker deserialises them at most once per fingerprint (see
:mod:`repro.service.worker`).  ``update`` swaps in a new snapshot of a
dynamic graph under the same id; the fingerprint change is what
invalidates cached results.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field

from ..errors import ServiceError
from ..graph.csr import CSRGraph

__all__ = ["GraphRecord", "GraphRegistry"]


@dataclass
class GraphRecord:
    """One registered graph plus its derived shipping artifacts."""

    graph_id: str
    graph: CSRGraph
    fingerprint: str
    #: monotonically increasing per-id version (bumped by ``update``)
    version: int = 1
    _payload: bytes | None = field(default=None, repr=False)

    @property
    def payload(self) -> bytes:
        """Pickled graph bytes, serialised once and reused per job."""
        if self._payload is None:
            self._payload = pickle.dumps(self.graph, protocol=-1)
        return self._payload


class GraphRegistry:
    """Thread-safe id → :class:`GraphRecord` mapping."""

    def __init__(self) -> None:
        self._records: dict[str, GraphRecord] = {}
        self._lock = threading.Lock()

    def register(self, graph: CSRGraph, graph_id: str | None = None) -> str:
        """Register ``graph``; returns its id (defaults to ``graph.name``).

        Re-registering the identical graph under the same id is a no-op;
        registering a *different* graph under a taken id raises — use
        :meth:`update` to replace a graph deliberately.
        """
        gid = graph_id or graph.name
        fingerprint = graph.fingerprint()
        with self._lock:
            existing = self._records.get(gid)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return gid
                raise ServiceError(
                    f"graph id {gid!r} already registered with different "
                    f"content; use update_graph() to replace it"
                )
            self._records[gid] = GraphRecord(
                graph_id=gid, graph=graph, fingerprint=fingerprint
            )
        return gid

    def get(self, graph_id: str) -> GraphRecord:
        with self._lock:
            record = self._records.get(graph_id)
            # snapshot the keys for the error while still holding the
            # lock — iterating the live dict outside it can race a
            # register/unregister and raise RuntimeError instead
            known = None if record is not None else sorted(self._records)
        if record is None:
            raise ServiceError(
                f"unknown graph id {graph_id!r}; registered: "
                f"{', '.join(known) or '<none>'}"
            )
        return record

    def update(self, graph_id: str, graph: CSRGraph) -> tuple[str, str]:
        """Replace the graph behind ``graph_id``; returns (old, new) prints.

        The caller (the service) is responsible for invalidating cache
        entries keyed on the old fingerprint.
        """
        fingerprint = graph.fingerprint()
        with self._lock:
            record = self._records.get(graph_id)
            if record is None:
                raise ServiceError(f"unknown graph id {graph_id!r}")
            old = record.fingerprint
            self._records[graph_id] = GraphRecord(
                graph_id=graph_id,
                graph=graph,
                fingerprint=fingerprint,
                version=record.version + 1,
            )
        return old, fingerprint

    def unregister(self, graph_id: str) -> None:
        with self._lock:
            self._records.pop(graph_id, None)

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._records))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, graph_id: str) -> bool:
        with self._lock:
            return graph_id in self._records
