"""The graph registry: load once, ship to workers by reference.

Graphs are registered with the service once and referenced by id in every
job.  *How* a graph reaches a worker depends on the pool mode, and every
shipping artifact is built lazily on first use:

* **thread / inline pools** share the dispatcher's address space, so the
  live :class:`CSRGraph` object ships directly — nothing is ever pickled
  or copied for them.
* **process pools** ship a :class:`~repro.graph.store.SharedGraphRef`:
  on the first process-pool dispatch the record copies the CSR arrays into
  one :mod:`multiprocessing.shared_memory` segment (keyed by
  ``CSRGraph.fingerprint()``), and every worker process then attaches
  zero-copy instead of unpickling its own replica.  When shared memory is
  unavailable (or ``REPRO_DISABLE_SHM`` is set) the record falls back to
  pickling the graph once and shipping the bytes, which workers
  deserialise at most once per fingerprint (see
  :mod:`repro.service.worker`).

Segment lifecycle: :meth:`GraphRecord.release` unlinks — called by
:meth:`GraphRegistry.unregister` and :meth:`GraphRegistry.close` (which
``QueryService.shutdown`` invokes).  :meth:`GraphRegistry.update` swaps in
a new snapshot under the same id; the *old* record may still be pinned by
queued jobs, so its segment is unlinked by a ``weakref.finalize`` hook as
soon as the last job drops it (and at interpreter exit at the latest).
The fingerprint change on update is what invalidates cached results.
"""

from __future__ import annotations

import pickle
import threading
import weakref
from dataclasses import dataclass, field

from ..errors import ServiceError
from ..graph.csr import CSRGraph
from ..graph.store import GraphSegment, share_graph, shm_available

__all__ = ["GraphRecord", "GraphRegistry"]


@dataclass
class GraphRecord:
    """One registered graph plus its lazily built shipping artifacts."""

    graph_id: str
    graph: CSRGraph
    fingerprint: str
    #: monotonically increasing per-id version (bumped by ``update``)
    version: int = 1
    _payload: bytes | None = field(default=None, repr=False)
    _segment: "GraphSegment | None" = field(default=None, repr=False)
    #: True once segment creation failed — don't retry every dispatch
    _segment_failed: bool = field(default=False, repr=False)
    _finalizer: "weakref.finalize | None" = field(default=None, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    @property
    def payload(self) -> bytes:
        """Pickled graph bytes, serialised once and reused per job."""
        with self._lock:
            if self._payload is None:
                self._payload = pickle.dumps(self.graph, protocol=-1)
            return self._payload

    @property
    def shared(self) -> bool:
        """True while this record owns a live shared-memory segment."""
        with self._lock:
            return self._segment is not None

    def ship(self, mode: str):
        """The payload one dispatch of this graph sends to a ``mode`` pool.

        Thread/inline pools get the live object (zero copies, nothing is
        pickled for them — ever).  Process pools get a shared-memory
        reference, created on the first process-pool ship; the pickle
        fallback covers platforms/graphs where the segment cannot be
        built.
        """
        if mode != "process":
            return self.graph
        with self._lock:
            if self._segment is not None:
                return self._segment.ref
            if not self._segment_failed and shm_available():
                try:
                    segment = share_graph(self.graph)
                except Exception:
                    self._segment_failed = True
                else:
                    self._segment = segment
                    # belt and braces: if release() is never called (the
                    # record was replaced by update() while jobs still
                    # pinned it), unlink when the record is collected —
                    # weakref.finalize also runs at interpreter exit
                    self._finalizer = weakref.finalize(
                        self, segment.unlink
                    )
                    return segment.ref
            if self._payload is None:
                self._payload = pickle.dumps(self.graph, protocol=-1)
            return self._payload

    def release(self) -> None:
        """Unlink the shared segment (idempotent; pickle bytes stay)."""
        with self._lock:
            segment, self._segment = self._segment, None
            finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if segment is not None:
            segment.unlink()


class GraphRegistry:
    """Thread-safe id → :class:`GraphRecord` mapping."""

    def __init__(self) -> None:
        self._records: dict[str, GraphRecord] = {}
        #: weak refs to records replaced by :meth:`update` whose segments
        #: may still be pinned by queued jobs.  Weak so the per-record GC
        #: finalizer still unlinks as soon as the last job drops one, but
        #: kept so :meth:`close` can unlink survivors deterministically —
        #: without this, a graph updated (or sharded by the cluster layer)
        #: and then unregistered mid-query would leave its retired segment
        #: in /dev/shm until interpreter exit.
        self._retired: list["weakref.ref[GraphRecord]"] = []
        self._lock = threading.Lock()

    def register(self, graph: CSRGraph, graph_id: str | None = None) -> str:
        """Register ``graph``; returns its id (defaults to ``graph.name``).

        Re-registering the identical graph under the same id is a no-op;
        registering a *different* graph under a taken id raises — use
        :meth:`update` to replace a graph deliberately.
        """
        gid = graph_id or graph.name
        fingerprint = graph.fingerprint()
        with self._lock:
            existing = self._records.get(gid)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return gid
                raise ServiceError(
                    f"graph id {gid!r} already registered with different "
                    f"content; use update_graph() to replace it"
                )
            self._records[gid] = GraphRecord(
                graph_id=gid, graph=graph, fingerprint=fingerprint
            )
        return gid

    def get(self, graph_id: str) -> GraphRecord:
        with self._lock:
            record = self._records.get(graph_id)
            # snapshot the keys for the error while still holding the
            # lock — iterating the live dict outside it can race a
            # register/unregister and raise RuntimeError instead
            known = None if record is not None else sorted(self._records)
        if record is None:
            raise ServiceError(
                f"unknown graph id {graph_id!r}; registered: "
                f"{', '.join(known) or '<none>'}"
            )
        return record

    def update(self, graph_id: str, graph: CSRGraph) -> tuple[str, str]:
        """Replace the graph behind ``graph_id``; returns (old, new) prints.

        The caller (the service) is responsible for invalidating cache
        entries keyed on the old fingerprint.  The old record's segment is
        *not* unlinked here — queued jobs pinned the record at submit time
        and may still attach; its finalizer unlinks once they are done.
        """
        fingerprint = graph.fingerprint()
        with self._lock:
            record = self._records.get(graph_id)
            if record is None:
                raise ServiceError(f"unknown graph id {graph_id!r}")
            old = record.fingerprint
            self._retired = [r for r in self._retired if r() is not None]
            self._retired.append(weakref.ref(record))
            self._records[graph_id] = GraphRecord(
                graph_id=graph_id,
                graph=graph,
                fingerprint=fingerprint,
                version=record.version + 1,
            )
        return old, fingerprint

    def unregister(self, graph_id: str) -> None:
        """Drop ``graph_id`` and unlink its shared segment, if any."""
        with self._lock:
            record = self._records.pop(graph_id, None)
        if record is not None:
            record.release()

    def close(self) -> None:
        """Unlink every live segment (service shutdown); keeps the records.

        Retired records (replaced by :meth:`update`) are released too:
        shutdown means no queued job will ever attach again, so waiting on
        their finalizers would only delay the /dev/shm unlink.
        """
        with self._lock:
            records = list(self._records.values())
            retired_refs, self._retired = self._retired, []
        retired = [r for ref in retired_refs if (r := ref()) is not None]
        for record in records + retired:
            record.release()

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._records))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, graph_id: str) -> bool:
        with self._lock:
            return graph_id in self._records
