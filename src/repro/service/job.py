"""Job records and the user-facing :class:`JobHandle`.

A job is one ``graph_id × pattern × config`` query.  Submitting returns a
:class:`JobHandle` immediately; the handle is a future-like object with
status, a blocking ``result()``, and best-effort ``cancel()``.  The
internal :class:`Job` record carries the scheduling bookkeeping (priority,
deadline, attempt count) and never leaves the service.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import JobCancelledError, JobTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SystemConfig
    from ..patterns.plan import MatchingPlan
    from ..sim.report import SimReport

__all__ = ["JobStatus", "JobHandle", "Job"]


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      # queued, not yet dispatched
    RUNNING = "running"      # handed to a pool worker
    DONE = "done"            # result available (possibly from cache)
    FAILED = "failed"        # raised, retries exhausted
    CANCELLED = "cancelled"  # cancelled while queued
    TIMEOUT = "timeout"      # deadline expired (queued, or running under
                             # the resilience watchdog)

    @property
    def terminal(self) -> bool:
        return self not in (JobStatus.PENDING, JobStatus.RUNNING)


class JobHandle:
    """Future-like view of one submitted query."""

    def __init__(self, job_id: int, graph_id: str, pattern_name: str,
                 engine: str, cancel_cb: Callable[["JobHandle"], bool]):
        self.job_id = job_id
        self.graph_id = graph_id
        self.pattern_name = pattern_name
        self.engine = engine
        #: True when the result was served from the result cache
        self.from_cache = False
        #: worker attempts made (0 for cache hits, >1 after crash retries)
        self.attempts = 0
        self._status = JobStatus.PENDING
        self._report: "SimReport | None" = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._cancel_cb = cancel_cb

    # -- state transitions (service-internal) ------------------------------

    def _set_running(self) -> None:
        with self._lock:
            if not self._status.terminal:
                self._status = JobStatus.RUNNING

    def _requeue(self) -> None:
        with self._lock:
            if not self._status.terminal:
                self._status = JobStatus.PENDING

    def _finish(self, status: JobStatus,
                report: "SimReport | None" = None,
                error: BaseException | None = None) -> bool:
        """Move to a terminal state; returns False if already terminal."""
        with self._lock:
            if self._status.terminal:
                return False
            self._status = status
            self._report = report
            self._error = error
        self._done.set()
        return True

    def _finish_if(self, expected: JobStatus, status: JobStatus,
                   error: BaseException | None = None) -> bool:
        """Atomic ``expected`` → terminal ``status`` transition.

        Unlike :meth:`_finish`, refuses unless the handle is *exactly* in
        ``expected`` — the check and the transition happen under one lock
        acquisition, so a job racing from PENDING to RUNNING cannot be
        cancelled out from under a live worker.
        """
        with self._lock:
            if self._status is not expected:
                return False
            self._status = status
            self._error = error
        self._done.set()
        return True

    # -- user API ----------------------------------------------------------

    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self) -> bool:
        """Cancel if still queued.  Running jobs cannot be interrupted."""
        return self._cancel_cb(self)

    def exception(self) -> BaseException | None:
        """The failure, if the job reached a non-DONE terminal state."""
        self._done.wait()
        return self._error

    def result(self, timeout: float | None = None) -> "SimReport":
        """Block for the report; raise the job's failure if it has one.

        ``timeout`` bounds only this wait (raising
        :class:`~repro.errors.JobTimeoutError` on expiry) — it is
        independent of the job's own deadline.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id} ({self.pattern_name} on "
                f"{self.graph_id}) not finished within {timeout}s"
            )
        status = self.status
        if status is JobStatus.DONE:
            assert self._report is not None
            return self._report
        if status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if status is JobStatus.TIMEOUT:
            raise JobTimeoutError(
                f"job {self.job_id} deadline expired before it finished"
            )
        assert self._error is not None
        raise self._error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle(id={self.job_id}, {self.pattern_name} on "
            f"{self.graph_id!r}, {self.status.value})"
        )


@dataclass
class Job:
    """Internal scheduling record for one query (never leaves the service)."""

    handle: JobHandle
    graph_id: str
    fingerprint: str
    plan: "MatchingPlan"
    config: "SystemConfig"
    cache_key: Any
    priority: int = 0
    seq: int = 0
    #: absolute deadline on the service clock, or None
    deadline: float | None = None
    #: earliest dispatch time on the service clock (crash-retry backoff)
    not_before: float | None = None
    attempts: int = 0
    #: wall-clock dispatch timestamp of the current attempt
    dispatched_at: float = field(default=0.0)
    #: registry record pinned at submit time (graph + payload snapshot)
    record: Any = None
    #: open ``service.job`` span when the service is traced (else None)
    span: Any = None
    #: open ``service.queued`` child span (closed at first dispatch)
    queued_span: Any = None
    #: half-open root-vertex range ``[lo, hi)`` restricting the search to
    #: embeddings rooted there (cluster shard subqueries); None = all roots
    root_range: "tuple[int, int] | None" = None
    #: original engine when a breaker / crash-exhaustion rerouted the job
    rerouted_from: str | None = None
    #: cross-check engine sampled for this job (resilience layer)
    verify_engine: str | None = None
    #: fault specs assigned by the armed plan for the current attempt
    faults: Any = None
    #: predicted wall seconds from the cost model (0.0 = no prediction)
    predicted_seconds: float = 0.0
    #: query feature vector used for the prediction (trains the predictor
    #: when the job completes); None when the adaptive layer is off
    features: Any = None
    #: service-clock timestamp of the most recent queue push (queue-wait
    #: accounting and the cost policy's anti-starvation aging bound)
    enqueued_at: float = 0.0
    #: queue-internal: True once pop() handed the job out — the heap and
    #: the aging deque cross-reference each other through this flag
    taken: bool = False

    def sort_key(self) -> tuple[int, int]:
        """FIFO heap order: lower priority value first, then submit order."""
        return (self.priority, self.seq)

    def cost_key(self) -> tuple[int, float, int]:
        """Cost heap order: priority, then shortest predicted job, then
        submit order — identical predictions degrade to FIFO."""
        return (self.priority, self.predicted_seconds, self.seq)
