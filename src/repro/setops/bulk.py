"""Bulk (frontier-at-a-time) set-operation kernels.

The per-task kernels in :mod:`repro.setops.reference` intersect one pair of
sorted sets; these kernels process *thousands of tasks in one NumPy call*,
which is what makes the ``batched`` execution engine fast.  The key
representation is the packed edge-key array: an undirected CSR graph whose
rows are sorted yields ``u * n + v`` keys that are globally sorted, so any
batch of adjacency queries becomes one ``searchsorted`` — a bulk
intersection/difference is then a boolean mask over a gathered candidate
frontier (the set-centric formulation SISA builds its ISA around).

All kernels are pure functions of their inputs: no graph mutation, no
timing.  The temporal layer charges cycles for them separately.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "edge_keys",
    "bulk_membership",
    "bulk_adjacency",
    "packed_adjacency",
    "bulk_adjacency_bits",
    "gather_rows",
]

#: largest vertex count for which a packed adjacency bitset is built
#: (V * V / 8 bytes — 32 MB at the limit); beyond it adjacency queries
#: fall back to binary search over the edge-key array
PACKED_ADJ_MAX_VERTICES = 16384


def edge_keys(graph: CSRGraph) -> np.ndarray:
    """Sorted ``u * n + v`` key per directed CSR edge (one bulk probe set)."""
    n = np.int64(graph.num_vertices)
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
    )
    return src * n + graph.indices.astype(np.int64)


def bulk_membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask: is each ``needles[i]`` present in sorted ``haystack``?"""
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.size, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    hit = pos < haystack.size
    pos[~hit] = 0  # clamp in place: out-of-range probes re-checked below
    hit &= haystack[pos] == needles
    return hit


def bulk_adjacency(
    keys: np.ndarray,
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Boolean mask: is there an edge ``(u[i], v[i])``?

    ``keys`` must come from :func:`edge_keys` of the same graph.
    """
    # one fused multiply into an int64 probe array, then add in place —
    # avoids two astype copies on the (large) u/v operands
    probe = np.multiply(u, np.int64(num_vertices), dtype=np.int64)
    probe += v
    return bulk_membership(keys, probe)


def packed_adjacency(
    graph: CSRGraph, max_vertices: int = PACKED_ADJ_MAX_VERTICES
) -> np.ndarray | None:
    """Bit-packed adjacency matrix, or ``None`` if the graph is too large.

    Row ``u``, bit ``v`` (little-endian within each byte) says whether the
    edge ``(u, v)`` exists.  One byte gather plus a shift answers an
    adjacency query — far cheaper than the ``O(log E)`` probe of
    :func:`bulk_adjacency` — at ``V²/8`` bytes of memory.
    """
    n = graph.num_vertices
    if n == 0 or n > max_vertices:
        return None
    bits = np.zeros((n, (n + 7) // 8), dtype=np.uint8)
    # pack in row chunks so the dense staging buffer stays small
    chunk = max(1, (1 << 22) // max(n, 1))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        dense = np.zeros((hi - lo, n), dtype=bool)
        span = slice(graph.indptr[lo], graph.indptr[hi])
        rows = np.repeat(
            np.arange(lo, hi, dtype=np.int64),
            graph.degrees[lo:hi],
        )
        dense[rows - lo, graph.indices[span]] = True
        bits[lo:hi] = np.packbits(dense, axis=1, bitorder="little")
    return bits


def bulk_adjacency_bits(
    bits: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Boolean mask for edges ``(u[i], v[i])`` via a packed bitset."""
    sub = v & 7
    byte = bits[u, v >> 3]
    return (byte >> sub) & 1 != 0


def gather_rows(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the neighbour rows of ``vertices`` in one gather.

    Returns ``(values, owner)`` where ``values`` is the concatenation of
    ``graph.neighbors(vertices[i])`` for each ``i`` in order and
    ``owner[j]`` is the index ``i`` whose row produced ``values[j]``.
    This is the grouped neighbour gather every frontier expansion starts
    from.
    """
    vertices = np.asarray(vertices)
    deg = graph.degrees[vertices]
    total = int(deg.sum())
    owner = np.repeat(np.arange(vertices.size, dtype=np.int64), deg)
    if total == 0:
        return graph.indices[:0], owner
    # each output element's CSR position is its running index shifted by
    # (row start − row output offset), one repeat instead of two
    offsets = np.zeros(vertices.size, dtype=np.int64)
    np.cumsum(deg[:-1], out=offsets[1:])
    pos = np.arange(total, dtype=np.int64)
    pos += np.repeat(graph.indptr[vertices] - offsets, deg)
    return graph.indices[pos], owner
