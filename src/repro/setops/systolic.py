"""Behavioural model of the Systolic Merge Array SIU (DIMMining, Figure 2b).

The SMA streams N-element segments of both inputs through an N×N comparator
array performing an exhaustive all-to-all comparison — N elements per cycle
of throughput, but O(N) fill latency, an N-deep compact triangle on the way
out, and N² comparators of area.  The paper's Table 1 and Figure 15 contrast
exactly these characteristics against the order-aware design.

The model is behavioural: results are computed exactly at the word level
(the SMA produces correct intersections; it is the *cost* that differs),
while the cycle counters replay the systolic advance pattern — one segment
step per cycle with ``N²`` comparisons each, plus ``2N`` pipeline depth for
array fill and the output compact triangle.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import bitmapcsr
from .trace import SetOpTrace

__all__ = ["SystolicMergeArray"]


class SystolicMergeArray:
    """N-wide systolic merge array with all-to-all segment comparison."""

    def __init__(self, segment_width: int = 8, bitmap_width: int = 0) -> None:
        if segment_width < 2 or segment_width & (segment_width - 1):
            raise ConfigError("segment_width must be a power of two >= 2")
        self.segment_width = segment_width
        self.bitmap_width = bitmap_width

    @property
    def pipeline_depth(self) -> int:
        """Array fill (N) plus the output compact triangle (N)."""
        return 2 * self.segment_width

    @property
    def comparator_count(self) -> int:
        """All-to-all comparison requires N² comparators (paper Table 1)."""
        return self.segment_width**2

    @property
    def compact_resource(self) -> int:
        """The compact triangle costs a further N²/2 latches (paper §5.4.2)."""
        return self.segment_width**2 // 2

    def _keys(self, words: np.ndarray) -> np.ndarray:
        b = self.bitmap_width
        w = np.asarray(words, dtype=np.int64)
        return w >> b if b else w

    def run(
        self, a_words: np.ndarray, b_words: np.ndarray, op: str = "intersect"
    ) -> SetOpTrace:
        if op not in ("intersect", "difference"):
            raise ConfigError(f"unsupported op {op!r}")
        n = self.segment_width
        a = np.asarray(a_words, dtype=np.int64)
        b = np.asarray(b_words, dtype=np.int64)
        trace = SetOpTrace()
        trace.words_consumed = int(a.size + b.size)

        # Functional result (exact, word level).
        if op == "intersect":
            result = bitmapcsr.intersect_words(a, b, self.bitmap_width)
        else:
            result = bitmapcsr.difference_words(a, b, self.bitmap_width)

        # Cycle accounting: replay the systolic advance pattern.  One
        # segment enters the array per cycle (bus width N) with an
        # exhaustive N² comparison against the resident segment of the
        # other stream; every segment overlapping the other stream's key
        # range must enter before its matches are complete.
        ka, kb = self._keys(a), self._keys(b)
        if ka.size and kb.size:
            lim = min(int(ka[-1]), int(kb[-1]))
            i_lim = int(np.searchsorted(ka, lim, side="right"))
            j_lim = int(np.searchsorted(kb, lim, side="right"))
        else:
            i_lim = j_lim = 0
        i = j = 0
        while i < i_lim or j < j_lim:
            trace.issue_cycles += 1
            trace.comparisons += n * n
            a_active = i < i_lim
            b_active = j < j_lim
            if a_active and b_active:
                max_a = int(ka[min(i + n, ka.size) - 1])
                max_b = int(kb[min(j + n, kb.size) - 1])
                if max_a <= max_b:
                    i += n
                else:
                    j += n
            elif a_active:
                i += n
            else:
                j += n
        if ka.size and kb.size:
            trace.issue_cycles = max(trace.issue_cycles, 1)
        if op == "difference" and i_lim < ka.size:
            remaining = ka.size - i_lim
            trace.issue_cycles += (remaining + n - 1) // n

        trace.pipeline_depth = self.pipeline_depth
        trace.cycles = trace.issue_cycles + self.pipeline_depth
        trace.result = np.asarray(result, dtype=np.int64)
        trace.words_produced = int(trace.result.size)
        trace.result_count = bitmapcsr.count_vertices(
            trace.result, self.bitmap_width
        )
        return trace
