"""Exact model of the simple merge-queue SIU (paper Figure 2a).

This is the design FlexMiner, FINGERS and NDMiner build on: a single
comparator walks two sorted streams one comparison per cycle — minimal area
and O(1) latency, but one-element-per-cycle throughput.  BitmapCSR support
follows the same pattern as X-SET's merge stage (index compare + bitmap
combine), which is how the paper configures all SIUs for fair comparison.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .trace import SetOpTrace

__all__ = ["MergeQueuePipeline"]


class MergeQueuePipeline:
    """One-comparator sequential merge intersection/difference unit."""

    def __init__(self, bitmap_width: int = 0) -> None:
        self.bitmap_width = bitmap_width

    #: pipeline fill latency — a couple of register stages
    pipeline_depth = 2
    #: a single compare unit plus an output mux
    comparator_count = 1

    def _split(self, w: int) -> tuple[int, int]:
        b = self.bitmap_width
        if b:
            return w >> b, w & ((1 << b) - 1)
        return w, 1

    def _pack(self, key: int, bits: int) -> int:
        b = self.bitmap_width
        return (key << b) | bits if b else key

    def run(
        self, a_words: np.ndarray, b_words: np.ndarray, op: str = "intersect"
    ) -> SetOpTrace:
        if op not in ("intersect", "difference"):
            raise ConfigError(f"unsupported op {op!r}")
        a = [int(x) for x in np.asarray(a_words, dtype=np.int64)]
        b = [int(x) for x in np.asarray(b_words, dtype=np.int64)]
        trace = SetOpTrace()
        trace.words_consumed = len(a) + len(b)
        out: list[int] = []
        i = j = 0
        while i < len(a) and j < len(b):
            ka, ba = self._split(a[i])
            kb, bb = self._split(b[j])
            trace.comparisons += 1
            trace.issue_cycles += 1
            if ka == kb:
                bits = ba & bb if op == "intersect" else ba & ~bb
                if bits:
                    trace.result_count += (
                        bits.bit_count() if self.bitmap_width else 1
                    )
                    out.append(self._pack(ka, bits))
                i += 1
                j += 1
            elif ka < kb:
                if op == "difference":
                    trace.result_count += (
                        ba.bit_count() if self.bitmap_width else 1
                    )
                    out.append(a[i])
                i += 1
            else:
                j += 1
        if op == "difference":
            # remaining A elements stream out one per cycle
            while i < len(a):
                ka, ba = self._split(a[i])
                trace.result_count += (
                    ba.bit_count() if self.bitmap_width else 1
                )
                out.append(a[i])
                trace.issue_cycles += 1
                i += 1
        trace.pipeline_depth = self.pipeline_depth
        trace.cycles = trace.issue_cycles + self.pipeline_depth
        trace.result = np.asarray(out, dtype=np.int64)
        trace.words_produced = len(out)
        if self.bitmap_width == 0:
            trace.result_count = len(out)
        return trace
