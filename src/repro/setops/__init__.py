"""Exact functional/cycle models of the set-operation hardware pipelines."""

from .bitonic import OrderAwarePipeline, bitonic_merge_segment, min_stage
from .bulk import (
    bulk_adjacency,
    bulk_adjacency_bits,
    bulk_membership,
    edge_keys,
    gather_rows,
    packed_adjacency,
)
from .merge_queue import MergeQueuePipeline
from .reference import (
    difference_sorted,
    galloping_comparison_count,
    intersect_count,
    intersect_sorted,
    merge_comparison_count,
)
from .systolic import SystolicMergeArray
from .trace import FLAG_L, FLAG_R, INF_KEY, Element, SetOpTrace

__all__ = [
    "FLAG_L",
    "FLAG_R",
    "INF_KEY",
    "Element",
    "MergeQueuePipeline",
    "OrderAwarePipeline",
    "SetOpTrace",
    "SystolicMergeArray",
    "bitonic_merge_segment",
    "bulk_adjacency",
    "bulk_adjacency_bits",
    "bulk_membership",
    "difference_sorted",
    "edge_keys",
    "galloping_comparison_count",
    "gather_rows",
    "intersect_count",
    "intersect_sorted",
    "merge_comparison_count",
    "min_stage",
    "packed_adjacency",
]
