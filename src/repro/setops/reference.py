"""Reference (oracle) implementations of sorted-set operations.

These are the ground truth every hardware model in :mod:`repro.setops` and
:mod:`repro.siu` is validated against.  They operate on sorted NumPy arrays
of vertex IDs (or BitmapCSR words — the algorithms only require sorted,
duplicate-free keys).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intersect_sorted",
    "difference_sorted",
    "intersect_count",
    "merge_comparison_count",
    "galloping_comparison_count",
]


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted duplicate-free arrays via merge path."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return a[:0]
    if a.size > b.size:
        a, b = b, a
    idx = b.searchsorted(a)
    idx_c = np.minimum(idx, b.size - 1)
    return a[(idx < b.size) & (b[idx_c] == a)]


def difference_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Difference ``a - b`` of two sorted duplicate-free arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return a.copy()
    idx = b.searchsorted(a)
    idx_c = np.minimum(idx, b.size - 1)
    return a[~((idx < b.size) & (b[idx_c] == a))]


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` without materialising the intersection."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return 0
    if a.size > b.size:
        a, b = b, a
    idx = b.searchsorted(a)
    idx_c = np.minimum(idx, b.size - 1)
    return int(np.count_nonzero((idx < b.size) & (b[idx_c] == a)))


def merge_comparison_count(len_a: int, len_b: int, len_common: int) -> int:
    """Comparisons a scalar two-pointer merge intersection performs.

    Each step compares the two heads and advances one pointer (both on a
    match), so the count equals the number of steps:
    ``len_a + len_b - len_common`` bounded below by ``min`` side exhaustion.
    This is the dominant operation of CPU GPM systems (GraphPi/GraphSet) and
    of merge-queue SIU hardware, so the CPU baseline cost models reuse it.
    """
    if len_a == 0 or len_b == 0:
        return 0
    return max(len_a + len_b - len_common - 1, min(len_a, len_b))


def galloping_comparison_count(len_small: int, len_big: int) -> int:
    """Comparisons for galloping (binary-probe) intersection.

    Used when one input is much shorter: each of the ``len_small`` elements
    costs ``~log2(len_big)`` probes.  CPU systems switch to this regime for
    skewed input lengths, which the software baseline models replicate.
    """
    import math

    if len_small == 0 or len_big == 0:
        return 0
    return int(len_small * max(1.0, math.log2(len_big + 1)))
