"""Common trace record produced by every exact set-operation pipeline model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SetOpTrace", "Element", "FLAG_L", "FLAG_R", "INF_KEY"]

#: origin flags for the tagged-merge total order (paper §3.1, Insight 1)
FLAG_L = 0  # element of the first input set (A)
FLAG_R = 1  # element of the second input set (B)

#: key used for padding (×) elements — larger than any valid vertex/block id
INF_KEY = 1 << 62


@dataclass
class Element:
    """One datapath element flowing through a hardware pipeline model.

    ``key`` is what comparators see (a vertex ID, or only the block index
    when BitmapCSR is enabled); ``bitmap`` is the payload combined at the
    Merge stage; ``flag`` records the source set; ``match`` is the CAS-stage
    match flag from the paper's §5.3.2 optimisation.
    """

    key: int
    bitmap: int = 1
    flag: int = FLAG_L
    match: bool = False

    @property
    def valid(self) -> bool:
        return self.key != INF_KEY

    def order_key(self) -> tuple[int, int]:
        """Total-order key: ascending value, L before R on ties."""
        return (self.key, self.flag)


@dataclass
class SetOpTrace:
    """Cycle-level accounting for one set operation on one SIU model.

    ``cycles`` is end-to-end latency (issue + pipeline depth); analytic cost
    models in :mod:`repro.siu` are validated against these numbers.
    """

    result: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    cycles: int = 0
    issue_cycles: int = 0
    pipeline_depth: int = 0
    comparisons: int = 0
    words_consumed: int = 0
    words_produced: int = 0
    result_count: int = 0  # vertices represented (≠ words under BitmapCSR)
