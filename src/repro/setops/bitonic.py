"""Exact element-level model of the Order-Aware SIU core pipeline (paper §5).

This module reproduces the hardware dataflow of Figure 9 stage by stage:

* **MIN stage** — extracts the ``N`` smallest elements across the heads of
  the two input streams by comparing ``A_i`` against ``B_{N-i+1}``; the
  output is guaranteed bitonic (§5.3.1).
* **CAS stages** — ``log2 N`` recursive compare-and-swap stages sort the
  bitonic segment with ``N/2`` comparators each, setting the *match flag*
  whenever two compared elements carry equal keys (§5.3.2).
* **Merge stage** — adjacent comparison on the sorted stream resolves
  intersection/difference, combining BitmapCSR bitmaps (AND / AND-NOT) and
  carrying a single boundary register across segments (§5.4.1).
* **Compact stage** — binary-tree reducer that squeezes out empties
  (§5.4.2; modelled as ``log2 N`` extra pipeline depth).

It exists to *anchor* the fast analytic cost model in :mod:`repro.siu`:
property tests assert that results match the reference oracle and that the
analytic cycle counts equal the ones measured here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .trace import FLAG_L, FLAG_R, INF_KEY, Element, SetOpTrace

__all__ = ["OrderAwarePipeline", "bitonic_merge_segment", "min_stage"]


def min_stage(
    window_a: list[Element], window_b: list[Element]
) -> tuple[list[Element], int, int]:
    """One MIN-stage cycle: pick the N smallest of two sorted windows.

    Returns ``(bitonic segment, taken_from_a, comparisons)``.  Both windows
    must have equal length ``N`` (pad with ``INF_KEY`` elements).  The
    selected elements are a prefix of each window because ``A`` ascends while
    the mirrored ``B`` descends — the property that makes the output bitonic.
    """
    n = len(window_a)
    if len(window_b) != n:
        raise ConfigError("MIN stage windows must have equal length")
    out: list[Element] = []
    taken_a = 0
    for i in range(n):
        a = window_a[i]
        b = window_b[n - 1 - i]
        if a.order_key() <= b.order_key():
            out.append(a)
            taken_a += 1
        else:
            out.append(b)
    return out, taken_a, n


def bitonic_merge_segment(segment: list[Element]) -> tuple[list[Element], int]:
    """Sort a bitonic segment with the recursive CAS network.

    Mutates/propagates match flags per the paper's rule
    ``m_i' = m_i ∨ (x_i = x_j)``.  Returns ``(sorted segment, comparisons)``.
    Length must be a power of two.
    """
    seg = list(segment)
    n = len(seg)
    if n & (n - 1):
        raise ConfigError("CAS network length must be a power of two")
    comparisons = 0
    span = n // 2
    while span >= 1:
        for block in range(0, n, span * 2):
            for i in range(block, block + span):
                j = i + span
                x, y = seg[i], seg[j]
                comparisons += 1
                if x.key == y.key and x.valid:
                    x.match = True
                    y.match = True
                if x.order_key() > y.order_key():
                    seg[i], seg[j] = y, x
        span //= 2
    return seg, comparisons


@dataclass
class _Stream:
    """A consumable sorted input stream with INF padding."""

    elements: list[Element]
    pos: int = 0

    def window(self, n: int) -> list[Element]:
        out = self.elements[self.pos : self.pos + n]
        while len(out) < n:
            out = out + [Element(key=INF_KEY, bitmap=0, flag=out[0].flag
                                 if out else FLAG_L)]
        return out

    def consume(self, k: int) -> None:
        self.pos = min(self.pos + k, len(self.elements))

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.elements)


class OrderAwarePipeline:
    """Exact cycle-by-cycle model of one Order-Aware SIU core pipeline.

    Parameters
    ----------
    segment_width:
        ``N`` — elements processed per cycle (power of two; the paper uses
        8 to match the DRAM access granularity).
    bitmap_width:
        BitmapCSR ``b``; 0 means plain CSR and the element bitmap degrades
        to a 1-bit presence flag.
    """

    def __init__(self, segment_width: int = 8, bitmap_width: int = 0) -> None:
        if segment_width < 2 or segment_width & (segment_width - 1):
            raise ConfigError("segment_width must be a power of two >= 2")
        self.segment_width = segment_width
        self.bitmap_width = bitmap_width
        self.log_n = int(math.log2(segment_width))

    # -- hardware inventory -------------------------------------------------

    @property
    def pipeline_depth(self) -> int:
        """MIN (1) + CAS (log N) + Merge (1) + Compact (log N) stages."""
        return 2 + 2 * self.log_n

    @property
    def comparator_count(self) -> int:
        """Comparators instantiated: N (MIN) + N/2·logN (CAS) + 1 (boundary)."""
        n = self.segment_width
        return n + (n // 2) * self.log_n + 1

    # -- helpers --------------------------------------------------------------

    def _to_elements(self, words: np.ndarray, flag: int) -> list[Element]:
        b = self.bitmap_width
        out = []
        for w in np.asarray(words, dtype=np.int64):
            w = int(w)
            if b:
                out.append(Element(key=w >> b, bitmap=w & ((1 << b) - 1),
                                   flag=flag))
            else:
                out.append(Element(key=w, bitmap=1, flag=flag))
        return out

    def _emit(self, key: int, bitmap: int, out: list[int]) -> int:
        """Append a result word; returns the vertex count it represents."""
        b = self.bitmap_width
        if b:
            out.append((key << b) | bitmap)
            return bitmap.bit_count()
        out.append(key)
        return 1

    # -- main entry ----------------------------------------------------------

    def run(
        self, a_words: np.ndarray, b_words: np.ndarray, op: str = "intersect"
    ) -> SetOpTrace:
        """Process ``op`` ∈ {intersect, difference} over two sorted streams."""
        if op not in ("intersect", "difference"):
            raise ConfigError(f"unsupported op {op!r}")
        n = self.segment_width
        stream_a = _Stream(self._to_elements(a_words, FLAG_L))
        stream_b = _Stream(self._to_elements(b_words, FLAG_R))
        trace = SetOpTrace()
        trace.words_consumed = len(stream_a.elements) + len(stream_b.elements)
        out_words: list[int] = []
        pending: Element | None = None

        def resolve(prev: Element, cur: Element | None) -> None:
            """Merge-stage decision for ``prev`` given its successor."""
            nonlocal pending
            matched = (
                cur is not None
                and prev.key == cur.key
                and prev.flag != cur.flag
            )
            if matched:
                assert cur is not None
                if op == "intersect":
                    bits = prev.bitmap & cur.bitmap
                    if bits:
                        trace.result_count += self._emit(prev.key, bits,
                                                         out_words)
                else:  # difference A - B; prev is the L element of the pair
                    left, right = (prev, cur) if prev.flag == FLAG_L else (
                        cur, prev)
                    bits = left.bitmap & ~right.bitmap
                    if bits:
                        trace.result_count += self._emit(left.key, bits,
                                                         out_words)
                pending = None
            else:
                if op == "difference" and prev.flag == FLAG_L:
                    trace.result_count += self._emit(prev.key, prev.bitmap,
                                                     out_words)
                pending = cur

        # Intersection can stop as soon as either stream exhausts (nothing
        # left can match); difference must drain all of A but can stop
        # consuming B once A is done.
        def active() -> bool:
            if op == "intersect":
                return not (stream_a.exhausted or stream_b.exhausted)
            return not stream_a.exhausted

        while active():
            segment, taken_a, min_cmps = min_stage(
                stream_a.window(n), stream_b.window(n)
            )
            stream_a.consume(taken_a)
            stream_b.consume(n - taken_a)
            segment = [Element(e.key, e.bitmap, e.flag) for e in segment]
            sorted_seg, cas_cmps = bitonic_merge_segment(segment)
            trace.comparisons += min_cmps + cas_cmps
            trace.issue_cycles += 1
            # Merge stage: adjacent resolution with boundary register.
            for elem in sorted_seg:
                if not elem.valid:
                    continue
                if pending is None:
                    pending = elem
                else:
                    resolve(pending, elem)
            trace.comparisons += 1  # boundary register comparison
        if pending is not None:
            # boundary case: the pending element may match the head of the
            # not-yet-exhausted stream (single register comparison, §5.4.1).
            # Consumption order is globally sorted, so the only possible
            # partner is the smallest unconsumed element.
            for stream in (stream_a, stream_b):
                if not stream.exhausted:
                    head = stream.elements[stream.pos]
                    if (head.key == pending.key
                            and head.flag != pending.flag):
                        resolve(pending, head)
                    break
        if pending is not None:
            resolve(pending, None)

        trace.pipeline_depth = self.pipeline_depth
        trace.cycles = trace.issue_cycles + self.pipeline_depth
        trace.result = np.asarray(out_words, dtype=np.int64)
        trace.words_produced = len(out_words)
        if self.bitmap_width == 0:
            trace.result_count = len(out_words)
        return trace
