"""Service health assessment and load-shedding policy.

The service continuously classifies itself into one of three states from
two cheap signals — queue occupancy and breaker states:

``HEALTHY``
    Queue below the degraded watermark, every breaker closed.
``DEGRADED``
    Queue above the degraded watermark *or* at least one engine breaker
    open/half-open (some capacity lost; the service still accepts all
    work).
``OVERLOADED``
    Queue above the overload watermark.  Submissions whose priority is at
    or below the configured floor (numerically ``>= shed_min_priority``;
    higher number = less important) are *shed* with a typed
    :class:`~repro.errors.LoadShedError` before they ever enqueue, so the
    queue drains toward the important work — the service-level analogue
    of the paper's "keep every PE busy with useful work" argument.

The state is recomputed on demand (submit time, ``stats()``, ``health()``)
from a snapshot of the signals; there is no background thread to race.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .breaker import BreakerSnapshot, BreakerState

__all__ = ["HealthState", "DegradationPolicy", "HealthReport", "assess"]


class HealthState(enum.Enum):
    """Service-level condition (values are the exported gauge levels)."""

    HEALTHY = 0
    DEGRADED = 1
    OVERLOADED = 2


@dataclass(frozen=True)
class DegradationPolicy:
    """Watermarks and the shedding floor."""

    #: queue occupancy (fraction of the limit) above which = DEGRADED
    queue_degraded_fraction: float = 0.5
    #: queue occupancy above which = OVERLOADED (shedding kicks in)
    queue_overloaded_fraction: float = 0.9
    #: while OVERLOADED, submissions with ``priority >= this`` are shed
    #: (lower priority value = more important, matching the job queue)
    shed_min_priority: int = 1


def assess(
    queue_depth: int,
    queue_limit: int,
    breaker_states: Iterable["BreakerState"],
    policy: DegradationPolicy,
) -> HealthState:
    """Classify the service from one snapshot of its signals."""
    fraction = queue_depth / queue_limit if queue_limit > 0 else 0.0
    if fraction >= policy.queue_overloaded_fraction:
        return HealthState.OVERLOADED
    if fraction >= policy.queue_degraded_fraction:
        return HealthState.DEGRADED
    if any(state.value != 0 for state in breaker_states):
        return HealthState.DEGRADED
    return HealthState.HEALTHY


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time health snapshot returned by ``QueryService.health()``."""

    state: HealthState
    queue_depth: int
    queue_limit: int
    in_flight: int
    breakers: Mapping[str, "BreakerSnapshot"] = field(default_factory=dict)
    shed: int = 0
    abandoned: int = 0
    rerouted: int = 0
    crosscheck_mismatches: int = 0
    faults_injected: int = 0
    dispatcher_stuck: bool = False

    @property
    def queue_fraction(self) -> float:
        return (
            self.queue_depth / self.queue_limit if self.queue_limit else 0.0
        )

    def summary(self) -> str:
        """Human-readable rendering (used by ``python -m repro health``)."""
        lines = [
            f"health: {self.state.name.lower()}",
            (
                f"queue {self.queue_depth}/{self.queue_limit} "
                f"({self.queue_fraction:.0%}), in flight {self.in_flight}"
            ),
            (
                f"shed {self.shed}, abandoned {self.abandoned}, "
                f"rerouted {self.rerouted}, "
                f"cross-check mismatches {self.crosscheck_mismatches}, "
                f"faults injected {self.faults_injected}"
            ),
        ]
        for engine, snap in sorted(self.breakers.items()):
            reason = (
                f", last failure: {snap.last_failure_reason}"
                if snap.last_failure_reason
                else ""
            )
            lines.append(
                f"breaker[{engine}]: {snap.state} "
                f"({snap.failures} failures / {snap.successes} successes"
                f"{reason})"
            )
        if self.dispatcher_stuck:
            lines.append("WARNING: dispatcher thread failed to join")
        return "\n".join(lines)
