"""The one knob bundle: :class:`ResilienceConfig`.

Everything the resilience layer does is governed by this frozen config,
passed as ``QueryService(resilience=...)``.  The defaults are chosen so
that, absent failures, a default service behaves **byte-identically** to
one without the resilience layer: breakers exist but never trip on a
healthy engine, the watchdog only acts on jobs that carry a deadline and
overrun it, cross-checking is off (``verify_fraction=0``), and no
fallback routes are installed.

:meth:`ResilienceConfig.hardened` returns the fully armed profile used
by the chaos suite, the ``health --chaos`` CLI and the demo: batched
queries fall back to the event engine on a tripped breaker, a fraction
of queries are cross-checked on the second engine, and an open breaker
with no usable fallback fails fast with a typed error.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .degradation import DegradationPolicy

__all__ = ["ResilienceConfig", "DEFAULT_FALLBACKS"]

#: the canonical fallback route: the compiled-kernel engine degrades to
#: the interpreted batched engine, which degrades to the reference
#: event-driven engine (also the cross-check oracle) — codegen→batched→event
DEFAULT_FALLBACKS: tuple[tuple[str, str], ...] = (
    ("codegen", "batched"),
    ("batched", "event"),
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the resilience layer (see module docstring)."""

    #: master switch — False disables breakers, watchdog and shedding
    enabled: bool = True

    # -- circuit breakers --------------------------------------------------
    #: consecutive failures that trip an engine's breaker OPEN
    failure_threshold: int = 3
    #: seconds an OPEN breaker waits before allowing half-open probes
    recovery_seconds: float = 30.0
    #: concurrent trial jobs allowed while HALF_OPEN
    half_open_probes: int = 1
    #: ``(engine, fallback_engine)`` routes used while a breaker is open
    #: and as a last resort when crash retries are exhausted
    fallbacks: tuple[tuple[str, str], ...] = ()
    #: fail jobs fast (CircuitOpenError) when the breaker is open and no
    #: fallback is usable; False = dispatch anyway (advisory breaker)
    fail_fast: bool = False

    # -- sampled cross-checking --------------------------------------------
    #: fraction of jobs re-run on the fallback engine to detect silent
    #: corruption (deterministic per job id; 0.0 = off)
    verify_fraction: float = 0.0
    #: seed of the cross-check sampler
    verify_seed: int = 0

    # -- watchdog ----------------------------------------------------------
    #: enforce job deadlines while *running* (abandon hung jobs)
    enforce_running_deadlines: bool = True
    #: background scan period of the watchdog thread (pool modes)
    watchdog_interval: float = 0.05

    # -- degradation / shedding --------------------------------------------
    degradation: DegradationPolicy = field(
        default_factory=DegradationPolicy
    )

    def fallback_for(self, engine: str) -> str | None:
        """The configured fallback route out of ``engine``, if any."""
        for primary, fallback in self.fallbacks:
            if primary == engine:
                return fallback
        return None

    @classmethod
    def hardened(cls, **overrides) -> "ResilienceConfig":
        """The fully armed profile (fallbacks + cross-check + fail-fast)."""
        cfg = cls(
            fallbacks=DEFAULT_FALLBACKS,
            fail_fast=True,
            verify_fraction=0.25,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def disabled(cls) -> "ResilienceConfig":
        """Everything off — the pre-resilience service behaviour."""
        return cls(enabled=False, enforce_running_deadlines=False)
