"""The watchdog: deadline enforcement for *running* jobs.

The job queue already reaps deadline-expired jobs while they are queued;
before this layer existed, a job that made it onto a worker ran to
completion no matter what — a hung engine call would pin a worker (and
its waiter) forever.  The :class:`Watchdog` closes that gap: the service
registers every dispatched job, a scan walks the table against the
service clock, and any running job past its deadline is *abandoned* —
removed from the table, its future cancelled best-effort, its waiters
finished with ``TIMEOUT`` by the service.

Ownership protocol
------------------
Exactly one party accounts for each running job: the completion callback
calls :meth:`unwatch` and proceeds only when the entry was still present;
:meth:`scan` removes expired entries atomically before handing them back.
Whichever side removes the entry owns the in-flight bookkeeping, so a
result arriving just as the watchdog fires is dropped instead of being
double-counted.

The scan is a plain method (deterministic tests drive it with a fake
clock); the optional background thread just calls it on an interval and
additionally asks the service to replace a broken worker pool.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from ..service.job import Job

__all__ = ["Watchdog"]

logger = logging.getLogger(__name__)

#: seconds between background scans
DEFAULT_INTERVAL = 0.05


class Watchdog:
    """Registry of running jobs + deadline scanning + optional thread."""

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        interval: float = DEFAULT_INTERVAL,
        enforce_deadlines: bool = True,
    ) -> None:
        self._clock = clock
        self.interval = interval
        self.enforce_deadlines = enforce_deadlines
        self._running: dict[int, tuple["Job", "Future | None"]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: jobs abandoned over the watchdog's lifetime
        self.abandoned = 0

    # -- registry ----------------------------------------------------------

    def watch(self, job: "Job") -> None:
        """Register a job about to be handed to a worker.

        Must happen *before* the executor submit so a synchronously
        completing future (inline mode) still finds its entry.
        """
        with self._lock:
            self._running[job.handle.job_id] = (job, None)

    def attach_future(self, job_id: int, future: "Future") -> None:
        """Record the worker future (no-op if the job already finished)."""
        with self._lock:
            entry = self._running.get(job_id)
            if entry is not None:
                self._running[job_id] = (entry[0], future)

    def unwatch(self, job_id: int) -> bool:
        """Completion-side claim: True iff the entry was still present."""
        with self._lock:
            return self._running.pop(job_id, None) is not None

    def running_ids(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._running))

    def __len__(self) -> int:
        with self._lock:
            return len(self._running)

    # -- scanning ----------------------------------------------------------

    def scan(self) -> list[tuple["Job", "Future | None"]]:
        """Remove and return every running job past its deadline.

        The caller (the service) owns the returned jobs' bookkeeping:
        releasing waiters with ``TIMEOUT``, freeing the in-flight slot
        and recording metrics.
        """
        if not self.enforce_deadlines:
            return []
        now = self._clock()
        with self._lock:
            expired = [
                job_id
                for job_id, (job, _) in self._running.items()
                if job.deadline is not None and now > job.deadline
            ]
            out = [self._running.pop(job_id) for job_id in expired]
        for job, _ in out:
            self.abandoned += 1
            logger.warning(
                "watchdog abandoning job %d (%s on %s): running past "
                "its deadline",
                job.handle.job_id, job.handle.pattern_name, job.graph_id,
            )
        return out

    # -- background thread --------------------------------------------------

    def start(self, tick: Callable[[], None]) -> None:
        """Run ``tick`` every ``interval`` seconds until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop,
                args=(tick,),
                name="repro-service-watchdog",
                daemon=True,
            )
            self._thread.start()

    def _loop(self, tick: Callable[[], None]) -> None:
        while not self._stop.wait(self.interval):
            try:
                tick()
            except Exception:  # pragma: no cover - defensive
                logger.exception("watchdog tick failed")

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None
