"""Deterministic fault injection: seeded plans, named sites, zero-cost off.

The chaos-engineering half of the resilience layer.  A :class:`FaultPlan`
is a *seeded* description of which failures to inject where; the service
arms one with :meth:`QueryService.arm_faults` and, at dispatch time,
derives the per-job fault assignment with :meth:`FaultPlan.for_job` — a
pure function of ``(seed, job_id, attempt)``, so a chaos run replays
identically regardless of thread or process scheduling.

The assigned specs travel to the worker (they are small frozen
dataclasses, picklable across a process pool), where a
:class:`FaultInjector` is armed in a :mod:`contextvars` variable for the
duration of the job.  Instrumented layers check the active injector with
the same single-``None``-check pattern the observability hooks use::

    inj = _faults.active()
    if inj is not None:
        inj.fire("engine.batched")          # CRASH / HANG, before compute
    ...
    if inj is not None:
        inj.corrupt("engine.batched", report)   # CORRUPT, after compute

With no plan armed, ``active()`` is one contextvar load returning None —
the hot paths carry no other cost, which is what keeps the
no-faults-armed byte-identical guarantee honest.

Registered sites
----------------
``worker.run``
    The pool-worker entry point (:func:`repro.service.worker.run_job`).
    CRASH raises a crash-shaped error the service retry path sees exactly
    like a dying worker; HANG stalls the worker thread/process.
``engine.batched`` / ``engine.event``
    The two execution backends.  CRASH/HANG fire before the run, CORRUPT
    flips a bit in the final embedding count — the soft-error model for a
    wide comparator datapath silently producing a wrong intersection.
``memory.stream``
    Every stream access of the simulated memory hierarchy.  STALL
    multiplies both the fill latency and the occupancy cycles, modelling
    a degraded (thermally throttled / contended) memory system.
``comm.send`` / ``comm.recv``
    The cluster comm layer, client side: ``comm.send`` fires before a
    request frame leaves, ``comm.recv`` after the reply arrives.  DROP
    raises :class:`~repro.errors.CommClosedError` (the peer "never saw"
    the request, or the reply was lost *after* the work ran — the
    nastier case), DELAY sleeps ``seconds`` before delivery, and
    CORRUPT_FRAME flips a byte of the encoded frame's length prefix so
    the receiver exercises its corrupt-stream handling.

    Comm faults are armed *globally* via :func:`inject_comm` rather than
    through the per-job contextvar: scatter requests run on coordinator
    pool threads that never see the submitting context, so a contextvar
    could not reach them.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import CommClosedError, FaultInjectionError, InjectedCrashError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.report import SimReport

__all__ = [
    "COMM_SITES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "active",
    "comm_active",
    "inject",
    "inject_comm",
]

#: comm-layer sites (client side of every transport request)
COMM_SITES = (
    "comm.send",
    "comm.recv",
)

#: injection sites registered by the instrumented layers
FAULT_SITES = (
    "worker.run",
    "engine.batched",
    "engine.codegen",
    "engine.event",
    "memory.stream",
) + COMM_SITES


class FaultKind(enum.Enum):
    """What goes wrong when a spec fires."""

    CRASH = "crash"      #: the worker dies mid-job (crash-shaped error)
    HANG = "hang"        #: compute stalls for ``FaultSpec.seconds``
    CORRUPT = "corrupt"  #: bit-flip in the embedding count (soft error)
    STALL = "stall"      #: memory latency inflated by ``FaultSpec.factor``
    DROP = "drop"        #: a comm frame is lost (CommClosedError)
    DELAY = "delay"      #: a comm frame is delayed ``FaultSpec.seconds``
    CORRUPT_FRAME = "corrupt-frame"  #: a byte of the length prefix flips


#: one-shot kinds fire at most once per job; STALL applies to every hit
_ONE_SHOT = (FaultKind.CRASH, FaultKind.HANG, FaultKind.CORRUPT)

#: comm kinds are one-shot per injector too: a chaos scenario arms "the
#: Nth frame is dropped", not an unbounded packet-loss model
_COMM_KINDS = (FaultKind.DROP, FaultKind.DELAY, FaultKind.CORRUPT_FRAME)


@dataclass(frozen=True)
class FaultSpec:
    """One kind of failure at one site, with its selection rule.

    ``rate`` is the fraction of *job attempts* the spec is assigned to
    (1.0 = every attempt); selection is a pure function of the plan seed
    and ``(job_id, attempt)``.  ``max_fires`` caps how many assignments
    the plan hands out in total, so a chaos scenario can be "the first N
    jobs crash, then the system recovers".  ``on_hit`` picks which hit of
    the site (0-based, within one job) triggers a one-shot kind.
    """

    site: str
    kind: FaultKind
    rate: float = 1.0
    max_fires: int | None = None
    #: HANG: how long the compute stalls (wall seconds)
    seconds: float = 0.05
    #: STALL: multiplier applied to memory latencies
    factor: float = 10.0
    #: CORRUPT: which bit of the embedding count is flipped
    bit: int = 0
    #: one-shot kinds: fire on this hit index of the site (0-based)
    on_hit: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(
                f"rate must be in [0, 1], got {self.rate}"
            )
        if self.kind is FaultKind.STALL and self.factor <= 0:
            raise FaultInjectionError("stall factor must be positive")
        if self.bit < 0:
            raise FaultInjectionError("corrupt bit index must be >= 0")


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` — the unit a service arms.

    ``for_job`` is deterministic per ``(job_id, attempt)``; only the
    ``max_fires`` budget is shared mutable state (guarded by a lock and
    consumed in dispatch order, which the service serialises).
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self._assigned = [0] * len(self.specs)
        self._lock = threading.Lock()

    def for_job(
        self, job_id: int, attempt: int = 1
    ) -> tuple[FaultSpec, ...]:
        """The specs assigned to this job attempt (possibly empty).

        Selection draws one uniform variate per spec from a RNG seeded
        by ``(plan seed, job_id, attempt, spec index)`` — identical
        across runs, threads and processes.
        """
        out: list[FaultSpec] = []
        for i, spec in enumerate(self.specs):
            if spec.rate <= 0.0:
                continue
            if spec.rate < 1.0:
                rng = random.Random(hash((self.seed, job_id, attempt, i)))
                if rng.random() >= spec.rate:
                    continue
            if spec.max_fires is not None:
                with self._lock:
                    if self._assigned[i] >= spec.max_fires:
                        continue
                    self._assigned[i] += 1
            out.append(spec)
        return tuple(out)

    def assigned(self) -> dict[str, int]:
        """``{site:kind: n}`` assignments handed out so far."""
        with self._lock:
            counts = list(self._assigned)
        return {
            f"{spec.site}:{spec.kind.value}": n
            for spec, n in zip(self.specs, counts)
            if n
        }


class FaultInjector:
    """Per-job applicator of the assigned specs (armed via :func:`inject`).

    One-shot kinds (CRASH/HANG/CORRUPT) fire at most once per injector,
    on the ``on_hit``-th hit of their site; STALL applies to every hit of
    its site.  ``events`` records what actually fired, keyed
    ``site:kind`` — the worker ships it home in ``report.notes`` so the
    service can count injections in its metrics.
    """

    def __init__(
        self,
        specs: tuple[FaultSpec, ...],
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._specs = tuple(specs)
        self._sleep = sleep
        self._hits: dict[tuple[str, str], int] = {}
        self._spent: set[int] = set()
        #: ``{"site:kind": fire count}`` of everything that actually fired
        self.events: dict[str, int] = {}

    def _record(self, spec: FaultSpec) -> None:
        key = f"{spec.site}:{spec.kind.value}"
        self.events[key] = self.events.get(key, 0) + 1

    def _one_shot(self, site: str, group: str, kinds) -> Iterator[FaultSpec]:
        """Specs of ``kinds`` due to fire on this hit of ``site``."""
        hit = self._hits.get((site, group), 0)
        self._hits[(site, group)] = hit + 1
        for i, spec in enumerate(self._specs):
            if (
                spec.site == site
                and spec.kind in kinds
                and i not in self._spent
                and spec.on_hit == hit
            ):
                self._spent.add(i)
                yield spec

    # -- site hooks (called by the instrumented layers) --------------------

    def fire(self, site: str) -> None:
        """CRASH / HANG hook, called before the site's work runs."""
        for spec in self._one_shot(
            site, "enter", (FaultKind.CRASH, FaultKind.HANG)
        ):
            self._record(spec)
            if spec.kind is FaultKind.CRASH:
                raise InjectedCrashError(site)
            self._sleep(spec.seconds)

    def corrupt(self, site: str, report: "SimReport") -> None:
        """CORRUPT hook: flip ``spec.bit`` of the final embedding count."""
        for spec in self._one_shot(site, "corrupt", (FaultKind.CORRUPT,)):
            self._record(spec)
            report.embeddings ^= 1 << spec.bit

    def comm(self, site: str) -> None:
        """DROP / DELAY hook for one comm frame at ``site``.

        DROP raises :class:`~repro.errors.CommClosedError` — on
        ``comm.send`` the request never reaches the peer, on
        ``comm.recv`` the reply is lost after the peer did the work
        (the caller cannot tell the difference, which is the point).
        """
        for spec in self._one_shot(
            site, "comm", (FaultKind.DROP, FaultKind.DELAY)
        ):
            self._record(spec)
            if spec.kind is FaultKind.DROP:
                raise CommClosedError(
                    f"injected frame drop at {site}"
                )
            self._sleep(spec.seconds)

    def corrupt_frame(self, site: str, frame: bytes) -> bytes:
        """CORRUPT_FRAME hook: flip one byte of the length prefix.

        ``spec.bit`` selects which header byte (mod the 8-byte prefix);
        flipping the high byte turns the length into petabytes (the
        receiver's size cap rejects it), flipping a low byte misaligns
        the pickle body — either way the receiver must fail *typed*,
        not hang.
        """
        for spec in self._one_shot(
            site, "corrupt_frame", (FaultKind.CORRUPT_FRAME,)
        ):
            self._record(spec)
            mutated = bytearray(frame)
            mutated[spec.bit % 8] ^= 0xFF
            frame = bytes(mutated)
        return frame

    def stall(
        self, site: str, first_latency: float, stream_cycles: float
    ) -> tuple[float, float]:
        """STALL hook: inflate one stream access's latencies.

        The inflation applies to *every* access of the site, but the
        event is recorded once per injector — "this job ran on degraded
        memory" is one fault, however many accesses it slowed.
        """
        for i, spec in enumerate(self._specs):
            if spec.site == site and spec.kind is FaultKind.STALL:
                if i not in self._spent:
                    self._spent.add(i)
                    self._record(spec)
                first_latency *= spec.factor
                stream_cycles *= spec.factor
        return first_latency, stream_cycles


#: the injector armed for the current execution context, if any
_ACTIVE: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)


def active() -> FaultInjector | None:
    """The armed injector of this context (None = no faults, no cost)."""
    return _ACTIVE.get()


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Arm ``injector`` for the scope of the ``with`` block."""
    token = _ACTIVE.set(injector)
    try:
        yield injector
    finally:
        _ACTIVE.reset(token)


#: the process-wide comm-fault injector (None = no comm chaos, no cost).
#: Module-global rather than a contextvar: transport requests run on
#: scatter/hedge pool threads whose contexts never saw the arming scope.
_COMM_ACTIVE: FaultInjector | None = None
_COMM_LOCK = threading.Lock()


def comm_active() -> FaultInjector | None:
    """The armed comm injector, if any (one attribute load when off)."""
    return _COMM_ACTIVE


@contextmanager
def inject_comm(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Arm ``injector`` for comm sites, process-wide, for the block.

    Nesting replaces (and later restores) the previous injector; the
    lock only guards the swap — the hot-path read is lock-free.
    """
    global _COMM_ACTIVE
    with _COMM_LOCK:
        previous = _COMM_ACTIVE
        _COMM_ACTIVE = injector
    try:
        yield injector
    finally:
        with _COMM_LOCK:
            _COMM_ACTIVE = previous
