"""`repro.resilience`: the service's immune system.

X-SET's datapath keeps every PE busy as long as nothing goes wrong; a
production service on top of it must also survive the failures the
paper's simulator never models.  This package supplies the four
mechanisms, each wired through the service / engine / simulator layers:

* **Deterministic fault injection** (:mod:`~repro.resilience.faults`) —
  a seeded :class:`FaultPlan` assigns crashes, hangs, corrupted counts
  and memory stalls to jobs; named sites in the worker path, both
  engines and the memory hierarchy apply them with a single
  ``active() is None`` check, so an unarmed system pays nothing.
* **Circuit breakers** (:mod:`~repro.resilience.breaker`) — per-engine
  closed → open → half-open state machines tripped by crash-shaped or
  wrong-result failures, with configurable fallback routing (batched →
  event by default in the hardened profile).
* **Watchdog** (:mod:`~repro.resilience.watchdog`) — enforces deadlines
  on *running* jobs: hung workers are abandoned, their waiters finished
  with ``TIMEOUT``, broken pools replaced.
* **Degradation + load shedding** (:mod:`~repro.resilience.degradation`)
  — a healthy/degraded/overloaded state machine over queue depth and
  breaker states; overloaded services shed low-priority submissions with
  a typed :class:`~repro.errors.LoadShedError`.

All of it is driven by one frozen :class:`ResilienceConfig`
(:meth:`ResilienceConfig.hardened` is the fully armed profile) and
observable through the service's metrics registry, spans and the
``python -m repro health`` CLI.
"""

from .breaker import (
    BreakerBoard,
    BreakerSnapshot,
    BreakerState,
    CircuitBreaker,
)
from .degradation import (
    DegradationPolicy,
    HealthReport,
    HealthState,
    assess,
)
from .faults import (
    COMM_SITES,
    FAULT_SITES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    active,
    comm_active,
    inject,
    inject_comm,
)
from .policy import DEFAULT_FALLBACKS, ResilienceConfig
from .watchdog import Watchdog

__all__ = [
    "BreakerBoard",
    "BreakerSnapshot",
    "BreakerState",
    "COMM_SITES",
    "CircuitBreaker",
    "DEFAULT_FALLBACKS",
    "DegradationPolicy",
    "FAULT_SITES",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HealthReport",
    "HealthState",
    "ResilienceConfig",
    "Watchdog",
    "active",
    "assess",
    "comm_active",
    "inject",
    "inject_comm",
]
