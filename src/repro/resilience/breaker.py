"""Per-engine circuit breakers: closed → open → half-open → closed.

A :class:`CircuitBreaker` watches one execution engine.  Consecutive
crash-shaped or wrong-result failures trip it OPEN; while open the
dispatcher stops sending jobs to the engine (routing them to the
configured fallback instead).  After ``recovery_seconds`` the breaker
lets a bounded number of *probe* jobs through (HALF_OPEN); one success
closes it, one failure re-opens it and restarts the recovery clock.

The clock is injectable (the service passes its own), so recovery
windows are testable without real sleeps, and every transition is
observable: the service exports one state gauge per engine plus a
transition counter.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BreakerState", "BreakerSnapshot", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    """Lifecycle of one breaker (values are the exported gauge levels)."""

    CLOSED = 0     #: healthy — requests flow normally
    HALF_OPEN = 1  #: probing — a bounded number of trial requests allowed
    OPEN = 2       #: tripped — requests are rerouted or failed fast


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of one breaker (for ``health()`` / stats)."""

    engine: str
    state: str
    consecutive_failures: int
    failures: int
    successes: int
    last_failure_reason: str | None


class CircuitBreaker:
    """Failure-counting state machine guarding one engine."""

    def __init__(
        self,
        engine: str,
        *,
        failure_threshold: int = 3,
        recovery_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[
            [str, BreakerState, BreakerState], None
        ] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.engine = engine
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_probes = max(int(half_open_probes), 1)
        self._clock = clock
        #: called as (engine, old_state, new_state) on every transition,
        #: while the breaker lock is held — keep it cheap and never call
        #: back into the breaker (the flight recorder's deque append is
        #: the intended shape)
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive = 0
        self._failures = 0
        self._successes = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._last_reason: str | None = None
        self._transitions = 0
        self._lock = threading.Lock()

    # -- state machine ------------------------------------------------------

    def _set_state(self, state: BreakerState) -> None:
        if state is not self._state:
            old = self._state
            self._state = state
            self._transitions += 1
            if self._on_transition is not None:
                self._on_transition(self.engine, old, state)

    def allow(self) -> bool:
        """May a job be dispatched to this engine right now?

        In HALF_OPEN this *consumes* a probe slot — pair every ``True``
        with a later ``record_success``/``record_failure``.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.recovery_seconds:
                    return False
                self._set_state(BreakerState.HALF_OPEN)
                self._probes_in_flight = 0
            # HALF_OPEN: bounded concurrent probes
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive = 0
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._set_state(BreakerState.CLOSED)

    def record_failure(self, reason: str = "crash") -> None:
        with self._lock:
            self._failures += 1
            self._consecutive += 1
            self._last_reason = reason
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._opened_at = self._clock()
                self._set_state(BreakerState.OPEN)
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._set_state(BreakerState.OPEN)

    def reset(self) -> None:
        """Force-close the breaker (an operator action, not a probe).

        Used when an out-of-band signal proves the guarded peer is back
        — e.g. the cluster prober reintegrating a replica after it
        passed its recovery probes *and* re-registered its graphs.
        Waiting out ``recovery_seconds`` would keep skipping a replica
        known to be healthy.
        """
        with self._lock:
            self._consecutive = 0
            self._probes_in_flight = 0
            self._set_state(BreakerState.CLOSED)

    # -- introspection ------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            # surface the pending OPEN → HALF_OPEN transition lazily, the
            # same way allow() would
            if (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.recovery_seconds
            ):
                return BreakerState.HALF_OPEN
            return self._state

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions

    def snapshot(self) -> BreakerSnapshot:
        state = self.state  # resolves the lazy OPEN → HALF_OPEN edge
        with self._lock:
            return BreakerSnapshot(
                engine=self.engine,
                state=state.name.lower(),
                consecutive_failures=self._consecutive,
                failures=self._failures,
                successes=self._successes,
                last_failure_reason=self._last_reason,
            )


class BreakerBoard:
    """Lazily-created breaker per engine, sharing one policy and clock."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[
            [str, BreakerState, BreakerState], None
        ] | None = None,
    ) -> None:
        self._kwargs = dict(
            failure_threshold=failure_threshold,
            recovery_seconds=recovery_seconds,
            half_open_probes=half_open_probes,
            clock=clock,
            on_transition=on_transition,
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def for_engine(self, engine: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(engine)
            if breaker is None:
                breaker = self._breakers[engine] = CircuitBreaker(
                    engine, **self._kwargs
                )
            return breaker

    def states(self) -> dict[str, BreakerState]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: b.state for name, b in breakers.items()}

    def snapshots(self) -> dict[str, BreakerSnapshot]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: b.snapshot() for name, b in breakers.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)
