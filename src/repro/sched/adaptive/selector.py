"""Engine auto-selection: ``engine="auto"`` resolved per query.

Every backend computes byte-identical embedding counts (the functional
layer is shared — see :mod:`repro.engine`), so engine choice is purely a
latency decision and safe to automate.  ``select_engine`` picks the
candidate with the lowest predicted wall time, skipping engines whose
circuit breaker is open so auto-selection composes with the resilience
fallback chain instead of fighting it: a breaker-tripped codegen backend
simply stops being chosen until it recovers.

Outside the service (``run_on_soc``, ``XSetAccelerator``, the CLI) there
is no predictor or breaker board; :func:`auto_engine` falls back to the
static preference order — the measured backend ranking from the engine
benchmarks (codegen fastest on every workload).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ...engine.base import available_engines

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .features import QueryFeatures
    from .predictor import CostEstimate, CostPredictor

__all__ = ["AUTO_ENGINE", "AUTO_PREFERENCE", "auto_engine", "select_engine"]

#: the sentinel accepted by ``SystemConfig.engine`` / ``--engine``
AUTO_ENGINE = "auto"

#: static fallback ranking when no prediction or breaker data exists
#: (fastest first, per the bench_engines measurements)
AUTO_PREFERENCE = ("codegen", "batched", "event")


def auto_engine(candidates: Sequence[str] | None = None) -> str:
    """The static auto choice: first preferred engine that is registered."""
    names = tuple(candidates) if candidates is not None else available_engines()
    for engine in AUTO_PREFERENCE:
        if engine in names:
            return engine
    if not names:
        raise ValueError("no execution engines are registered")
    return names[0]


def select_engine(
    predictor: "CostPredictor",
    features: "QueryFeatures",
    *,
    candidates: Sequence[str] | None = None,
    allow: Callable[[str], bool] | None = None,
) -> "CostEstimate":
    """Lowest-predicted-cost engine for this query.

    ``allow`` is the breaker gate (``lambda e: board.for_engine(e).allow()``
    in the service); engines it rejects are excluded unless *every*
    candidate is rejected, in which case the full set is reconsidered —
    an all-breakers-open service should still dispatch (advisory-breaker
    semantics) rather than having no engine at all.

    Ties break by the static preference order, so an untrained predictor
    (every estimate from the same prior tier but different speeds) and a
    fully degenerate one (identical estimates) both stay deterministic.
    """
    names = tuple(candidates) if candidates is not None else available_engines()
    if not names:
        raise ValueError("no execution engines are registered")
    if allow is not None:
        open_ok = tuple(e for e in names if allow(e))
        if open_ok:
            names = open_ok
    rank = {engine: i for i, engine in enumerate(AUTO_PREFERENCE)}
    best = None
    for engine in names:
        estimate = predictor.predict(features, engine)
        order = (estimate.seconds, rank.get(engine, len(rank)), engine)
        if best is None or order < best[0]:
            best = (order, estimate)
    assert best is not None
    return best[1]
