"""Deadline-aware admission control.

Load shedding (the resilience layer's OVERLOADED state) is blind: it
rejects by priority once the queue is already deep, regardless of whether
a given query could still meet its deadline.  Admission control is the
informed version — at submit time, project the query's completion from
the predicted backlog drain plus its own predicted cost, and reject with
a typed :class:`~repro.errors.AdmissionError` when the deadline cannot be
met.  Rejecting at the door is strictly kinder than accepting work that
will be reaped as TIMEOUT after burning queue space and worker time.

The projection is intentionally simple and pessimistic-by-default::

    projected = backlog_seconds / workers + predicted_seconds * safety

``backlog_seconds`` sums the predicted cost of every job already queued
(the queue drains across ``workers`` lanes); ``safety_factor`` inflates
the query's own estimate so prior-tier predictions (conservative already)
and profile-tier ones (tight) both leave headroom.  Queries without a
deadline are always admitted — there is nothing to violate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import AdmissionError

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for deadline-aware admission control (disabled by default)."""

    #: master switch; off keeps submit() byte-identical to the pre-admission
    #: service (deadline misses are then only reaped at dispatch time)
    enabled: bool = False
    #: multiplier on the query's own predicted cost before projecting
    safety_factor: float = 1.5
    #: deadlines shorter than this are never admission-rejected — they are
    #: allowed to try, keeping sub-millisecond cache-adjacent queries out of
    #: the controller's blast radius when the predictor is still cold
    min_deadline_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.safety_factor <= 0.0:
            raise ValueError("safety_factor must be > 0")
        if self.min_deadline_seconds < 0.0:
            raise ValueError("min_deadline_seconds must be >= 0")

    def projected_completion(
        self,
        *,
        predicted_seconds: float,
        backlog_seconds: float,
        workers: int,
    ) -> float:
        """Seconds from now until this query is projected to finish."""
        drain = max(backlog_seconds, 0.0) / max(int(workers), 1)
        return drain + max(predicted_seconds, 0.0) * self.safety_factor

    def check(
        self,
        *,
        timeout: float,
        predicted_seconds: float,
        backlog_seconds: float,
        workers: int,
        describe: str = "query",
    ) -> float:
        """Admit or raise; returns the projected completion in seconds.

        ``timeout`` is the submitter's relative deadline.  Raises
        :class:`~repro.errors.AdmissionError` when the projection exceeds
        it (and the policy is enabled and the deadline is long enough to
        be worth protecting).
        """
        projected = self.projected_completion(
            predicted_seconds=predicted_seconds,
            backlog_seconds=backlog_seconds,
            workers=workers,
        )
        if (
            self.enabled
            and timeout >= self.min_deadline_seconds
            and projected > timeout
        ):
            raise AdmissionError(
                f"{describe} cannot meet its {timeout:.3f}s deadline: "
                f"projected completion {projected:.3f}s "
                f"(backlog {backlog_seconds:.3f}s across {workers} "
                f"worker(s), own predicted cost {predicted_seconds:.3f}s "
                f"x{self.safety_factor:g} safety)"
            )
        return projected
