"""Online cost predictor: query features → predicted wall seconds.

Three prediction tiers, most specific first:

``profile``
    An EWMA of observed wall times for this exact ``(graph fingerprint,
    canonical pattern, engine)`` triple — the service feeds every
    completed job's measured latency back in, so repeated shapes converge
    on their true cost within a few observations.
``throughput``
    No exact history, but the engine has completed *some* jobs: the
    analytic work proxy (:func:`~.features.analytic_work`) divided by the
    engine's learned work-units-per-second throughput.
``prior``
    Nothing observed yet: a conservative static throughput table (codegen
    fastest, batched next, the event simulator orders of magnitude
    slower), divided by a safety margin so unseen shapes are
    *over*-estimated — the admission controller should reject on the
    pessimistic side, never accept work it cannot finish.

Accuracy is self-reported: every completed job records its
``predicted / actual`` ratio into a fixed-bucket error histogram
(``repro_predictor_error_ratio``) and a bounded window, surfaced through
``QueryService.stats().predictor`` and the Prometheus exposition.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ...obs.metrics import MetricsRegistry
from ...obs.summary import Window
from .features import QueryFeatures, analytic_work

__all__ = [
    "CostEstimate",
    "CostPredictor",
    "DEFAULT_ENGINE_SPEED",
    "ERROR_RATIO_BUCKETS",
]

#: prior work-units/second per engine — ordered by the measured backend
#: ranking (ROADMAP: codegen fastest on every workload, event slowest).
#: Absolute values only matter until the first real observation lands.
DEFAULT_ENGINE_SPEED = {
    "codegen": 4.0e6,
    "batched": 2.0e6,
    "event": 4.0e4,
}

#: prior throughput assumed for engines absent from the table (slowest
#: known engine: unknown backends are treated as expensive until observed)
FALLBACK_ENGINE_SPEED = 4.0e4

#: fixed buckets for the predicted/actual ratio histogram (1.0 = perfect;
#: log-spaced so under- and over-prediction tails are both visible)
ERROR_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.8, 1.25, 2.0, 4.0, 10.0, 100.0)

#: accuracy samples kept for the windowed p50/p99 ratio summary
ACCURACY_WINDOW = 512


@dataclass(frozen=True)
class CostEstimate:
    """One prediction: seconds, which tier produced it, for which engine."""

    seconds: float
    source: str  # "profile" | "throughput" | "prior"
    engine: str


class CostPredictor:
    """Thread-safe online cost model trained from completed jobs."""

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        prior_margin: float = 4.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if prior_margin < 1.0:
            raise ValueError("prior_margin must be >= 1.0 (conservative)")
        self.alpha = alpha
        self.prior_margin = prior_margin
        self._registry = registry if registry is not None else MetricsRegistry()
        #: (fingerprint, pattern_key, engine) → EWMA of observed seconds
        self._profiles: dict[tuple, float] = {}
        #: engine → (EWMA work-units/second, observation count)
        self._throughput: dict[str, tuple[float, int]] = {}
        self._accuracy = Window(ACCURACY_WINDOW)
        self._observations = 0
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def observations(self) -> int:
        return self._observations

    # -- prediction --------------------------------------------------------

    def predict(self, features: QueryFeatures, engine: str) -> CostEstimate:
        """Predicted wall seconds for running ``features`` on ``engine``."""
        key = features.key() + (engine,)
        work = analytic_work(features)
        with self._lock:
            exact = self._profiles.get(key)
            learned = self._throughput.get(engine)
        if exact is not None:
            estimate = CostEstimate(exact, "profile", engine)
        elif learned is not None and learned[1] > 0:
            estimate = CostEstimate(
                work / max(learned[0], 1e-9), "throughput", engine
            )
        else:
            speed = DEFAULT_ENGINE_SPEED.get(engine, FALLBACK_ENGINE_SPEED)
            estimate = CostEstimate(
                work / (speed / self.prior_margin), "prior", engine
            )
        self._registry.counter(
            "repro_predictions_total",
            "cost predictions served, by tier",
            source=estimate.source,
        ).inc()
        return estimate

    # -- training ----------------------------------------------------------

    def observe(
        self, features: QueryFeatures, engine: str, seconds: float
    ) -> None:
        """Fold one completed job's measured wall time into the model."""
        seconds = max(float(seconds), 1e-9)
        key = features.key() + (engine,)
        rate = analytic_work(features) / seconds
        a = self.alpha
        with self._lock:
            prev = self._profiles.get(key)
            self._profiles[key] = (
                seconds if prev is None else prev + a * (seconds - prev)
            )
            speed, count = self._throughput.get(engine, (0.0, 0))
            self._throughput[engine] = (
                (rate, 1) if count == 0
                else (speed + a * (rate - speed), count + 1)
            )
            self._observations += 1
        self._registry.counter(
            "repro_predictor_observations_total",
            "completed jobs folded into the cost model",
            engine=engine,
        ).inc()

    def record_accuracy(self, predicted: float, actual: float) -> None:
        """Record one predicted-vs-actual outcome (ratio = pred/actual)."""
        ratio = max(float(predicted), 1e-9) / max(float(actual), 1e-9)
        self._accuracy.add(ratio)
        self._registry.histogram(
            "repro_predictor_error_ratio",
            "predicted / actual wall-time ratio per completed job",
            buckets=ERROR_RATIO_BUCKETS,
        ).observe(ratio)

    # -- introspection -----------------------------------------------------

    def accuracy(self) -> dict[str, float]:
        """Windowed ``{p50, p99, count, within_2x}`` of the pred/actual ratio."""
        values = self._accuracy.values()
        summary = self._accuracy.summary((50, 99))
        within = (
            sum(1 for v in values if 0.5 <= v <= 2.0) / len(values)
            if values
            else 0.0
        )
        summary["within_2x"] = within
        return summary

    def snapshot(self) -> dict:
        """``stats()``-ready view: accuracy window + model coverage."""
        with self._lock:
            profiles = len(self._profiles)
            throughput = {
                engine: rate for engine, (rate, n) in self._throughput.items()
                if n > 0
            }
            observations = self._observations
        out: dict = dict(self.accuracy())
        out["observations"] = observations
        out["profiled_shapes"] = profiles
        out["throughput_units_per_s"] = throughput
        return out
