"""The service-facing scheduling configuration bundle.

One frozen record the :class:`~repro.service.service.QueryService`
accepts as ``scheduling=``: which dispatch policy the job queue runs,
the anti-starvation bound for the cost policy, and the admission-control
knobs.  Defaults are the adaptive stack as shipped — cost-ranked
dispatch on, admission control off (it only bites when the caller sets
deadlines and opts in).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .admission import AdmissionPolicy

__all__ = ["SchedulingConfig", "QUEUE_POLICIES"]

#: dispatch policies the job queue understands
QUEUE_POLICIES = ("fifo", "cost")


@dataclass(frozen=True)
class SchedulingConfig:
    """Dispatch-policy and admission knobs for one :class:`QueryService`."""

    #: "cost" = shortest-predicted-job-first within a priority class (with
    #: the aging bound below); "fifo" = the pre-adaptive submit order
    policy: str = "cost"
    #: a queued job older than this (seconds on the service clock)
    #: dispatches ahead of cheaper newcomers — bounds starvation of heavy
    #: jobs under a stream of light ones.  None disables aging.
    age_limit_seconds: float | None = 2.0
    #: deadline-aware admission control (off by default)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)

    def __post_init__(self) -> None:
        if self.policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {self.policy!r}; "
                f"available: {', '.join(QUEUE_POLICIES)}"
            )
        if (
            self.age_limit_seconds is not None
            and self.age_limit_seconds <= 0.0
        ):
            raise ValueError("age_limit_seconds must be > 0 (or None)")
