"""Feature extraction for the cost predictor.

A query's cost is a function of *what the graph looks like* (Table-3
statistics from :mod:`repro.graph.stats`) and *what the plan does*
(levels, stop level, set operations, symmetry bounds, labelledness).
Both sides are extracted into one frozen :class:`QueryFeatures` record
keyed by ``(graph fingerprint, canonical pattern key)`` — the same key
vocabulary the result cache uses, so two submissions of isomorphic
patterns against the same graph snapshot share one feature vector.

Determinism and relabeling invariance are load-bearing: the plan-side
features are derived from a plan built on the *canonical* pattern
reconstructed from :func:`~repro.service.cache.pattern_cache_key`
output, never from the caller's pattern object.  The matching-order
heuristic breaks ties by vertex index, so two isomorphic patterns can
compile to superficially different plans — going through the canonical
form guarantees ``extract features ∘ relabel == extract features``
(property-tested in ``tests/test_predictor_features.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

from ...graph.stats import GraphStats, graph_stats
from ...patterns.pattern import Pattern
from ...patterns.plan import build_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...graph.csr import CSRGraph

__all__ = [
    "PlanFeatures",
    "QueryFeatures",
    "analytic_work",
    "plan_features",
    "query_features",
]

#: graph-stat entries memoised per fingerprint (stats are O(n) to compute)
_GRAPH_STATS_LIMIT = 128

_graph_stats_cache: "OrderedDict[str, GraphStats]" = OrderedDict()
_graph_stats_lock = threading.Lock()


@dataclass(frozen=True)
class PlanFeatures:
    """Isomorphism-invariant summary of one canonical matching plan."""

    depth: int
    stop_level: int
    num_set_ops: int
    num_difference_ops: int
    num_restrictions: int
    num_bounds: int
    labelled: bool
    induced: bool
    collection: str


@dataclass(frozen=True)
class QueryFeatures:
    """One query's cost-model inputs: graph side × plan side."""

    fingerprint: str
    pattern_key: tuple
    # -- graph side (Table-3 statistics of the registered snapshot) --------
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    skew: float
    # -- plan side (canonical, relabeling-invariant) -----------------------
    depth: int
    stop_level: int
    num_set_ops: int
    num_difference_ops: int
    num_restrictions: int
    num_bounds: int
    labelled: bool
    induced: bool
    collection: str

    def key(self) -> tuple:
        """The predictor's exact-match training key."""
        return (self.fingerprint, self.pattern_key)


@lru_cache(maxsize=512)
def plan_features(pattern_key: tuple) -> PlanFeatures:
    """Plan-side features from a canonical pattern cache key.

    The key is ``pattern_cache_key`` output: ``(num_vertices, edges,
    labels, induced)`` with edges/labels in lexicographically minimal
    form.  Rebuilding the pattern from it and compiling a fresh plan
    makes every derived number a pure function of the isomorphism class.
    """
    num_vertices, edges, labels, induced = pattern_key
    pattern = Pattern(
        name="canonical",
        num_vertices=int(num_vertices),
        edge_list=tuple(edges),
        labels=tuple(labels) if labels is not None else None,
    )
    plan = build_plan(pattern, induced=bool(induced))
    set_ops = sum(lv.num_set_ops for lv in plan.levels)
    diff_ops = sum(
        (len(lv.extra_anti) if lv.base is not None else len(lv.anti_deps))
        for lv in plan.levels
        if lv.reuse_from is None
    )
    bounds = sum(
        len(lv.upper_bounds) + len(lv.lower_bounds) for lv in plan.levels
    )
    return PlanFeatures(
        depth=plan.depth,
        stop_level=plan.stop_level,
        num_set_ops=set_ops,
        num_difference_ops=diff_ops,
        num_restrictions=len(plan.restrictions),
        num_bounds=bounds,
        labelled=pattern.labels is not None,
        induced=plan.induced,
        collection=plan.collection,
    )


def _stats_for(graph: "CSRGraph", fingerprint: str) -> GraphStats:
    with _graph_stats_lock:
        stats = _graph_stats_cache.get(fingerprint)
        if stats is not None:
            _graph_stats_cache.move_to_end(fingerprint)
            return stats
    stats = graph_stats(graph)
    with _graph_stats_lock:
        _graph_stats_cache[fingerprint] = stats
        while len(_graph_stats_cache) > _GRAPH_STATS_LIMIT:
            _graph_stats_cache.popitem(last=False)
    return stats


def query_features(
    graph: "CSRGraph", fingerprint: str, pattern_key: tuple
) -> QueryFeatures:
    """The full feature vector for one ``(graph snapshot, pattern)`` query."""
    stats = _stats_for(graph, fingerprint)
    pf = plan_features(pattern_key)
    return QueryFeatures(
        fingerprint=fingerprint,
        pattern_key=pattern_key,
        num_vertices=stats.num_vertices,
        num_edges=stats.num_edges,
        avg_degree=stats.avg_degree,
        max_degree=stats.max_degree,
        skew=stats.skew,
        depth=pf.depth,
        stop_level=pf.stop_level,
        num_set_ops=pf.num_set_ops,
        num_difference_ops=pf.num_difference_ops,
        num_restrictions=pf.num_restrictions,
        num_bounds=pf.num_bounds,
        labelled=pf.labelled,
        induced=pf.induced,
        collection=pf.collection,
    )


def analytic_work(features: QueryFeatures) -> float:
    """Model-based work proxy (abstract units) for an unseen query shape.

    A deliberately coarse branching-process estimate: each executed level
    multiplies the frontier by the average degree, symmetry bounds prune
    (each roughly halves the bounded frontier), every extra set operation
    adds a merge pass, and set differences keep large complements live
    (the CYC/TT blow-up the paper's Table 5 shows).  The output only has
    to *rank* queries and stay monotone in the knobs that matter — the
    per-engine throughput calibration in the predictor turns it into
    seconds.
    """
    branch = max(features.avg_degree, 1.0)
    work = float(max(features.num_vertices, 1))
    for _ in range(max(features.stop_level, 1) - 1):
        work = min(work * branch, 1e18)
    work *= 0.6 ** min(features.num_bounds, 8)
    work *= 1.0 + 0.25 * features.num_set_ops
    work *= 1.0 + 0.5 * features.num_difference_ops
    if features.labelled:
        work *= 0.5
    return max(min(work, 1e18), 1.0)
