"""Cost-model-driven adaptive scheduling (``repro.sched.adaptive``).

The hardware scheduler (``repro.sched.policies``) decides which task a PE
runs next inside one simulated accelerator; this package makes the same
decision one level up, for the *service*: which engine runs a query,
in which order queued queries dispatch, and whether a deadline-bearing
query should be admitted at all.  The pieces:

* :mod:`~repro.sched.adaptive.features` — deterministic, relabeling-
  invariant feature extraction per ``(graph fingerprint, canonical
  pattern)``;
* :mod:`~repro.sched.adaptive.predictor` — the online cost model
  (per-shape EWMA → learned engine throughput → conservative prior) with
  self-reported accuracy;
* :mod:`~repro.sched.adaptive.selector` — ``engine="auto"`` resolution
  from predicted cost and breaker state;
* :mod:`~repro.sched.adaptive.admission` — deadline-aware admission
  control raising a typed :class:`~repro.errors.AdmissionError`;
* :mod:`~repro.sched.adaptive.config` — the ``SchedulingConfig`` bundle
  the :class:`~repro.service.service.QueryService` consumes.
"""

from .admission import AdmissionPolicy
from .config import QUEUE_POLICIES, SchedulingConfig
from .features import (
    PlanFeatures,
    QueryFeatures,
    analytic_work,
    plan_features,
    query_features,
)
from .predictor import (
    DEFAULT_ENGINE_SPEED,
    ERROR_RATIO_BUCKETS,
    CostEstimate,
    CostPredictor,
)
from .selector import AUTO_ENGINE, AUTO_PREFERENCE, auto_engine, select_engine

__all__ = [
    "AUTO_ENGINE",
    "AUTO_PREFERENCE",
    "AdmissionPolicy",
    "CostEstimate",
    "CostPredictor",
    "DEFAULT_ENGINE_SPEED",
    "ERROR_RATIO_BUCKETS",
    "PlanFeatures",
    "QUEUE_POLICIES",
    "QueryFeatures",
    "SchedulingConfig",
    "analytic_work",
    "auto_engine",
    "plan_features",
    "query_features",
    "select_engine",
]
