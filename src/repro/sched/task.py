"""Task structures of the barrier-free scheduler (paper §6.1, Figure 10).

A :class:`SimTask` is one node of the GPM search tree: it computes the
candidate set for one level given the partial embedding accumulated along
its parent chain.  A :class:`TaskSetState` mirrors the hardware Task Set —
the per-parent bookkeeping record that spawns subtasks from the parent's
candidate buffer with bounded width.
"""

from __future__ import annotations

from collections import deque
from itertools import count as _counter
from typing import Optional

import numpy as np

__all__ = ["SimTask", "TaskSetState"]

_task_ids = _counter()


class SimTask:
    """One search-tree node: match vertex ``vertex`` at level ``level``.

    The candidate set the task computes is stored in ``raw_set`` after
    execution (the hardware writes it to the private-cache-backed candidate
    buffer at ``scratch_addr``) so descendant tasks can extend it.
    """

    __slots__ = (
        "task_id",
        "level",
        "vertex",
        "parent",
        "embedding",
        "raw_set",
        "raw_words",
        "scratch_addr",
        "task_set",
    )

    def __init__(
        self,
        level: int,
        vertex: int,
        parent: Optional["SimTask"],
    ) -> None:
        self.task_id = next(_task_ids)
        self.level = level
        self.vertex = vertex
        self.parent = parent
        if parent is None:
            self.embedding: tuple[int, ...] = (vertex,)
        else:
            self.embedding = parent.embedding + (vertex,)
        self.raw_set: np.ndarray | None = None
        self.raw_words: int = 0
        self.scratch_addr: int = 0
        self.task_set: TaskSetState | None = None

    @classmethod
    def from_embedding(cls, embedding: "tuple[int, ...]") -> "SimTask":
        """Build the task chain for a partial embedding; returns the leaf.

        ``embedding[i]`` is the data vertex matched at level ``i``, so the
        returned task computes level ``len(embedding)`` with its full
        ancestor chain attached — the bridge from frontier-style state
        (one row per partial embedding) back to event-style tasks.
        """
        if not embedding:
            raise ValueError("embedding must match at least the root vertex")
        task = cls(level=1, vertex=int(embedding[0]), parent=None)
        for v in embedding[1:]:
            task = cls(level=task.level + 1, vertex=int(v), parent=task)
        return task

    def ancestor(self, level: int) -> "SimTask":
        """Walk the parent chain to the task executed at ``level``."""
        node: SimTask = self
        while node.level > level:
            assert node.parent is not None, "ancestor level below root"
            node = node.parent
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimTask(id={self.task_id}, lvl={self.level}, emb={self.embedding})"


class TaskSetState:
    """Hardware Task Set: spawns one parent's subtasks with bounded width.

    ``pending`` holds spawned-but-not-dispatched children (fed from the
    candidate buffer / fast-spawning register); ``in_flight`` counts children
    currently executing.  The set retires when both are empty, releasing its
    hardware slot.
    """

    __slots__ = ("parent", "pending", "in_flight", "level", "exempt")

    def __init__(
        self,
        parent: SimTask | None,
        children: list[SimTask],
        exempt: bool = False,
    ) -> None:
        self.parent = parent
        self.pending: deque[SimTask] = deque(children)
        self.in_flight = 0
        self.level = children[0].level if children else 0
        self.exempt = exempt  # the root stream does not occupy a HW slot
        for child in children:
            child.task_set = self

    @property
    def ready(self) -> bool:
        return bool(self.pending)

    @property
    def retired(self) -> bool:
        return not self.pending and self.in_flight == 0

    def pop(self) -> SimTask:
        self.in_flight += 1
        return self.pending.popleft()

    def complete_one(self) -> None:
        self.in_flight -= 1
        assert self.in_flight >= 0, "task-set accounting underflow"
