"""The four task-scheduling policies compared in the paper.

* :class:`DFSScheduler` — conventional single-task-in-flight depth-first
  execution (FlexMiner-style PEs, Figure 3b).
* :class:`PseudoDFSScheduler` — FINGERS' windowed sibling parallelism with a
  synchronisation barrier after every window (Figure 3c).
* :class:`BarrierFreeScheduler` — X-SET's dependency-driven out-of-order
  dispatch across all levels, with Task-Set capacity and spawn-width limits
  (§6, Figure 10).
* :class:`ShogunScheduler` — Shogun's incremental out-of-order scheduler:
  barrier-free-like dispatch, but with the periodic locality-mode
  synchronisation and centralized-dispatch overhead the paper describes.

Every scheduler manages tasks for one PE; the simulator calls ``push_*`` to
make work available, ``pop`` when an SIU frees up, and ``on_complete`` when
a task retires.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

from ..errors import SchedulerError
from .task import SimTask, TaskSetState

__all__ = [
    "SchedulerBase",
    "DFSScheduler",
    "PseudoDFSScheduler",
    "BarrierFreeScheduler",
    "ShogunScheduler",
    "make_scheduler",
]


class SchedulerBase(ABC):
    """Per-PE task scheduler interface."""

    name = "base"
    #: extra dispatch cycles the PE adds per pop (centralised schedulers)
    dispatch_overhead = 0

    def __init__(self) -> None:
        self.in_flight = 0
        self.completed = 0

    @abstractmethod
    def push_roots(self, tasks: list[SimTask]) -> None:
        """Enqueue the PE's root-level tasks."""

    @abstractmethod
    def push_children(self, parent: SimTask, children: list[SimTask]) -> None:
        """Make ``parent``'s spawned subtasks available."""

    @abstractmethod
    def pop(self) -> SimTask | None:
        """Next task to dispatch, or None if the policy blocks issue now."""

    def on_complete(self, task: SimTask) -> None:
        """Bookkeeping when ``task`` finishes (before push_children)."""
        self.in_flight -= 1
        self.completed += 1
        if self.in_flight < 0:
            raise SchedulerError("in-flight count underflow")

    def _dispatched(self) -> None:
        self.in_flight += 1

    @property
    @abstractmethod
    def pending(self) -> int:
        """Tasks waiting to be dispatched."""

    @property
    def drained(self) -> bool:
        return self.pending == 0 and self.in_flight == 0


class DFSScheduler(SchedulerBase):
    """Conventional depth-first scheduling: one DFS walk per SIU lane.

    With ``lanes == 1`` this is the classic single-SIU PE of Figure 3b (one
    task in flight, strict DFS order).  With more lanes each SIU owns a
    disjoint set of root subtrees and walks them sequentially — subtree-level
    parallelism only, no work sharing, so imbalanced subtrees leave lanes
    idle (the ablation's "conventional DFS" configuration).
    """

    name = "dfs"

    def __init__(self, lanes: int = 1) -> None:
        super().__init__()
        if lanes < 1:
            raise SchedulerError("lanes must be >= 1")
        self.lanes = lanes
        self._stacks: list[list[SimTask]] = [[] for _ in range(lanes)]
        self._busy = [False] * lanes
        self._lane_of: dict[int, int] = {}

    def push_roots(self, tasks: list[SimTask]) -> None:
        for i, task in enumerate(tasks):
            self._lane_of[task.task_id] = i % self.lanes
        for lane in range(self.lanes):
            lane_tasks = [
                t for i, t in enumerate(tasks) if i % self.lanes == lane
            ]
            self._stacks[lane].extend(reversed(lane_tasks))

    def push_children(self, parent: SimTask, children: list[SimTask]) -> None:
        lane = self._lane_of.get(parent.task_id, 0)
        for child in children:
            self._lane_of[child.task_id] = lane
        self._stacks[lane].extend(reversed(children))

    def pop(self) -> SimTask | None:
        for lane in range(self.lanes):
            if not self._busy[lane] and self._stacks[lane]:
                task = self._stacks[lane].pop()
                self._busy[lane] = True
                self._dispatched()
                return task
        return None

    def on_complete(self, task: SimTask) -> None:
        super().on_complete(task)
        lane = self._lane_of.pop(task.task_id, 0)
        self._busy[lane] = False

    @property
    def pending(self) -> int:
        return sum(len(s) for s in self._stacks)


class PseudoDFSScheduler(SchedulerBase):
    """FINGERS-style windowed scheduling with inter-window barriers.

    Up to ``window`` sibling tasks (same level, consecutive on the DFS
    stack) execute concurrently; the next window cannot start until every
    task of the current one has completed.
    """

    name = "pseudo-dfs"

    def __init__(self, window: int = 4) -> None:
        super().__init__()
        if window < 1:
            raise SchedulerError("window must be >= 1")
        self.window = window
        self._stack: list[SimTask] = []
        self._window_tasks: deque[SimTask] = deque()

    def push_roots(self, tasks: list[SimTask]) -> None:
        self._stack.extend(reversed(tasks))

    def push_children(self, parent: SimTask, children: list[SimTask]) -> None:
        self._stack.extend(reversed(children))

    def _refill_window(self) -> None:
        # barrier: previous window must fully drain first
        if self._window_tasks or self.in_flight > 0 or not self._stack:
            return
        level = self._stack[-1].level
        while (
            self._stack
            and len(self._window_tasks) < self.window
            and self._stack[-1].level == level
        ):
            self._window_tasks.append(self._stack.pop())

    def pop(self) -> SimTask | None:
        if not self._window_tasks:
            self._refill_window()
        if not self._window_tasks:
            return None
        self._dispatched()
        return self._window_tasks.popleft()

    @property
    def pending(self) -> int:
        return len(self._stack) + len(self._window_tasks)


class BarrierFreeScheduler(SchedulerBase):
    """X-SET's barrier-free scheduler (paper §6).

    Any dependency-ready task may dispatch to any free SIU.  Structure
    mirrors the hardware: one Task Set per spawning parent (capacity
    ``num_task_sets``, spawn width ``task_set_width``), issue policy
    round-robin inside a level and depth-first across levels.
    """

    name = "barrier-free"

    def __init__(
        self,
        num_task_sets: int = 96,
        task_set_width: int = 4,
        max_levels: int = 16,
    ) -> None:
        super().__init__()
        if num_task_sets < 1 or task_set_width < 1:
            raise SchedulerError("scheduler capacities must be positive")
        self.num_task_sets = num_task_sets
        self.task_set_width = task_set_width
        self._levels: list[deque[TaskSetState]] = [
            deque() for _ in range(max_levels)
        ]
        self._top = 0  # highest level that may hold task sets
        self._active_sets = 0
        self._waiting_spawn: deque[tuple[SimTask, list[SimTask]]] = deque()
        #: peak simultaneously-active task sets (capacity pressure metric)
        self.peak_active_sets = 0

    def push_roots(self, tasks: list[SimTask]) -> None:
        if not tasks:
            return
        ts = TaskSetState(parent=None, children=tasks, exempt=True)
        self._levels[tasks[0].level].append(ts)
        self._top = max(self._top, tasks[0].level)

    def _admit(self, parent: SimTask, children: list[SimTask]) -> None:
        ts = TaskSetState(parent=parent, children=children)
        self._active_sets += 1
        self.peak_active_sets = max(self.peak_active_sets, self._active_sets)
        self._levels[ts.level].append(ts)
        self._top = max(self._top, ts.level)

    def push_children(self, parent: SimTask, children: list[SimTask]) -> None:
        if not children:
            return
        if self._active_sets < self.num_task_sets:
            self._admit(parent, children)
        else:
            self._waiting_spawn.append((parent, children))

    def pop(self) -> SimTask | None:
        # depth-first across levels, round-robin inside a level
        while self._top > 0 and not self._levels[self._top]:
            self._top -= 1
        for level in range(self._top, -1, -1):
            sets = self._levels[level]
            for _ in range(len(sets)):
                ts = sets[0]
                if ts.retired:
                    # lazily collected on completion; skip stale entries
                    sets.popleft()
                    continue
                if ts.ready and ts.in_flight < self.task_set_width:
                    task = ts.pop()
                    sets.rotate(-1)
                    self._dispatched()
                    return task
                sets.rotate(-1)
        return None

    def on_complete(self, task: SimTask) -> None:
        super().on_complete(task)
        ts = task.task_set
        if ts is None:
            return
        ts.complete_one()
        if ts.retired:
            try:
                self._levels[ts.level].remove(ts)
            except ValueError:
                pass
            if not ts.exempt:
                self._active_sets -= 1
                # capacity freed: admit a waiting spawn
                if (
                    self._waiting_spawn
                    and self._active_sets < self.num_task_sets
                ):
                    parent, children = self._waiting_spawn.popleft()
                    self._admit(parent, children)

    @property
    def pending(self) -> int:
        n = sum(len(ts.pending) for lv in self._levels for ts in lv)
        n += sum(len(children) for _, children in self._waiting_spawn)
        return n


class ShogunScheduler(BarrierFreeScheduler):
    """Shogun's incremental OoO scheduler with locality-mode barriers.

    Inherits out-of-order dispatch, but the centralized controller adds a
    per-dispatch overhead and, in locality-aware mode, drains all in-flight
    tasks every ``sync_period`` completions (the synchronisation the paper
    says "essentially restricts parallelism").
    """

    name = "shogun"
    dispatch_overhead = 0

    def __init__(
        self,
        num_task_sets: int = 96,
        task_set_width: int = 4,
        max_levels: int = 16,
        sync_period: int = 256,
        sync_stall: int = 16,
    ) -> None:
        super().__init__(num_task_sets, task_set_width, max_levels)
        self.sync_period = sync_period
        self.sync_stall = sync_stall
        self._since_sync = 0
        self._draining = False
        #: cycles of stall the PE must insert at the next dispatch
        self.pending_stall = 0

    def on_complete(self, task: SimTask) -> None:
        super().on_complete(task)
        self._since_sync += 1
        if self._since_sync >= self.sync_period:
            self._draining = True
        if self._draining and self.in_flight == 0:
            self._draining = False
            self._since_sync = 0
            self.pending_stall += self.sync_stall

    def pop(self) -> SimTask | None:
        if self._draining:
            return None
        return super().pop()


def make_scheduler(kind: str, **params) -> SchedulerBase:
    """Factory for per-PE schedulers by policy name."""
    kinds = {
        "dfs": DFSScheduler,
        "pseudo-dfs": PseudoDFSScheduler,
        "barrier-free": BarrierFreeScheduler,
        "shogun": ShogunScheduler,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {kind!r}; choose from {sorted(kinds)}"
        ) from None
    return cls(**params)
