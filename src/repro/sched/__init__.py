"""Task structures and scheduling policies for the GPM search tree.

Two scheduling layers live here: the paper's per-PE hardware schedulers
(:mod:`repro.sched.policies`) and the service-level adaptive stack
(:mod:`repro.sched.adaptive` — cost predictor, engine auto-selection,
cost-ranked dispatch, deadline-aware admission control).  The adaptive
names are re-exported lazily so importing ``repro.sched`` for
:class:`SimTask` stays cheap.
"""

from .policies import (
    BarrierFreeScheduler,
    DFSScheduler,
    PseudoDFSScheduler,
    SchedulerBase,
    ShogunScheduler,
    make_scheduler,
)
from .task import SimTask, TaskSetState

__all__ = [
    "AdmissionPolicy",
    "BarrierFreeScheduler",
    "CostEstimate",
    "CostPredictor",
    "DFSScheduler",
    "PseudoDFSScheduler",
    "QueryFeatures",
    "SchedulerBase",
    "SchedulingConfig",
    "ShogunScheduler",
    "SimTask",
    "TaskSetState",
    "auto_engine",
    "make_scheduler",
    "query_features",
    "select_engine",
]

#: adaptive-layer names resolved on first attribute access
_ADAPTIVE = frozenset(
    {
        "AdmissionPolicy",
        "CostEstimate",
        "CostPredictor",
        "QueryFeatures",
        "SchedulingConfig",
        "auto_engine",
        "query_features",
        "select_engine",
    }
)


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    if name in _ADAPTIVE:
        from importlib import import_module

        return getattr(import_module("repro.sched.adaptive"), name)
    raise AttributeError(f"module 'repro.sched' has no attribute {name!r}")
