"""Task structures and scheduling policies for the GPM search tree."""

from .policies import (
    BarrierFreeScheduler,
    DFSScheduler,
    PseudoDFSScheduler,
    SchedulerBase,
    ShogunScheduler,
    make_scheduler,
)
from .task import SimTask, TaskSetState

__all__ = [
    "BarrierFreeScheduler",
    "DFSScheduler",
    "PseudoDFSScheduler",
    "SchedulerBase",
    "ShogunScheduler",
    "SimTask",
    "TaskSetState",
    "make_scheduler",
]
