"""`repro.obs`: unified tracing, metrics and profiling.

One vocabulary for every layer's instrumentation:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
  thread-safe, snapshot-able, Prometheus text exposition.
* :class:`Tracer` / :class:`Span` — structured spans with contextvars
  propagation, so one query's spans nest service → worker → engine →
  simulator across layers (and, via :meth:`Tracer.ingest`, across
  processes).
* :func:`observe` / :func:`current` — the observation context.  All hot
  paths are guarded by ``current() is None``; with no active observation
  the instrumentation costs one attribute load.
* :class:`ExecutionProfile` — per-query "where did the time go": level
  task/element totals, cache stats, stage wall times, spans, PE events.
* :func:`write_chrome_trace` — one Perfetto-loadable JSON file unifying
  span and PE-activity timelines.
* :func:`percentile` — the shared nearest-rank percentile used by every
  summary surface in the repo.

Quickstart::

    from repro import XSetAccelerator, load_dataset, PATTERNS
    from repro.obs import observe, build_profile, write_chrome_trace

    with observe() as ob:
        report = XSetAccelerator().count(load_dataset("WV", scale=0.1),
                                         PATTERNS["3CF"])
    profile = build_profile(report, ob, engine="event")
    write_chrome_trace("trace.json", profile.spans, profile.pe_events)
"""

from .cluster import TraceContext, collect_job_spans, new_trace_id
from .context import Observation, current, enabled, observe, span
from .export import chrome_trace_events, write_chrome_trace
from .federation import (
    AGGREGATE_SHARD,
    FederatedMetrics,
    MetricsDeltaTracker,
    MetricsSnapshot,
)
from .flight import FLIGHT_DIR_ENV, FlightEvent, FlightRecorder
from .logsetup import configure_logging
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import ExecutionProfile, build_profile
from .slo import DEFAULT_SLOS, SLO, SLOStatus, SLOTracker
from .summary import DEFAULT_PERCENTILES, Window, percentile, summarize
from .tracing import Span, Tracer, current_span

__all__ = [
    "AGGREGATE_SHARD",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PERCENTILES",
    "DEFAULT_SLOS",
    "ExecutionProfile",
    "FLIGHT_DIR_ENV",
    "FederatedMetrics",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsDeltaTracker",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observation",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "Span",
    "TraceContext",
    "Tracer",
    "Window",
    "build_profile",
    "chrome_trace_events",
    "collect_job_spans",
    "configure_logging",
    "current",
    "current_span",
    "enabled",
    "new_trace_id",
    "observe",
    "percentile",
    "span",
    "summarize",
    "write_chrome_trace",
]
