"""Chrome/Perfetto trace-event JSON export.

One exported file unifies the two timelines the repo records:

* **spans** (wall-clock seconds) — service, engine and simulator phases,
  one track ("thread") per root span so concurrent jobs render side by
  side under the ``repro spans`` process;
* **PE activity** (simulated cycles) — the event-driven simulator's
  per-task execution spans, one track per PE under the ``accelerator
  (cycles)`` process.  Cycle timestamps are emitted as microseconds
  verbatim: the two processes use different time units on purpose, and
  Perfetto renders them as independent tracks.

Load the file at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .tracing import Span

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: pid used for wall-clock span tracks
SPAN_PID = 1
#: pid used for simulated-cycle PE activity tracks
PE_PID = 2


def _root_lanes(spans: Sequence[Span]) -> dict[int, int]:
    """Map every span id to a lane (track) shared by its whole tree."""
    parent = {sp.span_id: sp.parent_id for sp in spans}
    roots: dict[int, int] = {}

    def root_of(span_id: int) -> int:
        cur = span_id
        while True:
            p = parent.get(cur)
            if p is None or p not in parent:
                return cur
            cur = p

    next_lane = 1
    ordered = sorted(spans, key=lambda sp: (sp.start, sp.span_id))
    out: dict[int, int] = {}
    for sp in ordered:
        root = root_of(sp.span_id)
        if root not in roots:
            roots[root] = next_lane
            next_lane += 1
        out[sp.span_id] = roots[root]
    return out


def _span_lanes(spans: Sequence[Span]) -> tuple[dict[int, int], dict]:
    """Lane (tid) assignment: named lanes first, root-tree lanes after.

    Spans carrying a ``lane`` attribute (set by the cluster coordinator
    when it adopts a shard's spans) share one *named* track per distinct
    value, so shard 0's and shard 3's subtrees never interleave on a
    single lane.  Spans without the attribute keep the original
    one-lane-per-root-tree behaviour, offset past the named lanes.
    """
    named = sorted(
        {str(sp.attrs["lane"]) for sp in spans if "lane" in sp.attrs}
    )
    name_ids = {name: i + 1 for i, name in enumerate(named)}
    auto = _root_lanes(spans)
    lanes: dict[int, int] = {}
    offset = len(named)
    for sp in spans:
        if "lane" in sp.attrs:
            lanes[sp.span_id] = name_ids[str(sp.attrs["lane"])]
        else:
            lanes[sp.span_id] = auto.get(sp.span_id, 1) + offset
    return lanes, name_ids


def chrome_trace_events(
    spans: Sequence[Span],
    pe_events: Iterable[tuple[int, int, float, float]] = (),
    pe_groups: "dict[str, Iterable[tuple[int, int, float, float]]] | None"
    = None,
) -> list[dict]:
    """Build the ``traceEvents`` list for spans + PE activity.

    ``pe_events`` is the single-node form (one ``accelerator (cycles)``
    process).  ``pe_groups`` maps a group name (e.g. a shard name) to
    its own PE event list; each group gets its own pid so Perfetto
    renders per-shard PE timelines as separate processes instead of
    interleaving every shard's PE 0 on one track.
    """
    events: list[dict] = [
        {
            "ph": "M", "pid": SPAN_PID, "tid": 0,
            "name": "process_name", "args": {"name": "repro spans"},
        },
    ]
    origin = min((sp.start for sp in spans), default=0.0)
    lanes, name_ids = _span_lanes(spans)
    for lane_name, tid in name_ids.items():
        events.append(
            {
                "ph": "M", "pid": SPAN_PID, "tid": tid,
                "name": "thread_name", "args": {"name": lane_name},
            }
        )
    for sp in sorted(spans, key=lambda s: (s.start, s.span_id)):
        events.append(
            {
                "ph": "X",
                "pid": SPAN_PID,
                "tid": lanes.get(sp.span_id, 1),
                "name": sp.name,
                "cat": "span",
                "ts": (sp.start - origin) * 1e6,
                "dur": sp.duration * 1e6,
                "args": {
                    str(k): _jsonable(v) for k, v in sp.attrs.items()
                },
            }
        )
    groups: list[tuple[str, list]] = []
    pe_list = list(pe_events)
    if pe_list:
        groups.append(("", pe_list))
    for group_name in sorted(pe_groups or ()):
        group_events = list(pe_groups[group_name])
        if group_events:
            groups.append((group_name, group_events))
    for index, (group_name, group_events) in enumerate(groups):
        pid = PE_PID + index
        label = "accelerator (cycles)"
        if group_name:
            label = f"{label} — {group_name}"
        events.append(
            {
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        for pe, level, start, end in group_events:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": int(pe),
                    "name": f"L{int(level)}",
                    "cat": "pe",
                    "ts": float(start),
                    "dur": float(end - start),
                    "args": {"level": int(level)},
                }
            )
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[Span],
    pe_events: Iterable[tuple[int, int, float, float]] = (),
    pe_groups: "dict[str, Iterable[tuple[int, int, float, float]]] | None"
    = None,
) -> list[dict]:
    """Write a Perfetto-loadable JSON file; returns the event list."""
    events = chrome_trace_events(spans, pe_events, pe_groups)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload, indent=None))
    return events
