"""Chrome/Perfetto trace-event JSON export.

One exported file unifies the two timelines the repo records:

* **spans** (wall-clock seconds) — service, engine and simulator phases,
  one track ("thread") per root span so concurrent jobs render side by
  side under the ``repro spans`` process;
* **PE activity** (simulated cycles) — the event-driven simulator's
  per-task execution spans, one track per PE under the ``accelerator
  (cycles)`` process.  Cycle timestamps are emitted as microseconds
  verbatim: the two processes use different time units on purpose, and
  Perfetto renders them as independent tracks.

Load the file at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .tracing import Span

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: pid used for wall-clock span tracks
SPAN_PID = 1
#: pid used for simulated-cycle PE activity tracks
PE_PID = 2


def _root_lanes(spans: Sequence[Span]) -> dict[int, int]:
    """Map every span id to a lane (track) shared by its whole tree."""
    parent = {sp.span_id: sp.parent_id for sp in spans}
    roots: dict[int, int] = {}

    def root_of(span_id: int) -> int:
        cur = span_id
        while True:
            p = parent.get(cur)
            if p is None or p not in parent:
                return cur
            cur = p

    next_lane = 1
    ordered = sorted(spans, key=lambda sp: (sp.start, sp.span_id))
    out: dict[int, int] = {}
    for sp in ordered:
        root = root_of(sp.span_id)
        if root not in roots:
            roots[root] = next_lane
            next_lane += 1
        out[sp.span_id] = roots[root]
    return out


def chrome_trace_events(
    spans: Sequence[Span],
    pe_events: Iterable[tuple[int, int, float, float]] = (),
) -> list[dict]:
    """Build the ``traceEvents`` list for spans + PE activity."""
    events: list[dict] = [
        {
            "ph": "M", "pid": SPAN_PID, "tid": 0,
            "name": "process_name", "args": {"name": "repro spans"},
        },
    ]
    origin = min((sp.start for sp in spans), default=0.0)
    lanes = _root_lanes(spans)
    for sp in sorted(spans, key=lambda s: (s.start, s.span_id)):
        events.append(
            {
                "ph": "X",
                "pid": SPAN_PID,
                "tid": lanes.get(sp.span_id, 1),
                "name": sp.name,
                "cat": "span",
                "ts": (sp.start - origin) * 1e6,
                "dur": sp.duration * 1e6,
                "args": {
                    str(k): _jsonable(v) for k, v in sp.attrs.items()
                },
            }
        )
    pe_list = list(pe_events)
    if pe_list:
        events.append(
            {
                "ph": "M", "pid": PE_PID, "tid": 0,
                "name": "process_name",
                "args": {"name": "accelerator (cycles)"},
            }
        )
        for pe, level, start, end in pe_list:
            events.append(
                {
                    "ph": "X",
                    "pid": PE_PID,
                    "tid": int(pe),
                    "name": f"L{int(level)}",
                    "cat": "pe",
                    "ts": float(start),
                    "dur": float(end - start),
                    "args": {"level": int(level)},
                }
            )
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[Span],
    pe_events: Iterable[tuple[int, int, float, float]] = (),
) -> list[dict]:
    """Write a Perfetto-loadable JSON file; returns the event list."""
    events = chrome_trace_events(spans, pe_events)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload, indent=None))
    return events
