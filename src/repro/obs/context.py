"""The observation context: what "observability is on" means.

An :class:`Observation` bundles everything one observed scope collects —
a :class:`~repro.obs.tracing.Tracer` for spans, a
:class:`~repro.obs.metrics.MetricsRegistry`, per-level accumulators fed
by the engines, PE activity traces from the simulator, and named stage
wall times.  ``observe()`` installs one as the *current* observation in a
:mod:`contextvars` variable; every instrumentation point in the engines
and the simulator starts with ``ob = current()`` and does **nothing**
when it is ``None`` — that single attribute load is the entire cost of
disabled observability, which is what keeps the hot paths honest.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import ActivityTrace

__all__ = ["Observation", "current", "enabled", "observe", "span"]

_ACTIVE: ContextVar["Observation | None"] = ContextVar(
    "repro_observation", default=None
)


class Observation:
    """Everything collected while observability is enabled for a scope."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        # explicit None checks: empty tracers/registries are falsy (len 0)
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        #: PE activity traces handed over by the event-driven simulator
        self.activities: list["ActivityTrace"] = []
        #: ``{level: {"tasks": n, "elements": w, "comparisons": c}}``
        self.levels: dict[int, dict[str, float]] = {}
        #: accumulated wall seconds per named stage
        self.stages: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- collection hooks (called by instrumented layers) ------------------

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def add_activity(self, trace: "ActivityTrace") -> None:
        with self._lock:
            self.activities.append(trace)

    def add_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stages[name] = self.stages.get(name, 0.0) + seconds

    def level_add(
        self,
        level: int,
        tasks: int = 0,
        elements: int = 0,
        comparisons: int = 0,
    ) -> None:
        """Accumulate per-search-tree-level work (engines call this)."""
        with self._lock:
            acc = self.levels.get(level)
            if acc is None:
                acc = self.levels[level] = {
                    "tasks": 0.0, "elements": 0.0, "comparisons": 0.0,
                }
            acc["tasks"] += tasks
            acc["elements"] += elements
            acc["comparisons"] += comparisons

    # -- export helpers ----------------------------------------------------

    def pe_events(self) -> list[tuple[int, int, float, float]]:
        """Flattened ``(pe, level, start, end)`` events of every activity."""
        out: list[tuple[int, int, float, float]] = []
        with self._lock:
            activities = list(self.activities)
        for trace in activities:
            for e in trace.events:
                out.append((e.pe, e.level, e.start, e.end))
        return out


def current() -> Observation | None:
    """The active observation of this context, or None when disabled."""
    return _ACTIVE.get()


def enabled() -> bool:
    """True when an observation is active in this context."""
    return _ACTIVE.get() is not None


@contextmanager
def observe(
    observation: Observation | None = None,
) -> Iterator[Observation]:
    """Enable observability for the scope of the ``with`` block."""
    ob = observation or Observation()
    token = _ACTIVE.set(ob)
    try:
        yield ob
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Record a span on the current observation; no-op when disabled."""
    ob = _ACTIVE.get()
    if ob is None:
        yield None
        return
    with ob.tracer.span(name, **attrs) as sp:
        yield sp
