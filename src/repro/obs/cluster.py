"""Cluster-wide tracing plumbing: trace contexts over the comm layer.

PR 3's tracer stops at the process-tree boundary: the service already
stitches worker-*process* spans back under the job span via
:meth:`~repro.obs.tracing.Tracer.ingest`, but a sharded query crosses a
*comm* boundary (inproc or tcp pickle frames) where nothing carried the
trace.  This module is the small, transport-agnostic piece that closes
the gap:

* :class:`TraceContext` — the picklable trace envelope a coordinator
  attaches to a ``query`` frame: trace id, the parent (scatter) span id
  in the coordinator's id space, and the coordinator's wall-clock
  anchor.  Shards never interpret the parent id — re-parenting happens
  coordinator-side on ingest — but they stamp it (plus their measured
  clock skew vs the anchor) onto their root span for diagnostics.
* :func:`collect_job_spans` — given a shard service's finished spans,
  extract exactly one job's span tree (the ``service.job`` root whose
  ``job_id`` matches, plus every descendant).  This is what a
  :class:`~repro.cluster.worker.ShardWorker` ships home in the reply
  envelope; the coordinator re-anchors the batch onto the scatter
  span's timeline so all shards render in coordinator time.

Everything here is data-shaping over plain dataclasses: no locks, no
transport knowledge, trivially testable.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Sequence

from .tracing import Span

__all__ = ["TraceContext", "collect_job_spans", "new_trace_id"]

#: span name of the service-side job root (the shard-tree anchor)
JOB_ROOT_SPAN = "service.job"


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4, W3C-trace-context sized)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """The trace envelope carried inside a comm ``query`` frame.

    ``anchor`` is the coordinator's ``time.time()`` at dispatch; a shard
    computes ``skew = time.time() - anchor`` on receipt.  Wall-clock
    skew is diagnostic only — span re-anchoring uses the scatter span's
    ``perf_counter`` timeline, never wall clocks.
    """

    trace_id: str
    parent_span_id: int | None = None
    anchor: float = 0.0

    def skew(self, now: float | None = None) -> float:
        """Receiver-side wall-clock offset vs the coordinator anchor."""
        return (time.time() if now is None else now) - self.anchor


def collect_job_spans(
    spans: Sequence[Span], job_id: int | str
) -> list[Span]:
    """Extract one job's span tree from a service tracer's history.

    Roots are ``service.job`` spans whose ``job_id`` attribute matches;
    every span reachable from a root through parent links is included,
    in the original (finish-order) sequence.  Spans belonging to other
    jobs — a busy shard interleaves many — are left behind.
    """
    by_id = {sp.span_id: sp for sp in spans}
    roots = {
        sp.span_id
        for sp in spans
        if sp.name == JOB_ROOT_SPAN and sp.attrs.get("job_id") == job_id
    }
    if not roots:
        return []
    out: list[Span] = []
    membership: dict[int, bool] = {}

    def belongs(span_id: int) -> bool:
        seen: list[int] = []
        cur: int | None = span_id
        result = False
        while cur is not None:
            if cur in membership:
                result = membership[cur]
                break
            if cur in roots:
                result = True
                break
            seen.append(cur)
            parent = by_id.get(cur)
            cur = parent.parent_id if parent is not None else None
        for sid in seen:
            membership[sid] = result
        return result

    for sp in spans:
        if belongs(sp.span_id):
            out.append(sp)
    return out
