"""Structured span tracing with contextvars-based propagation.

A :class:`Span` is one named, timed piece of work with free-form
attributes; a :class:`Tracer` collects finished spans.  The *current*
span is tracked in a :mod:`contextvars` variable, so nesting follows the
call stack automatically — across threads each thread sees its own stack,
and the service layer stitches worker-process spans back under the
service-side job span with :meth:`Tracer.ingest`.

Spans are plain picklable dataclasses: a worker process records them
locally, ships them home inside the job's
:class:`~repro.obs.profile.ExecutionProfile`, and the service re-parents
them without loss.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

__all__ = ["Span", "Tracer", "current_span"]

#: the innermost open span of the current execution context
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> "Span | None":
    """The innermost open span of this context (None outside any span)."""
    return _CURRENT_SPAN.get()


@dataclass
class Span:
    """One timed operation; ``start``/``end`` are ``perf_counter`` seconds."""

    name: str
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    end: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class Tracer:
    """Collects finished spans; hands out ids; thread-safe."""

    def __init__(
        self, clock=time.perf_counter, max_spans: int | None = None
    ) -> None:
        self._clock = clock
        self._ids = itertools.count(1)
        #: finished spans; bounded when ``max_spans`` is set so a
        #: long-lived traced service keeps only the most recent history
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child of the context's current span for the duration."""
        parent = _CURRENT_SPAN.get()
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=self._clock(),
            attrs=dict(attrs),
        )
        token = _CURRENT_SPAN.set(sp)
        try:
            yield sp
        finally:
            _CURRENT_SPAN.reset(token)
            sp.end = self._clock()
            with self._lock:
                self._spans.append(sp)

    def start_span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Span:
        """Manually open a span (for work spanning callbacks/threads).

        The span is *not* made the context's current span; close it with
        :meth:`end_span`.
        """
        return Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=self._clock(),
            attrs=dict(attrs),
        )

    def end_span(self, span: Span) -> None:
        span.end = self._clock()
        with self._lock:
            self._spans.append(span)

    # -- access ------------------------------------------------------------

    def finished(self) -> list[Span]:
        """A point-in-time copy of every finished span."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def ingest(
        self,
        spans: Sequence[Span],
        parent: Span | None = None,
        align_to: float | None = None,
    ) -> list[Span]:
        """Adopt foreign spans (e.g. from a worker process).

        Ids are remapped into this tracer's id space with the internal
        parent/child structure preserved; spans whose parent is not in the
        batch become children of ``parent``.  ``align_to`` shifts the whole
        batch so its earliest start lands there — worker processes have
        their own ``perf_counter`` origin, so absolute times from another
        process are meaningless until re-anchored.
        """
        if not spans:
            return []
        id_map = {sp.span_id: next(self._ids) for sp in spans}
        shift = 0.0
        if align_to is not None:
            shift = align_to - min(sp.start for sp in spans)
        adopted: list[Span] = []
        parent_id = parent.span_id if parent is not None else None
        for sp in spans:
            adopted.append(
                Span(
                    name=sp.name,
                    span_id=id_map[sp.span_id],
                    parent_id=id_map.get(sp.parent_id, parent_id)
                    if sp.parent_id is not None
                    else parent_id,
                    start=sp.start + shift,
                    end=sp.end + shift,
                    attrs=dict(sp.attrs),
                )
            )
        with self._lock:
            self._spans.extend(adopted)
        return adopted
