"""Metrics: counters, gauges and fixed-bucket histograms in one registry.

A :class:`MetricsRegistry` is the process-local analogue of a Prometheus
client: metrics are created on first use, keyed by ``(name, labels)``,
thread-safe to update, and exposable either as a flat ``snapshot()`` dict
(for tests and ``ServiceStats``) or as Prometheus text exposition
(``render_prometheus()``) ready to be scraped or dumped by the CLI.

The registry is deliberately dependency-free — no client library to
install, nothing to configure — and cheap enough that the query service
always carries one.  Hot paths (per-task simulator loops) never touch it;
they are guarded by the tracing context in :mod:`repro.obs.context`.
"""

from __future__ import annotations

import threading
from typing import Iterable

from .summary import DEFAULT_PERCENTILES, percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: default histogram buckets (seconds) — tuned for query latencies that
#: range from sub-millisecond cache hits to multi-second event-driven runs
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format.

    Backslash, double-quote and newline are the three characters the
    exposition format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labels: LabelItems) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name + _label_suffix(self.labels), self._value)]


class Gauge:
    """A value that can go up and down (queue depth, in-flight jobs)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name + _label_suffix(self.labels), self._value)]


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= ``v``
    plus the implicit ``+Inf`` bucket; ``quantile(q)`` answers with the
    upper bound of the first bucket containing the requested rank — a
    coarse but monotone estimate good enough for dashboards.  Exact
    windowed percentiles live in :class:`repro.obs.summary.Window`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def raw_counts(self) -> tuple[int, ...]:
        """Non-cumulative per-bucket counts; the last slot is ``+Inf``.

        This is the mergeable representation: two histograms with the
        same bounds federate by summing these slot-wise (never by
        combining quantile estimates).
        """
        with self._lock:
            return tuple(self._counts)

    def add_counts(
        self, counts: Iterable[int], sum_: float, count: int
    ) -> None:
        """Merge another histogram's raw per-bucket counts into this one.

        ``counts`` must be non-cumulative with the same length as
        :meth:`raw_counts` (i.e. the bucket bounds must match).
        """
        added = [int(c) for c in counts]
        if len(added) != len(self._counts):
            raise ValueError(
                f"bucket mismatch merging into {self.name!r}: "
                f"got {len(added)} slots, have {len(self._counts)}"
            )
        if any(c < 0 for c in added) or count < 0:
            raise ValueError("histogram merge counts must be >= 0")
        with self._lock:
            for i, c in enumerate(added):
                self._counts[i] += c
            self._sum += float(sum_)
            self._count += int(count)

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative count per upper bound (``inf`` for the last)."""
        with self._lock:
            counts = list(self._counts)
        cumulative: dict[float, int] = {}
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            cumulative[bound] = running
        cumulative[float("inf")] = running + counts[-1]
        return cumulative

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = max(1, round(q * total))
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            if running >= rank:
                return bound
        return self.bounds[-1]  # +Inf bucket: report the largest finite bound

    def samples(self) -> list[tuple[str, float]]:
        suffix = _label_suffix(self.labels)
        out: list[tuple[str, float]] = []
        for bound, cum in self.bucket_counts().items():
            le = "+Inf" if bound == float("inf") else f"{bound:g}"
            extra = (
                self.labels + (("le", le),)
                if suffix
                else (("le", le),)
            )
            out.append(
                (f"{self.name}_bucket" + _label_suffix(extra), float(cum))
            )
        out.append((f"{self.name}_sum" + suffix, self._sum))
        out.append((f"{self.name}_count" + suffix, float(self._count)))
        return out


class MetricsRegistry:
    """Thread-safe get-or-create home for every metric in one process."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], object] = {}
        self._help: dict[str, str] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_: str, labels: dict,
                       **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind}, "
                        f"cannot re-register as {cls.kind}"
                    )
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
                if help_:
                    self._help.setdefault(name, help_)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help_: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help_, labels)

    def gauge(self, name: str, help_: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help_, labels)

    def histogram(
        self,
        name: str,
        help_: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_, labels, buckets=buckets
        )

    def set_state_gauge(
        self,
        name: str,
        help_: str,
        current: str,
        states: Iterable[str],
        **labels: str,
    ) -> None:
        """Export an enum as a Prometheus StateSet-style gauge family.

        One gauge per state (label ``state=<s>``) holding 1 for the
        current state and 0 for every other — the convention dashboards
        use to render breaker / health state machines without magic
        numbers.  Used by the resilience layer for breaker and service
        health states.
        """
        for state in states:
            self.gauge(name, help_, state=state, **labels).set(
                1.0 if state == current else 0.0
            )

    def __len__(self) -> int:
        return len(self._metrics)

    def iter_metrics(self) -> list[object]:
        """Stable-ordered list of every live metric object."""
        return self._sorted_metrics()

    def _sorted_metrics(self) -> list[object]:
        with self._lock:
            return [
                m for _, m in sorted(self._metrics.items(),
                                     key=lambda kv: kv[0])
            ]

    def snapshot(self) -> dict[str, float]:
        """Flat ``{"name{label=...}": value}`` view of every metric."""
        out: dict[str, float] = {}
        for metric in self._sorted_metrics():
            for sample_name, value in metric.samples():
                out[sample_name] = value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in self._sorted_metrics():
            name = metric.name
            if name not in seen_header:
                seen_header.add(name)
                help_ = self._help.get(name, "")
                if help_:
                    lines.append(f"# HELP {name} {_escape_help(help_)}")
                lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, value in metric.samples():
                lines.append(f"{sample_name} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def percentile_of(self, samples, pct: float) -> float:
        """Convenience passthrough to the shared nearest-rank helper."""
        return percentile(samples, pct)
