"""Declarative SLOs with error-budget burn rates over rolling windows.

An :class:`SLO` states an objective — "p99 query latency <= 250 ms" or
"error rate <= 1%" — and :class:`SLOTracker` evaluates every registered
objective against the shared :class:`~repro.obs.summary.Window` of
recent samples.  Two kinds:

* ``latency`` — met when the ``percentile``-th percentile of recent
  latencies is <= ``target`` seconds.  The error budget is the fraction
  of requests *allowed* to exceed the target (``1 - percentile/100``);
  the burn rate is the observed slow fraction divided by that allowance.
* ``error_rate`` — met when the fraction of failed requests is <=
  ``target``; the budget is ``target`` itself and the burn rate is
  ``observed / target``.
* ``availability`` — met when the fraction of *successful* requests is
  >= ``target`` (a target like 0.999 is "three nines over the window");
  the budget is the allowed failure fraction ``1 - target`` and the
  burn rate is the observed failure fraction divided by it.  The
  replicated cluster tracks this one: failover's whole job is keeping
  it met while individual replicas die.

A burn rate of 1.0 means the budget is being consumed exactly as fast
as it accrues; > 1.0 means the objective is being violated over the
window.  The tracker is the hook ROADMAP item 4's admission control
will consume: :meth:`SLOTracker.evaluate` is cheap (one percentile over
a bounded window per latency SLO) and side-effect free, so schedulers
can poll it per decision.

The cluster :class:`~repro.cluster.coordinator.Coordinator` feeds one
tracker from its scatter/gather path and surfaces the statuses as the
``slo`` section of :class:`~repro.cluster.coordinator.ClusterHealth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .summary import Window, percentile

__all__ = [
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "DEFAULT_SLOS",
    "AVAILABILITY_SLO",
    "REPLICATED_SLOS",
    "statuses_to_dict",
]

_KINDS = ("latency", "error_rate", "availability")


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``kind="latency"``: ``target`` is seconds, ``percentile`` picks the
    rank (e.g. 99.0 → p99 <= target, 1% allowed over budget).
    ``kind="error_rate"``: ``target`` is the allowed failure fraction in
    (0, 1); ``percentile`` is ignored.
    ``kind="availability"``: ``target`` is the required success fraction
    in (0, 1), e.g. 0.999; ``percentile`` is ignored.
    """

    name: str
    kind: str
    target: float
    percentile: float = 99.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.target <= 0:
            raise ValueError(f"SLO target must be > 0, got {self.target}")
        if self.kind in ("error_rate", "availability") and self.target >= 1:
            raise ValueError(
                f"{self.kind} target must be < 1, got {self.target}"
            )
        if self.kind == "latency" and not 0 < self.percentile < 100:
            raise ValueError(
                f"latency percentile must be in (0, 100), "
                f"got {self.percentile}"
            )

    @property
    def budget_fraction(self) -> float:
        """Fraction of requests allowed to violate the objective."""
        if self.kind == "latency":
            return 1.0 - self.percentile / 100.0
        if self.kind == "availability":
            return 1.0 - self.target
        return self.target


@dataclass(frozen=True)
class SLOStatus:
    """Point-in-time evaluation of one SLO (picklable, JSON-friendly)."""

    name: str
    kind: str
    target: float
    observed: float
    met: bool
    bad_fraction: float
    budget_fraction: float
    burn_rate: float
    samples: int

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "observed": self.observed,
            "met": self.met,
            "bad_fraction": self.bad_fraction,
            "budget_fraction": self.budget_fraction,
            "burn_rate": self.burn_rate,
            "samples": self.samples,
        }

    def line(self) -> str:
        state = "OK " if self.met else "VIOLATED"
        if self.kind == "latency":
            detail = f"observed={self.observed * 1e3:.1f}ms " \
                     f"target={self.target * 1e3:.1f}ms"
        else:
            detail = f"observed={self.observed:.2%} target={self.target:.2%}"
        return (
            f"{self.name}: {state} {detail} "
            f"burn={self.burn_rate:.2f}x n={self.samples}"
        )


#: conservative defaults for the cluster coordinator: interactive-ish
#: latency plus a 1% error budget
DEFAULT_SLOS = (
    SLO(name="query_latency_p99", kind="latency", target=2.0,
        percentile=99.0),
    SLO(name="query_error_rate", kind="error_rate", target=0.01),
)

#: the replicated cluster's headline objective: queries keep answering
#: (fully, not partially) while individual replicas die
AVAILABILITY_SLO = SLO(
    name="query_availability", kind="availability", target=0.999
)

#: what a coordinator with replica groups tracks by default
REPLICATED_SLOS = DEFAULT_SLOS + (AVAILABILITY_SLO,)


class SLOTracker:
    """Evaluate a set of SLOs over bounded windows of recent requests.

    ``record(seconds, ok=...)`` is called once per finished request;
    ``evaluate()`` returns ``{slo_name: SLOStatus}``.  With no samples
    every objective is trivially met (burn rate 0) — an idle service has
    not burned budget.
    """

    def __init__(
        self,
        slos: Iterable[SLO] = DEFAULT_SLOS,
        window: int = 1024,
    ) -> None:
        self.slos = tuple(slos)
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self._latency = Window(window)
        self._errors = Window(window)

    def record(self, seconds: float, ok: bool = True) -> None:
        self._latency.add(float(seconds))
        self._errors.add(0.0 if ok else 1.0)

    def _evaluate_one(self, slo: SLO) -> SLOStatus:
        if slo.kind == "latency":
            samples = self._latency.values()
            observed = percentile(samples, slo.percentile)
            bad = (
                sum(1 for s in samples if s > slo.target) / len(samples)
                if samples
                else 0.0
            )
            met = observed <= slo.target
        elif slo.kind == "availability":
            samples = self._errors.values()
            bad = sum(samples) / len(samples) if samples else 0.0
            observed = 1.0 - bad
            met = observed >= slo.target
        else:
            samples = self._errors.values()
            observed = sum(samples) / len(samples) if samples else 0.0
            bad = observed
            met = observed <= slo.target
        budget = slo.budget_fraction
        burn = bad / budget if samples else 0.0
        return SLOStatus(
            name=slo.name,
            kind=slo.kind,
            target=slo.target,
            observed=observed,
            met=met,
            bad_fraction=bad,
            budget_fraction=budget,
            burn_rate=burn,
            samples=len(samples),
        )

    def evaluate(self) -> dict[str, SLOStatus]:
        return {slo.name: self._evaluate_one(slo) for slo in self.slos}

    def violated(self) -> list[SLOStatus]:
        return [st for st in self.evaluate().values() if not st.met]

    def summary(self) -> str:
        return "\n".join(st.line() for st in self.evaluate().values())


def statuses_to_dict(
    statuses: Mapping[str, SLOStatus],
) -> dict[str, dict[str, object]]:
    """JSON-friendly form of an ``evaluate()`` result."""
    return {name: st.to_dict() for name, st in statuses.items()}
