"""Flight recorder: a bounded ring of structured job-lifecycle events.

Metrics tell you *how much*; traces tell you *where time went*; the
flight recorder tells you *what happened, in order* — the last N
submit / dispatch / retry / shed / breaker-trip / shard-kill events,
cheap enough to record unconditionally (one deque append per event) and
bounded so an always-on recorder can never grow without limit.

When something goes wrong (cluster health degrades, a chaos kill fires)
the recorder dumps itself to a JSON file — the black-box-after-the-crash
workflow: the dump for a killed shard shows exactly which jobs were in
flight, which breaker tripped, and when the coordinator noticed.

Automatic dumps are written only when a directory has been configured
(the ``REPRO_FLIGHT_DIR`` environment variable or an explicit
``flight_dir=``) so routine chaos *tests* don't litter the working
tree; manual :meth:`FlightRecorder.dump` always works.  Each distinct
``reason`` dumps at most once per recorder, so a flapping health check
cannot spam the disk.

Surfaced via ``python -m repro top`` (live dashboard) and
``python -m repro flight --dump``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

__all__ = ["FlightEvent", "FlightRecorder", "FLIGHT_DIR_ENV"]

#: environment variable naming the directory for automatic dumps
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: default ring capacity — enough to cover the interesting window around
#: an incident without unbounded growth
DEFAULT_CAPACITY = 2048


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event: wall-clock timestamp, kind, structured data."""

    ts: float
    kind: str
    data: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {"ts": self.ts, "kind": self.kind, **dict(self.data)}


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`FlightEvent`\\ s."""

    def __init__(
        self,
        name: str = "service",
        capacity: int = DEFAULT_CAPACITY,
        *,
        flight_dir: str | Path | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._flight_dir = flight_dir
        self._clock = clock
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        self._dumped_reasons: set[str] = set()
        self._dumps: list[Path] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------ record
    def record(self, kind: str, **data: Any) -> FlightEvent:
        event = FlightEvent(ts=self._clock(), kind=kind, data=data)
        with self._lock:
            self._events.append(event)
        return event

    def events(self, kind: str | None = None) -> list[FlightEvent]:
        with self._lock:
            events = list(self._events)
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """``{kind: occurrences}`` over the current ring contents."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self.events())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dumped_reasons.clear()

    # -------------------------------------------------------------- dump
    def to_payload(self, reason: str | None = None) -> dict[str, Any]:
        return {
            "recorder": self.name,
            "capacity": self.capacity,
            "dumped_at": self._clock(),
            "reason": reason,
            "events": [e.to_dict() for e in self.events()],
        }

    @property
    def flight_dir(self) -> Path | None:
        """Directory for automatic dumps, or None when unconfigured."""
        if self._flight_dir is not None:
            return Path(self._flight_dir)
        env = os.environ.get(FLIGHT_DIR_ENV)
        return Path(env) if env else None

    @property
    def dumps(self) -> list[Path]:
        """Paths written by this recorder (manual and automatic)."""
        with self._lock:
            return list(self._dumps)

    def dump(
        self, path: str | Path | None = None, *, reason: str | None = None
    ) -> Path:
        """Write the ring to JSON; default path is ``flight-<name>.json``
        in the configured flight dir (or the current directory)."""
        if path is None:
            base = self.flight_dir or Path(".")
            path = base / f"flight-{self.name}.json"
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(reason), indent=2, sort_keys=True)
            + "\n"
        )
        with self._lock:
            self._dumps.append(target)
        return target

    def auto_dump(self, reason: str) -> Path | None:
        """Dump once per distinct ``reason``, only when a flight dir is
        configured.  Returns the written path, or None when skipped."""
        if self.flight_dir is None:
            return None
        with self._lock:
            if reason in self._dumped_reasons:
                return None
            self._dumped_reasons.add(reason)
        self.record("dump", reason=reason)
        safe = "".join(
            c if c.isalnum() or c in "-_." else "-" for c in reason
        )
        return self.dump(
            self.flight_dir / f"flight-{self.name}-{safe}.json",
            reason=reason,
        )
