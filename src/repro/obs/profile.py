"""The :class:`ExecutionProfile`: "where did this query's time go".

A profile is assembled at an observation boundary (the pool worker, the
CLI, or :meth:`XSetAccelerator.profile`) from the run's
:class:`~repro.sim.report.SimReport` plus whatever the active
:class:`~repro.obs.context.Observation` collected — per-level task and
intersection-element totals from the SIU models, memory-hierarchy hit
counts, named stage wall times, the span tree and the PE activity
timeline.  It is a plain picklable dataclass, so process-pool workers
attach it to the report they return and the service aggregates profiles
without any extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .summary import summarize
from .tracing import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.report import SimReport
    from .context import Observation

__all__ = ["ExecutionProfile", "build_profile"]


@dataclass
class ExecutionProfile:
    """Everything observed about one query's execution."""

    engine: str = ""
    graph: str = ""
    pattern: str = ""
    wall_seconds: float = 0.0
    #: wall seconds per named stage (host prefix, engine run, ...)
    stages: dict[str, float] = field(default_factory=dict)
    #: executed tasks per search-tree level
    level_tasks: dict[int, int] = field(default_factory=dict)
    #: intersection elements (stream words) consumed per level
    level_elements: dict[int, int] = field(default_factory=dict)
    #: comparator work per level
    level_comparisons: dict[int, int] = field(default_factory=dict)
    #: memory-hierarchy outcome of the run
    cache: dict[str, float] = field(default_factory=dict)
    #: headline counters copied off the report
    counters: dict[str, float] = field(default_factory=dict)
    #: finished spans recorded during the run (worker-local id space)
    spans: list[Span] = field(default_factory=list)
    #: flattened PE activity events ``(pe, level, start_cycle, end_cycle)``
    pe_events: list[tuple[int, int, float, float]] = field(
        default_factory=list
    )
    num_pes: int = 0
    sius_per_pe: int = 0

    # -- derived views -----------------------------------------------------

    @property
    def levels(self) -> tuple[int, ...]:
        keys = set(self.level_tasks) | set(self.level_elements)
        return tuple(sorted(keys))

    def cache_hit_rate(self, tier: str) -> float:
        """Hit rate of ``"private"`` or ``"shared"`` (0.0 when untouched)."""
        hits = self.cache.get(f"{tier}_hits", 0.0)
        misses = self.cache.get(f"{tier}_misses", 0.0)
        total = hits + misses
        return hits / total if total else 0.0

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Duration summaries (shared percentile math) grouped by name."""
        groups: dict[str, list[float]] = {}
        for sp in self.spans:
            groups.setdefault(sp.name, []).append(sp.duration)
        return {name: summarize(vals) for name, vals in
                sorted(groups.items())}


def build_profile(
    report: "SimReport",
    observation: "Observation",
    engine: str = "",
) -> ExecutionProfile:
    """Assemble the profile of one finished run."""
    levels = observation.levels
    cache = {
        "private_hits": float(report.private_hits),
        "private_misses": float(report.private_misses),
        "shared_hits": float(report.shared_hits),
        "shared_misses": float(report.shared_misses),
        "dram_bytes": float(report.dram_bytes),
    }
    counters = {
        "embeddings": float(report.embeddings),
        "cycles": float(report.cycles),
        "host_cycles": float(report.host_cycles),
        "tasks": float(report.tasks),
        "set_ops": float(report.set_ops),
        "comparisons": float(report.comparisons),
        "words_in": float(report.words_in),
        "words_out": float(report.words_out),
        "siu_busy_cycles": float(report.siu_busy_cycles),
    }
    pe_events = observation.pe_events()
    num_pes = max((a.num_pes for a in observation.activities), default=0)
    sius = max((a.sius_per_pe for a in observation.activities), default=0)
    return ExecutionProfile(
        engine=engine,
        graph=report.graph_name,
        pattern=report.pattern_name,
        wall_seconds=report.wall_seconds,
        stages=dict(observation.stages),
        level_tasks={
            lv: int(acc["tasks"]) for lv, acc in sorted(levels.items())
        },
        level_elements={
            lv: int(acc["elements"]) for lv, acc in sorted(levels.items())
        },
        level_comparisons={
            lv: int(acc["comparisons"]) for lv, acc in sorted(levels.items())
        },
        cache=cache,
        counters=counters,
        spans=observation.tracer.finished(),
        pe_events=pe_events,
        num_pes=num_pes,
        sius_per_pe=sius,
    )
