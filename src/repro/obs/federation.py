"""Metrics federation: ship compact deltas, merge under a ``shard`` label.

A cluster has one :class:`~repro.obs.metrics.MetricsRegistry` per shard
service plus one in the coordinator — N scrape targets for one logical
system.  Federation folds them into a single registry the coordinator
can expose:

* :class:`MetricsSnapshot` — a picklable, compact description of what
  changed in a registry since the last ship: counter *deltas*, gauge
  *absolutes*, histogram *bucket-count deltas* (never quantiles).  Reply
  envelopes on the comm layer carry one of these per ``query``/``health``
  call, so federation costs one small tuple-of-tuples per round trip
  rather than a full registry pickle.
* :class:`MetricsDeltaTracker` — the shard-side bookkeeper that diffs
  the live registry against the last shipped state.  Deltas compose:
  applying every snapshot a shard ever shipped reproduces its registry
  exactly, no matter how the round trips interleave.
* :class:`FederatedMetrics` — the coordinator-side merge target.  Every
  applied series gains a ``shard=<name>`` label; histograms are *also*
  merged into a ``shard="all"`` aggregate by summing raw fixed-bucket
  counts — the only statistically sound way to combine distributions
  (percentile-of-percentiles is not a percentile).

The coordinator's own registry federates through the same path under
``shard="coordinator"``, so ``Coordinator.metrics_text()`` is one valid
Prometheus exposition with every series attributed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .metrics import Counter, Gauge, Histogram, LabelItems, MetricsRegistry

__all__ = [
    "MetricsSnapshot",
    "MetricsDeltaTracker",
    "FederatedMetrics",
    "AGGREGATE_SHARD",
]

#: reserved shard label value for cross-shard histogram aggregates
AGGREGATE_SHARD = "all"

#: series: (name, labels, value)
_Series = tuple[str, LabelItems, float]
#: histogram series: (name, labels, bounds, raw bucket deltas, sum, count)
_HistSeries = tuple[
    str, LabelItems, tuple[float, ...], tuple[int, ...], float, int
]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Registry delta shipped in a comm reply envelope (picklable)."""

    counters: tuple[_Series, ...] = ()
    gauges: tuple[_Series, ...] = ()
    histograms: tuple[_HistSeries, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


class MetricsDeltaTracker:
    """Diff a live registry against the last shipped snapshot.

    Counters and histogram buckets ship as deltas (merge-safe under
    repeated application); gauges ship as absolutes whenever their value
    changed — a gauge is a statement of current state, not an increment.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._counters: dict[tuple[str, LabelItems], float] = {}
        self._gauges: dict[tuple[str, LabelItems], float] = {}
        self._hists: dict[
            tuple[str, LabelItems], tuple[tuple[int, ...], float, int]
        ] = {}
        self._lock = threading.Lock()

    def collect(self) -> MetricsSnapshot:
        """Snapshot everything that changed since the previous collect."""
        counters: list[_Series] = []
        gauges: list[_Series] = []
        hists: list[_HistSeries] = []
        with self._lock:
            for metric in self._registry.iter_metrics():
                key = (metric.name, metric.labels)
                if isinstance(metric, Counter):
                    value = metric.value
                    delta = value - self._counters.get(key, 0.0)
                    if delta != 0.0:
                        counters.append((metric.name, metric.labels, delta))
                        self._counters[key] = value
                elif isinstance(metric, Gauge):
                    value = metric.value
                    if key not in self._gauges or self._gauges[key] != value:
                        gauges.append((metric.name, metric.labels, value))
                        self._gauges[key] = value
                elif isinstance(metric, Histogram):
                    counts = metric.raw_counts()
                    total_sum, total_count = metric.sum, metric.count
                    prev = self._hists.get(
                        key, ((0,) * len(counts), 0.0, 0)
                    )
                    dcounts = tuple(
                        c - p for c, p in zip(counts, prev[0])
                    )
                    dcount = total_count - prev[2]
                    if dcount or any(dcounts):
                        hists.append(
                            (
                                metric.name,
                                metric.labels,
                                metric.bounds,
                                dcounts,
                                total_sum - prev[1],
                                dcount,
                            )
                        )
                        self._hists[key] = (counts, total_sum, total_count)
        return MetricsSnapshot(
            counters=tuple(counters),
            gauges=tuple(gauges),
            histograms=tuple(hists),
        )


class FederatedMetrics:
    """Merge per-shard snapshots into one shard-labelled registry."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()

    @staticmethod
    def _labels(labels: LabelItems, shard: str) -> dict[str, str]:
        out = dict(labels)
        out["shard"] = shard
        return out

    def apply(
        self,
        shard: str,
        snapshot: MetricsSnapshot | None,
        *,
        aggregate: bool = True,
    ) -> None:
        """Fold one shard's delta in; optionally feed the ``all`` lanes.

        ``aggregate=False`` is used for the coordinator's own registry —
        its series are attributed (``shard="coordinator"``) but kept out
        of the cross-shard histogram aggregate.
        """
        if snapshot is None or snapshot.empty:
            return
        with self._lock:
            for name, labels, delta in snapshot.counters:
                self.registry.counter(
                    name, **self._labels(labels, shard)
                ).inc(delta)
            for name, labels, value in snapshot.gauges:
                self.registry.gauge(
                    name, **self._labels(labels, shard)
                ).set(value)
            for name, labels, bounds, counts, sum_, count in (
                snapshot.histograms
            ):
                targets = [shard]
                if aggregate:
                    targets.append(AGGREGATE_SHARD)
                for target in targets:
                    self.registry.histogram(
                        name,
                        buckets=bounds,
                        **self._labels(labels, target),
                    ).add_counts(counts, sum_, count)

    def render(self) -> str:
        """Prometheus text exposition of the federated registry."""
        return self.registry.render_prometheus()

    def snapshot(self) -> dict[str, float]:
        return self.registry.snapshot()
