"""Logging configuration for the library and its CLI.

The library itself only ever creates module-level loggers
(``logging.getLogger(__name__)``) and never configures handlers — that is
the application's job.  :func:`configure_logging` is that job for the CLI
and the examples: it attaches one stream handler to the ``repro`` logger,
picking the level from (in order of precedence)

1. the ``--verbose`` flag count (``-v`` → INFO, ``-vv`` → DEBUG),
2. the ``REPRO_LOG`` environment variable (a level name like ``debug``
   or a number),
3. the default, WARNING.

Calling it twice replaces the handler instead of stacking duplicates, so
in-process tests can call it freely.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["configure_logging", "ENV_VAR"]

#: environment variable consulted for the default log level
ENV_VAR = "REPRO_LOG"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: marker attribute identifying the handler this module installed
_HANDLER_FLAG = "_repro_obs_handler"


def _level_from_env() -> int | None:
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    return level if isinstance(level, int) else None


def configure_logging(
    verbose: int = 0, stream=None
) -> int:
    """Configure the ``repro`` logger; returns the effective level."""
    level = _level_from_env()
    if level is None:
        level = logging.WARNING
    if verbose == 1:
        level = min(level, logging.INFO)
    elif verbose >= 2:
        level = min(level, logging.DEBUG)
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return level
