"""Shared summary math: the one nearest-rank percentile implementation.

Every percentile the repo reports — service latency summaries, histogram
quantile estimates, span-duration tables in profile renderings — goes
through :func:`percentile`, so all surfaces agree on edge-case semantics
(empty windows report 0, a single sample is every percentile of itself).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Sequence

__all__ = ["percentile", "summarize", "Window", "DEFAULT_PERCENTILES"]

#: percentiles reported by default summaries
DEFAULT_PERCENTILES = (50, 90, 99)


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty window).

    ``samples`` need not be sorted.  The rank is clamped into the valid
    index range, so ``pct=0`` returns the minimum and ``pct=100`` the
    maximum; a single-sample window returns that sample for every ``pct``.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


def summarize(
    samples: Sequence[float],
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ..., "count": n}`` over ``samples``.

    The shape matches what :class:`~repro.service.stats.LatencyRecorder`
    has always reported; ``count`` is a float for uniform rendering.
    """
    out = {f"p{g:g}": percentile(samples, g) for g in percentiles}
    out["count"] = float(len(samples))
    return out


class Window:
    """A bounded, thread-safe sample window (ring buffer semantics).

    Old samples are evicted once ``maxlen`` is reached, so summaries over a
    long-lived window describe *recent* behaviour, not the lifetime mix.
    """

    def __init__(self, maxlen: int) -> None:
        if maxlen < 1:
            raise ValueError(f"window length must be >= 1, got {maxlen}")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def add(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def maxlen(self) -> int:
        return self._samples.maxlen or 0

    def values(self) -> list[float]:
        """A point-in-time copy of the window's samples."""
        with self._lock:
            return list(self._samples)

    def summary(
        self, percentiles: Iterable[float] = DEFAULT_PERCENTILES
    ) -> dict[str, float]:
        return summarize(self.values(), percentiles)
