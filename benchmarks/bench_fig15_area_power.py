"""Figure 15: area & power breakdown of order-aware SIU vs SMA by width."""

from repro.analysis import format_table
from repro.hw import siu_area_power

from _common import emit, once

WIDTHS = (2, 4, 8, 16)


def _run():
    return {
        (kind, n): siu_area_power(kind, n)
        for kind in ("order-aware", "sma")
        for n in WIDTHS
    }


def test_fig15_area_power(benchmark):
    ap = once(benchmark, _run)
    rows = []
    for n in WIDTHS:
        oa, sma = ap[("order-aware", n)], ap[("sma", n)]
        rows.append(
            (
                n,
                f"{oa.input_mm2*1e3:.2f}/{oa.pipeline_mm2*1e3:.2f}/"
                f"{oa.output_mm2*1e3:.2f}",
                f"{sma.input_mm2*1e3:.2f}/{sma.pipeline_mm2*1e3:.2f}/"
                f"{sma.output_mm2*1e3:.2f}",
                f"{(1 - oa.total_mm2/sma.total_mm2)*100:.1f}%",
                f"{oa.total_mw:.2f}/{sma.total_mw:.2f}",
                f"{(1 - oa.total_mw/sma.total_mw)*100:.1f}%",
            )
        )
    text = format_table(
        ["N", "OA in/pipe/out (1e-3 mm^2)", "SMA in/pipe/out",
         "area saving", "power OA/SMA (mW)", "power saving"],
        rows,
        title="Figure 15 — Order-Aware SIU vs Systolic Merge Array",
    )
    text += ("\npaper: area savings 34.1% (N=2) to 62.4% (N=16); "
             "power savings up to 75.4% (N=16)")
    emit("fig15_area_power", text)

    area_savings = [
        1 - ap[("order-aware", n)].total_mm2 / ap[("sma", n)].total_mm2
        for n in WIDTHS
    ]
    power_savings = [
        1 - ap[("order-aware", n)].total_mw / ap[("sma", n)].total_mw
        for n in WIDTHS
    ]
    # savings are positive at every width and grow with N
    assert all(s > 0.25 for s in area_savings)
    assert area_savings == sorted(area_savings)
    assert power_savings == sorted(power_savings)
    # endpoint bands around the paper's numbers
    assert 0.25 < area_savings[0] < 0.55      # paper 34.1% at N=2
    assert 0.55 < area_savings[-1] < 0.85     # paper 62.4% at N=16
    assert 0.60 < power_savings[-1] < 0.85    # paper 75.4% at N=16
    # input/output cost is held constant between designs at each width
    for n in WIDTHS:
        assert ap[("order-aware", n)].input_mm2 == ap[("sma", n)].input_mm2
