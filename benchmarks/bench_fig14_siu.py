"""Figure 14: single-SIU end-to-end throughput — order-aware vs SMA vs merge.

Evaluates one PE with one SIU per design, all with BitmapCSR width 8 and
segment length 8, exactly as §7.4.1 configures the study.  Shape: the
order-aware SIU wins on average (paper: 1.64x over SMA, 1.9x over the merge
queue); merge queues do comparatively better on low-degree graphs (PP) and
the SMA comparatively better on throughput-bound dense workloads.
"""

from repro.analysis import format_table, geomean, plan_cache, run_workload
from repro.core import xset_default
from repro.patterns import PATTERNS

from _common import emit, once

DATASETS_SCALE = {"PP": 0.2, "WV": 0.12, "AS": 0.12, "YT": 0.06}
SIU_PATTERNS = ("3CF", "4CF", "DIA", "CYC")


def _config(kind: str):
    return xset_default(
        num_pes=1,
        sius_per_pe=1,
        siu_kind=kind,
        segment_width=8 if kind != "merge" else 1,
        bitmap_width=8,
        name=f"single-{kind}",
    )


def _run():
    out = {}
    for ds, scale in DATASETS_SCALE.items():
        for pat in SIU_PATTERNS:
            plan = plan_cache(PATTERNS[pat])
            cycles = {}
            for kind in ("order-aware", "sma", "merge"):
                report = run_workload(
                    ds, pat, config=_config(kind), scale=scale
                )
                cycles[kind] = report.cycles
            out[(ds, pat)] = cycles
            del plan
    return out


def test_fig14_order_aware_siu(benchmark):
    out = once(benchmark, _run)
    rows = []
    sma_ratio, merge_ratio = [], []
    for (ds, pat), cycles in out.items():
        r_sma = cycles["sma"] / cycles["order-aware"]
        r_merge = cycles["merge"] / cycles["order-aware"]
        sma_ratio.append(r_sma)
        merge_ratio.append(r_merge)
        rows.append((ds, pat, "1.00", f"{1/r_sma:.2f}", f"{1/r_merge:.2f}"))
    gm_sma = geomean(sma_ratio)
    gm_merge = geomean(merge_ratio)
    text = format_table(
        ["graph", "pattern", "order-aware", "SMA", "merge queue"],
        rows,
        title="Figure 14 — single-SIU performance normalised to order-aware"
              " (1 PE, 1 SIU, BitmapCSR b=8)",
    )
    text += (
        f"\norder-aware speedup geomeans: {gm_sma:.2f}x over SMA "
        f"(paper 1.64x), {gm_merge:.2f}x over merge queue (paper 1.9x)"
    )
    emit("fig14_siu", text)

    # the order-aware SIU wins on average against both
    assert gm_sma > 1.0
    assert gm_merge > 1.0
    # merge queues are least bad on the sparsest graph (latency-bound sets):
    # its worst ratios should come from the denser graphs
    pp_merge = geomean(
        out[("PP", p)]["merge"] / out[("PP", p)]["order-aware"]
        for p in SIU_PATTERNS
    )
    wv_merge = geomean(
        out[("WV", p)]["merge"] / out[("WV", p)]["order-aware"]
        for p in SIU_PATTERNS
    )
    assert pp_merge < wv_merge
