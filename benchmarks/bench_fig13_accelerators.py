"""Figure 13 + §7.3.2: X-SET vs FlexMiner / FINGERS / Shogun.

All four accelerators are simulated on the same workloads; speedups are
normalised to FlexMiner as in the paper's plot.  Shape assertions: X-SET
wins every geomean; the ranking FlexMiner < FINGERS ≤ Shogun < X-SET holds;
skewed graphs (YT) show the largest X-SET advantage; compute density
(performance per area) amplifies the win.
"""

from repro.analysis import format_table, geomean, plan_cache
from repro.baselines import compare_accelerators, compute_density_speedup
from repro.graph import load_dataset
from repro.patterns import PATTERNS

from _common import BENCH_SCALE, emit, once

DATASETS = ("PP", "WV", "AS", "MI", "YT")
ACCEL_PATTERNS = ("3CF", "4CF", "DIA", "TT")


def _run():
    results = {}
    for ds in DATASETS:
        graph = load_dataset(ds, scale=BENCH_SCALE[ds])
        for pat in ACCEL_PATTERNS:
            cmp = compare_accelerators(
                graph, PATTERNS[pat], plan=plan_cache(PATTERNS[pat])
            )
            results[(ds, pat)] = cmp
    return results


def test_fig13_accelerators(benchmark):
    results = once(benchmark, _run)
    rows = []
    speedups = {"xset": [], "fingers": [], "shogun": []}
    density = []
    for (ds, pat), cmp in results.items():
        over_flex = {
            s: cmp.speedup_over(s) for s in ("fingers", "shogun", "xset")
        }
        for s in speedups:
            speedups[s].append(over_flex[s])
        density.append(compute_density_speedup(cmp, "xset", "fingers"))
        rows.append(
            (
                ds,
                pat,
                "1.00x",
                f"{over_flex['fingers']:.2f}x",
                f"{over_flex['shogun']:.2f}x",
                f"{over_flex['xset']:.2f}x",
            )
        )
    gm = {s: geomean(v) for s, v in speedups.items()}
    gm_density = geomean(density)
    text = format_table(
        ["graph", "pattern", "FlexMiner", "FINGERS", "Shogun", "X-SET"],
        rows,
        title="Figure 13 — speedup normalised to FlexMiner",
    )
    text += (
        f"\ngeomeans over FlexMiner: FINGERS {gm['fingers']:.2f}x, "
        f"Shogun {gm['shogun']:.2f}x, X-SET {gm['xset']:.2f}x"
    )
    xset_vs = {
        "flexminer": gm["xset"],
        "fingers": gm["xset"] / gm["fingers"],
        "shogun": gm["xset"] / gm["shogun"],
    }
    text += (
        f"\nX-SET geomean speedups: vs FlexMiner {xset_vs['flexminer']:.2f}x"
        f" (paper 6.4x), vs FINGERS {xset_vs['fingers']:.2f}x (paper 3.6x),"
        f" vs Shogun {xset_vs['shogun']:.2f}x (paper 2.9x)"
    )
    text += (
        f"\ncompute density vs FINGERS: geomean {gm_density:.1f}x "
        "(paper 13.7x)"
    )
    emit("fig13_accelerators", text)

    # ranking: FlexMiner < FINGERS <= Shogun < X-SET on geomean
    assert 1.0 < gm["fingers"] <= gm["shogun"] * 1.1
    assert gm["xset"] > gm["shogun"]
    # X-SET wins against every baseline on geomean
    assert all(v > 1.0 for v in xset_vs.values())
    # skewed YT shows a larger X-SET-vs-FlexMiner win than sparse PP
    yt = geomean(
        results[("YT", p)].speedup_over("xset") for p in ACCEL_PATTERNS
    )
    pp = geomean(
        results[("PP", p)].speedup_over("xset") for p in ACCEL_PATTERNS
    )
    assert yt > pp
    # compute density amplifies the advantage (PE is ~3x smaller)
    assert gm_density > xset_vs["fingers"] * 2
