"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper:
it runs the experiment, prints the paper-style rows (run pytest with ``-s``
to see them live), writes them to ``benchmarks/results/<name>.txt``, and
asserts the *shape* findings the paper reports (who wins, roughly by how
much, where the crossovers are).

Dataset stand-ins are scaled per dataset so the whole suite completes at
laptop timescales; the exact scales used are printed into every result file
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: repo root — machine-readable benchmark artifacts (``BENCH_*.json``)
#: live here so the perf trajectory is diffable across PRs
REPO_ROOT = Path(__file__).parent.parent

#: per-dataset down-scale used by the end-to-end figures.  The large/skewed
#: stand-ins run at smaller scale because their difference-heavy patterns
#: (CYC/TT) blow up exactly as the paper's Table 5 shows.
BENCH_SCALE = {
    "PP": 0.25,
    "WV": 0.18,
    "AS": 0.18,
    "MI": 0.18,
    "YT": 0.08,
    "PA": 0.15,
    "LJ": 0.08,
}

#: end-to-end pattern set (5CF exercised separately by the host-split tests)
FIG_PATTERNS = ("3CF", "4CF", "CYC", "DIA", "TT")


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def bench_meta() -> dict:
    """Provenance stamp for benchmark artifacts.

    Records the git SHA the numbers came from, when they were taken, and
    how many cores the host had — without these, two BENCH files cannot
    be compared meaningfully across PRs or machines.  Git being absent
    (e.g. a source tarball) degrades the SHA to ``"unknown"`` rather
    than failing the run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "host_cpus": os.cpu_count() or 1,
    }


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark artifact at the repo root.

    Written as ``BENCH_<name>.json`` with sorted keys and a trailing
    newline so successive runs produce minimal, reviewable diffs.  Every
    artifact is stamped with :func:`bench_meta` provenance under
    ``"meta"`` (a caller-supplied ``meta`` key wins).
    """
    payload = {"meta": bench_meta(), **payload}
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulations are deterministic and expensive; statistical repetition
    would only burn time without changing the regenerated numbers.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
