"""Table 5: simulator execution time per dataset × pattern.

The paper reports wall-clock times of its cycle-accurate simulator (up to
9 days for 5CF on LiveJournal).  We report the wall time of this repository's
event-driven simulator on the scaled stand-ins, which is the quantity a user
budgeting a run cares about, and assert the same *ordering* phenomena: the
difference-heavy patterns (CYC, TT) and the skewed/large graphs dominate.
"""

from repro.analysis import format_table, run_workload

from _common import BENCH_SCALE, emit, once

DATASETS = ("PP", "WV", "AS", "YT")
PATTERNS5 = ("3CF", "4CF", "DIA", "CYC", "TT")


def _run_grid():
    wall = {}
    for ds in DATASETS:
        for pat in PATTERNS5:
            report = run_workload(ds, pat, scale=BENCH_SCALE[ds])
            wall[(ds, pat)] = (report.wall_seconds, report.tasks)
    return wall


def test_table5_simulator_time(benchmark):
    wall = once(benchmark, _run_grid)
    rows = [
        tuple(
            [pat]
            + [
                f"{wall[(ds, pat)][0]:.2f}s ({wall[(ds, pat)][1]})"
                for ds in DATASETS
            ]
        )
        for pat in PATTERNS5
    ]
    text = format_table(
        ["pattern"] + [f"{ds} (x{BENCH_SCALE[ds]})" for ds in DATASETS],
        rows,
        title="Table 5 — simulator wall time per run (tasks in parens)",
    )
    emit("table5_simtime", text)

    # the paper's ordering: CYC/TT are the most expensive pattern family on
    # every graph where difference sets blow up
    for ds in ("WV", "AS", "YT"):
        heavy = max(wall[(ds, "CYC")][1], wall[(ds, "TT")][1])
        assert heavy >= wall[(ds, "3CF")][1]
    # simulated task count, not wall noise, drives the cost
    big = max(wall.values(), key=lambda v: v[1])
    small = min(wall.values(), key=lambda v: v[1])
    assert big[0] >= small[0]
