"""Figure 18: sensitivity to private and shared cache capacity.

(a) Private cache 16→128 KB: restrictive patterns (cliques, diamond via IEP)
barely react, while the difference-heavy CYC/TT — whose large intermediate
candidate sets live in the private cache — gain substantially.
(b) Shared cache 1→8 MB: sensitivity is dataset-dependent; graphs whose
working set already fits (PP) stay flat while larger/skewed graphs keep
improving with capacity.
"""

from repro.analysis import format_table, geomean, run_workload
from repro.core import xset_default
from repro.patterns import PATTERNS

from _common import emit, once

# cache capacities are scaled ~8x down, matching the scaled stand-ins
# (the paper sweeps 32-128 KB private / 1-8 MB shared on full-size graphs)
PRIVATE_KB = (2, 4, 8, 16)
PRIVATE_CASES = {"3CF": 0.12, "DIA": 0.12, "CYC": 0.12, "TT": 0.12}
PRIVATE_DATASETS = ("WV", "YT")

SHARED_MB = (1 / 16, 1 / 8, 1 / 4, 1 / 2)
SHARED_DATASETS = {"PP": 0.3, "WV": 0.2, "LJ": 0.12}


def _run_private():
    out = {}
    for pat, scale in PRIVATE_CASES.items():
        for kb in PRIVATE_KB:
            cfg = xset_default(private_kb=kb, name=f"xset-priv{kb}")
            secs = [
                run_workload(ds, pat, config=cfg, scale=scale).seconds
                for ds in PRIVATE_DATASETS
            ]
            out[(pat, kb)] = geomean(secs)
    return out


def _run_shared():
    out = {}
    for ds, scale in SHARED_DATASETS.items():
        for mb in SHARED_MB:
            cfg = xset_default(shared_mb=mb, name=f"xset-shared{mb}")
            out[(ds, mb)] = run_workload(
                ds, "3CF", config=cfg, scale=scale
            ).seconds
    return out


def test_fig18a_private_cache(benchmark):
    out = once(benchmark, _run_private)
    rows = []
    gain = {}
    for pat in PRIVATE_CASES:
        speedups = [out[(pat, PRIVATE_KB[0])] / out[(pat, kb)] for kb in PRIVATE_KB]
        gain[pat] = out[(pat, PRIVATE_KB[0])] / out[(pat, PRIVATE_KB[-1])]
        rows.append(tuple([pat] + [f"{s:.2f}x" for s in speedups]))
    text = format_table(
        ["pattern"] + [f"{kb}KB" for kb in PRIVATE_KB],
        rows,
        title=f"Figure 18a — geomean speedup vs {PRIVATE_KB[0]}KB private cache (capacities scaled ~8x with the graphs)",
    )
    emit("fig18a_private_cache", text)

    # growing private cache never hurts
    for pat in PRIVATE_CASES:
        assert gain[pat] >= 0.98
    # difference-heavy patterns are the cache-sensitive ones
    heavy = max(gain["CYC"], gain["TT"])
    light = max(gain["3CF"], gain["DIA"])
    assert heavy >= light * 0.98


def test_fig18b_shared_cache(benchmark):
    out = once(benchmark, _run_shared)
    rows = []
    for ds in SHARED_DATASETS:
        speedups = [out[(ds, SHARED_MB[0])] / out[(ds, mb)] for mb in SHARED_MB]
        rows.append(tuple([ds] + [f"{s:.2f}x" for s in speedups]))
    text = format_table(
        ["graph"] + [f"{mb*1024:.0f}KB" for mb in SHARED_MB],
        rows,
        title="Figure 18b — 3CF speedup vs the smallest shared cache (capacities scaled ~8x with the graphs)",
    )
    emit("fig18b_shared_cache", text)

    # capacity never hurts
    for ds in SHARED_DATASETS:
        assert out[(ds, SHARED_MB[-1])] <= out[(ds, SHARED_MB[0])] * 1.02
    # the small PP working set is flatter than the large LJ one
    pp_gain = out[("PP", SHARED_MB[0])] / out[("PP", SHARED_MB[-1])]
    lj_gain = out[("LJ", SHARED_MB[0])] / out[("LJ", SHARED_MB[-1])]
    assert lj_gain >= pp_gain * 0.95
