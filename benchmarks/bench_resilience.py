"""Resilience overhead: the unarmed layer must be free and bit-exact.

The resilience layer's contract mirrors the obs layer's: with no
``FaultPlan`` armed and the default ``ResilienceConfig``, every hot-path
hook is one ``active() is None`` contextvar load, so counts and
simulated cycles must be byte-identical to a service with the layer
switched off entirely — and the per-query wall-clock overhead of the
bookkeeping that *does* run (breaker lookups, watchdog registration)
must stay within a small constant factor.

This benchmark runs the same workloads three ways — resilience disabled
(``ResilienceConfig.disabled()``), default (the normal case: enabled but
unarmed), and hardened with a fault plan armed whose specs all have
``rate=0`` (the layer fully wired, still selecting nothing) — asserts
every architectural number is identical across all three, and records
the wall-clock ratio.
"""

import time

from repro.analysis import format_table
from repro.graph.datasets import load_dataset
from repro.patterns.pattern import PATTERNS
from repro.resilience import FaultKind, FaultPlan, FaultSpec, ResilienceConfig
from repro.service import QueryService

from _common import BENCH_SCALE, emit, emit_json, once

WORKLOADS = (
    ("PP", "3CF", "event"),
    ("PP", "4CF", "batched"),
    ("WV", "3CF", "event"),
    ("WV", "TT", "batched"),
)

#: a fully-wired plan that never selects anything: the arming cost alone
NULL_PLAN = FaultPlan(seed=0, specs=(
    FaultSpec(site="worker.run", kind=FaultKind.CRASH, rate=0.0),
    FaultSpec(site="memory.stream", kind=FaultKind.STALL, rate=0.0),
))


def _run_profile(resilience, plan=None):
    reports = {}
    timings = {}
    with QueryService(mode="inline", resilience=resilience) as svc:
        if plan is not None:
            svc.arm_faults(plan)
        gids = {}
        for ds, pat, engine in WORKLOADS:
            if ds not in gids:
                graph = load_dataset(ds, scale=BENCH_SCALE[ds])
                gids[ds] = svc.register_graph(graph, graph_id=ds)
            t0 = time.perf_counter()
            report = svc.count(gids[ds], PATTERNS[pat], engine=engine,
                               use_cache=False)
            timings[(ds, pat, engine)] = time.perf_counter() - t0
            reports[(ds, pat, engine)] = report
        stats = svc.stats()
    return reports, timings, stats


def _run_all():
    disabled = _run_profile(ResilienceConfig.disabled())
    default = _run_profile(None)
    armed = _run_profile(
        ResilienceConfig.hardened(verify_fraction=0.0), plan=NULL_PLAN
    )
    return disabled, default, armed


def test_resilience_overhead(benchmark):
    disabled, default, armed = once(benchmark, _run_all)

    for _, _, stats in (disabled, default, armed):
        # nothing fired, nothing was shed, rerouted or cross-checked
        assert stats.faults_injected == 0
        assert stats.shed == stats.rerouted == stats.abandoned == 0
        assert stats.crosscheck_mismatches == 0
        assert stats.failed == 0

    table = []
    for key in disabled[0]:
        base = disabled[0][key]
        t_base = disabled[1][key]
        for label, (reports, timings, _) in (
            ("default", default), ("armed-null", armed)
        ):
            report = reports[key]
            # the contract: an unarmed layer never changes what was
            # computed or how long the simulated hardware took
            assert report.embeddings == base.embeddings, (key, label)
            assert report.cycles == base.cycles, (key, label)
            assert report.tasks == base.tasks, (key, label)
            assert report.set_ops == base.set_ops, (key, label)
            assert report.notes == {} == base.notes, (key, label)
        t_def = default[1][key]
        t_armed = armed[1][key]
        ds, pat, engine = key
        table.append(
            (f"{ds}/{pat}/{engine}", f"{base.embeddings}",
             f"{t_base * 1e3:.1f}ms", f"{t_def * 1e3:.1f}ms",
             f"{t_armed * 1e3:.1f}ms",
             f"{t_def / max(t_base, 1e-9):.2f}x")
        )
        # breaker/watchdog bookkeeping is per-job, not per-task: even
        # the worst case stays within a small constant factor
        assert t_def / max(t_base, 1e-9) < 3.0, (key, t_def, t_base)

    text = format_table(
        ["workload", "embeddings", "disabled", "default", "armed-null",
         "ratio"],
        table,
        title=(
            "Resilience overhead — counts/cycles identical, wall-clock "
            "ratio default vs disabled"
        ),
    )
    emit("resilience_overhead", text)
    emit_json("resilience", {
        "benchmark": "resilience_overhead",
        "harness_invocation": (
            "PYTHONPATH=src python -m pytest "
            "benchmarks/bench_resilience.py -q -s"
        ),
        "workloads": [
            {
                "dataset": ds,
                "pattern": pat,
                "engine": engine,
                "embeddings": disabled[0][(ds, pat, engine)].embeddings,
                "wall_seconds": {
                    "disabled": round(disabled[1][(ds, pat, engine)], 6),
                    "default": round(default[1][(ds, pat, engine)], 6),
                    "armed_null": round(armed[1][(ds, pat, engine)], 6),
                },
                "overhead_ratio_default": round(
                    default[1][(ds, pat, engine)]
                    / max(disabled[1][(ds, pat, engine)], 1e-9),
                    3,
                ),
            }
            for ds, pat, engine in WORKLOADS
        ],
        "counts_identical": True,
    })
