"""Service-layer throughput: worker-pool batch vs sequential `count()`.

A ≥16-job batch (8 patterns × 2 generated graphs) runs three ways:

1. sequentially through plain ``XSetAccelerator.count`` calls,
2. through the ``QueryService`` process pool (one job per pattern, the
   graph registered once and shipped to each worker a single time),
3. resubmitted against the warm result cache.

Counts must be byte-identical across all three.  On a multi-core runner
the pooled batch must beat sequential by ≥ 2x aggregate throughput; on
smaller machines the measured ratio is recorded without the assertion
(process-pool parallelism cannot beat sequential on one core).  The
cached wave must always be at least 10x faster than the engine wave.
"""

import os
import time

from repro.analysis import format_table
from repro.core.api import XSetAccelerator
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.service import QueryService

from _common import emit, emit_json, once

BATCH_PATTERNS = ("3CF", "4CF", "5CF", "TT", "CYC", "DIA", "WEDGE", "P3")
GRAPH_SEEDS = (3, 9)
NODES, DEGREE = 800, 25.0


def _graphs():
    return [
        erdos_renyi(NODES, DEGREE, seed=seed, name=f"er{NODES}-{seed}")
        for seed in GRAPH_SEEDS
    ]


def _run_all():
    graphs = _graphs()
    jobs = [(g, PATTERNS[name]) for g in graphs for name in BATCH_PATTERNS]
    accel = XSetAccelerator(engine="batched")

    t0 = time.perf_counter()
    sequential = [accel.count(g, p).embeddings for g, p in jobs]
    t_seq = time.perf_counter() - t0

    workers = os.cpu_count() or 1
    with QueryService(mode="process", max_workers=workers) as service:
        for g in graphs:
            service.register_graph(g)
        t0 = time.perf_counter()
        handles = [
            service.submit(g.name, p, engine="batched") for g, p in jobs
        ]
        pooled = [h.result(timeout=600).embeddings for h in handles]
        t_pool = time.perf_counter() - t0

        t0 = time.perf_counter()
        rerun = [
            service.submit(g.name, p, engine="batched") for g, p in jobs
        ]
        cached = [h.result(timeout=600).embeddings for h in rerun]
        t_cache = time.perf_counter() - t0
        hits = sum(1 for h in rerun if h.from_cache)
        stats = service.stats()

    return {
        "jobs": [(g.name, p.name) for g, p in jobs],
        "sequential": sequential,
        "pooled": pooled,
        "cached": cached,
        "t_seq": t_seq,
        "t_pool": t_pool,
        "t_cache": t_cache,
        "hits": hits,
        "workers": workers,
        "stats": stats.summary(),
    }


def test_service_throughput(benchmark):
    r = once(benchmark, _run_all)
    n = len(r["jobs"])
    speedup = r["t_seq"] / max(r["t_pool"], 1e-9)
    cache_speedup = r["t_pool"] / max(r["t_cache"], 1e-9)

    rows = [
        (f"{g}/{p}", str(seq), str(pool), str(hit))
        for (g, p), seq, pool, hit in zip(
            r["jobs"], r["sequential"], r["pooled"], r["cached"]
        )
    ]
    rows.append((
        f"aggregate ({n} jobs, {r['workers']} workers)",
        f"{r['t_seq']:.2f}s",
        f"{r['t_pool']:.2f}s ({speedup:.2f}x)",
        f"{r['t_cache']:.3f}s ({cache_speedup:.0f}x)",
    ))
    text = format_table(
        ["workload", "sequential", "pooled", "cached"],
        rows,
        title="Query service — batch throughput vs sequential count()",
    )
    emit("service_throughput", text + "\n\n" + r["stats"])
    emit_json("service", {
        "benchmark": "service_throughput",
        "harness_invocation": (
            "PYTHONPATH=src python -m pytest benchmarks/bench_service.py "
            "-q -s"
        ),
        "jobs": n,
        "workers": r["workers"],
        "wall_seconds": {
            "sequential": round(r["t_seq"], 6),
            "pooled": round(r["t_pool"], 6),
            "cached": round(r["t_cache"], 6),
        },
        "pool_speedup": round(speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "cache_hits": r["hits"],
        "counts_identical": (
            r["pooled"] == r["sequential"] == r["cached"]
        ),
    })

    # counts are byte-identical across every execution path
    assert r["pooled"] == r["sequential"]
    assert r["cached"] == r["sequential"]
    # the whole second wave is served from the result cache
    assert r["hits"] == n
    assert cache_speedup >= 10.0, (r["t_pool"], r["t_cache"])
    # pool parallelism needs cores; assert the 2x bar on multi-core runners
    if r["workers"] >= 4:
        assert speedup >= 2.0, (r["t_seq"], r["t_pool"])
