"""Cluster scaling: sharded scatter/gather vs a single shard.

A triangle-heavy generated graph is registered on local clusters of 1, 2
and 4 shards — each shard worker backed by a one-process pool, so *N*
shards give the batch *N* worker processes — and the same pattern batch
runs on each (caches off; every query recomputes).  Invariants:

* merged counts are byte-identical across every shard count and equal to
  the single-node engine's counts (exactly-once boundary accounting);
* on a ≥4-core runner, 4 shards deliver ≥ 2.5x the count-throughput of
  the 1-shard cluster.  On smaller machines the ratio is recorded in the
  artifact without the assertion — one core cannot run four engines at
  once.

The machine-readable trajectory lands in ``BENCH_cluster.json``.
"""

import os
import time

from repro.analysis import format_table
from repro.cluster import LocalCluster
from repro.core.config import xset_default
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.patterns.plan import build_plan
from repro.sim.host import run_on_soc

from _common import emit, emit_json, once

NODES, DEGREE, SEED = 1500, 30.0, 5
#: triangle/clique-shaped batch (the workloads sharding is meant to scale)
BATCH_PATTERNS = ("3CF", "TT")
REPEATS = 3
SHARD_COUNTS = (1, 2, 4)


def _run_all():
    graph = erdos_renyi(NODES, DEGREE, seed=SEED, name=f"er{NODES}")
    config = xset_default(engine="batched")
    batch = [PATTERNS[name] for name in BATCH_PATTERNS] * REPEATS

    reference = {
        name: run_on_soc(
            graph, build_plan(PATTERNS[name]), config
        ).embeddings
        for name in BATCH_PATTERNS
    }

    timings: dict[int, float] = {}
    counts: dict[int, list[int]] = {}
    for shards in SHARD_COUNTS:
        with LocalCluster(
            num_shards=shards,
            config=config,
            mode="process",
            max_workers=1,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            # warm-up: spin up every worker process and ship the graph
            coord.query(gid, batch[0], use_cache=False)
            t0 = time.perf_counter()
            counts[shards] = [
                coord.query(gid, p, use_cache=False).embeddings
                for p in batch
            ]
            timings[shards] = time.perf_counter() - t0
    return {
        "reference": reference,
        "counts": counts,
        "timings": timings,
        "batch": [p.name for p in batch],
        "cores": os.cpu_count() or 1,
    }


def test_cluster_scaling(benchmark):
    r = once(benchmark, _run_all)
    t1 = r["timings"][SHARD_COUNTS[0]]
    expected = [r["reference"][name] for name in r["batch"]]

    rows = []
    speedups = {}
    for shards in SHARD_COUNTS:
        t = r["timings"][shards]
        speedups[shards] = t1 / max(t, 1e-9)
        rows.append((
            f"{shards} shard(s)",
            f"{len(r['batch'])} queries",
            f"{t:.3f}s",
            f"{speedups[shards]:.2f}x",
            "yes" if r["counts"][shards] == expected else "NO",
        ))
    text = format_table(
        ["cluster", "batch", "wall", "throughput vs 1 shard",
         "counts exact"],
        rows,
        title=(
            f"Cluster scaling — er{NODES} (avg deg {DEGREE}), "
            f"{r['cores']} cores, process-mode shard workers"
        ),
    )
    emit("cluster_scaling", text)
    emit_json("cluster", {
        "benchmark": "cluster_scaling",
        "harness_invocation": (
            "PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py "
            "-q -s"
        ),
        "graph": {"nodes": NODES, "avg_degree": DEGREE, "seed": SEED},
        "batch": r["batch"],
        "cores": r["cores"],
        "reference_counts": r["reference"],
        "shards": [
            {
                "num_shards": shards,
                "wall_seconds": round(r["timings"][shards], 6),
                "throughput_vs_one_shard": round(speedups[shards], 3),
                "counts_identical": r["counts"][shards] == expected,
            }
            for shards in SHARD_COUNTS
        ],
    })

    # exactly-once semantics: every shard count reproduces the
    # single-node counts, byte-identical
    for shards in SHARD_COUNTS:
        assert r["counts"][shards] == expected, shards
    # scaling needs cores; assert the 2.5x bar only on multi-core runners
    if r["cores"] >= 4:
        assert speedups[4] >= 2.5, r["timings"]
