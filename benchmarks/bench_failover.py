"""Failover value: availability, recovery time, hedge tail-latency win.

Three chaos scenarios on generated graphs, all with byte-identical-count
checks against the single-node engine:

* **availability** — a 30-query workload loses a worker a third of the
  way in.  With ``replicas=1`` every post-kill query on the dead shard
  degrades to a partial result; with ``replicas=2`` the sibling absorbs
  the load and availability stays 100% with zero partial results.
* **recovery** — with a live health prober, how long from replica kill
  to eviction (routing cleanly around the corpse) and from revive to
  rejoin (graphs re-registered, replica serving again).
* **hedging** — a primary that stalls on 30% of jobs (injected HANG)
  gives the unhedged cluster a fat tail; hedged, the p95 collapses to
  roughly the hedge delay.  Same seeded fault plan both runs, so the
  comparison is apples-to-apples.

The machine-readable artifact lands in ``BENCH_failover.json``.
"""

import time

from repro.analysis import format_table
from repro.cluster import HedgePolicy, LocalCluster, RetryPolicy
from repro.core.config import xset_default
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.patterns.plan import build_plan
from repro.resilience import FaultKind, FaultPlan, FaultSpec
from repro.sim.host import run_on_soc

from _common import emit, emit_json, once

NODES, DEGREE, SEED = 300, 10.0, 5
PATTERN = "3CF"
WORKLOAD = 30           #: queries per availability run
KILL_AT = 10            #: kill a worker before this query index
FAST_RETRY = RetryPolicy(rounds=2, base=0.01, multiplier=2.0, cap=0.05)

#: 30% of jobs on the degraded primary stall for 250 ms
HANG_RATE, HANG_SECONDS = 0.3, 0.25
HEDGE_QUERIES = 40


def _percentile(values, p):
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round((p / 100.0) * (len(ordered) - 1))))
    return ordered[idx]


def _availability_run(graph, config, expected, replicas):
    """Kill one worker mid-workload; count full (non-partial) results."""
    full = 0
    exact = True
    with LocalCluster(
        num_shards=2, config=config, replicas=replicas,
        retry=FAST_RETRY,
    ) as cluster:
        coord = cluster.coordinator
        gid = coord.register_graph(graph)
        recovery = None
        for i in range(WORKLOAD):
            if i == KILL_AT:
                cluster.kill_replica(0, 0)
                t0 = time.perf_counter()
            report = coord.query(gid, PATTERNS[PATTERN], use_cache=False)
            if i == KILL_AT:
                recovery = time.perf_counter() - t0
            if not report.notes["cluster"]["partial"]:
                full += 1
                if report.embeddings != expected:
                    exact = False
    return {
        "replicas": replicas,
        "availability_pct": round(100.0 * full / WORKLOAD, 2),
        "full_results": full,
        "workload": WORKLOAD,
        "counts_identical": exact,
        # wall time of the first post-kill query: what failover costs
        "first_postkill_query_seconds": round(recovery, 6),
    }


def _recovery_run(graph, config):
    """Prober-driven membership: kill→evict and revive→rejoin times."""
    with LocalCluster(
        num_shards=2, config=config, replicas=2, retry=FAST_RETRY,
        probe_interval=0.05, probe_failures=2, probe_recoveries=2,
        probe_timeout=1.0,
    ) as cluster:
        coord = cluster.coordinator
        coord.register_graph(graph)
        victim = cluster.kill_replica(0, 0)
        t0 = time.perf_counter()
        while victim not in coord.prober.evicted:
            time.sleep(0.01)
            assert time.perf_counter() - t0 < 30.0, "eviction timed out"
        evict_seconds = time.perf_counter() - t0
        cluster.revive_replica(0, 0)
        t0 = time.perf_counter()
        while victim in coord.prober.evicted:
            time.sleep(0.01)
            assert time.perf_counter() - t0 < 30.0, "rejoin timed out"
        rejoin_seconds = time.perf_counter() - t0
        return {
            "probe_interval_seconds": 0.05,
            "probe_failures": 2,
            "probe_recoveries": 2,
            "kill_to_evict_seconds": round(evict_seconds, 6),
            "revive_to_rejoin_seconds": round(rejoin_seconds, 6),
            "evictions": coord.flight.counts().get("replica_evicted", 0),
            "rejoins": coord.flight.counts().get("replica_rejoined", 0),
        }


def _hedge_run(graph, config, expected, hedged):
    """Tail latency with a stalling primary, with/without hedging."""
    plan = FaultPlan(seed=7, specs=(
        FaultSpec(site="worker.run", kind=FaultKind.HANG,
                  rate=HANG_RATE, seconds=HANG_SECONDS),
    ))
    hedge = HedgePolicy(
        enabled=hedged, min_samples=0, min_delay=0.03, max_delay=0.06
    )
    latencies = []
    exact = True
    with LocalCluster(
        num_shards=1, config=config, replicas=2, retry=FAST_RETRY,
        hedge=hedge,
    ) as cluster:
        coord = cluster.coordinator
        gid = coord.register_graph(graph)
        cluster.worker_groups[0][0].service.arm_faults(plan)
        for _ in range(HEDGE_QUERIES):
            t0 = time.perf_counter()
            report = coord.query(gid, PATTERNS[PATTERN], use_cache=False)
            latencies.append(time.perf_counter() - t0)
            if (
                report.embeddings != expected
                or report.notes["cluster"]["partial"]
            ):
                exact = False
        hedged_total = coord.metrics.counter(
            "repro_cluster_hedged_queries_total"
        ).value
    return {
        "hedged": hedged,
        "queries": HEDGE_QUERIES,
        "hang_rate": HANG_RATE,
        "hang_seconds": HANG_SECONDS,
        "p50_seconds": round(_percentile(latencies, 50), 6),
        "p95_seconds": round(_percentile(latencies, 95), 6),
        "p99_seconds": round(_percentile(latencies, 99), 6),
        "hedged_queries_total": hedged_total,
        "counts_identical": exact,
    }


def _run_all():
    graph = erdos_renyi(NODES, DEGREE, seed=SEED, name=f"er{NODES}")
    config = xset_default(engine="batched")
    expected = run_on_soc(
        graph, build_plan(PATTERNS[PATTERN]), config
    ).embeddings
    return {
        "expected": expected,
        "availability": [
            _availability_run(graph, config, expected, replicas)
            for replicas in (1, 2)
        ],
        "recovery": _recovery_run(graph, config),
        "hedge": [
            _hedge_run(graph, config, expected, hedged)
            for hedged in (False, True)
        ],
    }


def test_failover(benchmark):
    r = once(benchmark, _run_all)
    base, repl = r["availability"]
    unhedged, hedged = r["hedge"]
    tail_win = unhedged["p95_seconds"] / max(hedged["p95_seconds"], 1e-9)

    rows = [
        ("availability, replicas=1",
         f"{base['availability_pct']}%",
         f"{base['full_results']}/{base['workload']} full results"),
        ("availability, replicas=2",
         f"{repl['availability_pct']}%",
         f"{repl['full_results']}/{repl['workload']} full results"),
        ("first post-kill query",
         f"{repl['first_postkill_query_seconds'] * 1e3:.1f} ms",
         "includes the failed attempt + failover"),
        ("kill → evicted",
         f"{r['recovery']['kill_to_evict_seconds'] * 1e3:.1f} ms",
         "prober at 50 ms, 2 strikes"),
        ("revive → rejoined",
         f"{r['recovery']['revive_to_rejoin_seconds'] * 1e3:.1f} ms",
         "graphs re-registered first"),
        ("p95 unhedged",
         f"{unhedged['p95_seconds'] * 1e3:.1f} ms",
         f"{HANG_RATE:.0%} of jobs stall {HANG_SECONDS * 1e3:.0f} ms"),
        ("p95 hedged",
         f"{hedged['p95_seconds'] * 1e3:.1f} ms",
         f"{tail_win:.1f}x tail win, "
         f"{hedged['hedged_queries_total']:.0f} hedges fired"),
    ]
    text = format_table(
        ["metric", "value", "notes"],
        rows,
        title=(
            f"Failover — er{NODES} (avg deg {DEGREE}), 2 shards, "
            f"batched engine, inproc transport"
        ),
    )
    emit("failover", text)
    emit_json("failover", {
        "benchmark": "failover",
        "harness_invocation": (
            "PYTHONPATH=src python -m pytest benchmarks/bench_failover.py "
            "-q -s"
        ),
        "graph": {"nodes": NODES, "avg_degree": DEGREE, "seed": SEED},
        "pattern": PATTERN,
        "reference_count": r["expected"],
        "availability": r["availability"],
        "recovery": r["recovery"],
        "hedge": r["hedge"],
        "hedge_tail_win_p95": round(tail_win, 3),
    })

    # replication's whole point: zero partial results, byte-identical
    assert repl["availability_pct"] == 100.0, repl
    assert repl["counts_identical"]
    assert base["availability_pct"] < 100.0  # the baseline really degrades
    # hedging must win the tail it was built for (generous 20% bar; the
    # typical win here is 3-5x)
    assert hedged["p95_seconds"] < unhedged["p95_seconds"] * 0.8, r["hedge"]
    assert hedged["counts_identical"] and unhedged["counts_identical"]
