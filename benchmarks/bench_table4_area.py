"""Table 4: per-PE area comparison with FINGERS / Shogun / FlexMiner."""

from repro.analysis import format_table
from repro.baselines import PUBLISHED_PE_AREA_MM2
from repro.hw import pe_area_breakdown

from _common import emit, once

#: published breakdowns (mm², 28 nm except FlexMiner's 15 nm)
PUBLISHED = {
    "FINGERS": {"total": 0.934, "control": 0.069, "compute": 0.115,
                "cache": 0.332},
    "Shogun": {"total": 0.971, "control": 0.106, "compute": 0.115,
               "cache": 0.332},
    "FlexMiner (15nm)": {"total": 0.180},
}
PAPER_OURS = {"total": 0.305, "control": 0.044, "compute": 0.077,
              "cache": 0.174}


def test_table4_area(benchmark):
    ours = once(benchmark, pe_area_breakdown)
    rows = [
        (
            name,
            f"{vals['total']:.3f}",
            f"{vals.get('control', float('nan')):.3f}",
            f"{vals.get('compute', float('nan')):.3f}",
            f"{vals.get('cache', float('nan')):.3f}",
        )
        for name, vals in PUBLISHED.items()
    ]
    rows.append(
        (
            "Ours (modelled)",
            f"{ours['total']:.3f}",
            f"{ours['control']:.3f}",
            f"{ours['compute']:.3f}",
            f"{ours['cache']:.3f}",
        )
    )
    rows.append(
        (
            "Ours (paper)",
            f"{PAPER_OURS['total']:.3f}",
            f"{PAPER_OURS['control']:.3f}",
            f"{PAPER_OURS['compute']:.3f}",
            f"{PAPER_OURS['cache']:.3f}",
        )
    )
    text = format_table(
        ["PE", "Total", "Control", "Compute", "Cache"],
        rows,
        title="Table 4 — single-PE area (mm^2)",
    )
    emit("table4_area", text)

    # modelled breakdown within a few percent of the paper's synthesis
    for key in ("total", "control", "compute", "cache"):
        assert abs(ours[key] - PAPER_OURS[key]) <= 0.07 * PAPER_OURS["total"]
    # X-SET's PE is ~3x smaller than FINGERS'/Shogun's
    assert ours["total"] < PUBLISHED["FINGERS"]["total"] / 2.5
    # scheduler smaller than FINGERS' control (the 36.2% reduction claim)
    assert ours["control"] < PUBLISHED["FINGERS"]["control"]
    # published numbers used by the compute-density metric stay in sync
    assert PUBLISHED_PE_AREA_MM2["fingers"] == PUBLISHED["FINGERS"]["total"]
