"""Figure 12: X-SET speedup over software baselines (GraphPi/GraphSet/GLUMIN).

Regenerates the three sub-figures as speedup rows per dataset × pattern and
checks the paper's shape: CPU baselines lose by roughly an order of magnitude
(GraphPi more than GraphSet), the GPU roughly ties, and X-SET does it all
with a fraction of the GPU's memory bandwidth.
"""

from repro.analysis import format_table, geomean, plan_cache, run_workload
from repro.baselines import GLUMIN, GRAPHPI, GRAPHSET
from repro.graph import load_dataset
from repro.patterns import PATTERNS, count_embeddings

from _common import BENCH_SCALE, FIG_PATTERNS, emit, once

DATASETS = ("PP", "WV", "AS", "MI", "YT", "PA")  # the paper's six


def _run():
    rows = {}
    for ds in DATASETS:
        scale = BENCH_SCALE[ds]
        graph = load_dataset(ds, scale=scale)
        for pat in FIG_PATTERNS:
            plan = plan_cache(PATTERNS[pat])
            xset = run_workload(ds, pat, scale=scale)
            stats = count_embeddings(graph, plan)
            assert stats.embeddings == xset.embeddings
            rows[(ds, pat)] = {
                "xset_s": xset.seconds,
                "xset_bw": xset.dram_bandwidth_gbps,
                "GraphPi": GRAPHPI.estimate(graph, plan, stats).seconds
                / xset.seconds,
                "GraphSet": GRAPHSET.estimate(graph, plan, stats).seconds
                / xset.seconds,
                "GLUMIN": GLUMIN.estimate(graph, plan, stats).seconds
                / xset.seconds,
            }
    return rows


def test_fig12_software_baselines(benchmark):
    rows = once(benchmark, _run)
    table = [
        (
            ds,
            pat,
            f"{rows[(ds, pat)]['GraphPi']:.1f}x",
            f"{rows[(ds, pat)]['GraphSet']:.1f}x",
            f"{rows[(ds, pat)]['GLUMIN']:.2f}x",
        )
        for ds in DATASETS
        for pat in FIG_PATTERNS
    ]
    gm = {
        sysname: geomean(r[sysname] for r in rows.values())
        for sysname in ("GraphPi", "GraphSet", "GLUMIN")
    }
    per_ds_gpi = {
        ds: geomean(rows[(ds, p)]["GraphPi"] for p in FIG_PATTERNS)
        for ds in DATASETS
    }
    text = format_table(
        ["graph", "pattern", "vs GraphPi", "vs GraphSet", "vs GLUMIN"],
        table,
        title="Figure 12 — X-SET speedup over software systems",
    )
    text += (
        f"\ngeomeans: GraphPi {gm['GraphPi']:.1f}x  "
        f"GraphSet {gm['GraphSet']:.1f}x  GLUMIN {gm['GLUMIN']:.2f}x"
    )
    text += "\nper-dataset GraphPi geomeans: " + "  ".join(
        f"{ds}={v:.1f}x" for ds, v in per_ds_gpi.items()
    )
    emit("fig12_software", text)

    # shape: CPU systems lose clearly, GraphPi worse than GraphSet
    assert gm["GraphPi"] > 3.0
    assert gm["GraphPi"] > gm["GraphSet"] > 1.0
    # GPU roughly ties (paper: 1.05x geomean); allow a broad band
    assert 0.4 < gm["GLUMIN"] < 4.0
    # X-SET uses a small fraction of the GPU's 960 GB/s bandwidth
    max_bw = max(r["xset_bw"] for r in rows.values())
    assert max_bw < 0.15 * 960.0
    # paper: PA shows the most modest CPU speedup of the large graphs
    assert per_ds_gpi["PA"] <= max(per_ds_gpi.values())
