"""Observability overhead: enabled vs disabled on identical workloads.

The obs layer's contract is *zero cost when disabled and cheap when
enabled*: every hot-path hook is guarded by one ``current() is None``
check, so a run without an active observation must produce byte-identical
counts and simulated timings, and a traced run must agree on every
architectural number (only wall clock may differ).

This benchmark runs the same workloads three ways — baseline (no
observation), guarded-off (instrumented build, observation disabled, i.e.
the normal case), and traced (observation active) — asserts the counts,
cycles and task totals are identical across all three, and records the
wall-clock overhead of tracing.
"""

import time

from repro.analysis import format_table
from repro.core.api import XSetAccelerator
from repro.graph.datasets import load_dataset
from repro.obs import observe
from repro.patterns.pattern import PATTERNS

from _common import BENCH_SCALE, emit, once

WORKLOADS = (
    ("PP", "3CF", "event"),
    ("PP", "4CF", "batched"),
    ("WV", "3CF", "event"),
    ("WV", "TT", "batched"),
)


def _timed_count(accel, graph, pattern, engine):
    t0 = time.perf_counter()
    report = accel.count(graph, pattern, engine=engine)
    return report, time.perf_counter() - t0


def _run_all():
    accel = XSetAccelerator()
    rows = {}
    for ds, pat, engine in WORKLOADS:
        graph = load_dataset(ds, scale=BENCH_SCALE[ds])
        pattern = PATTERNS[pat]
        base, t_base = _timed_count(accel, graph, pattern, engine)
        off, t_off = _timed_count(accel, graph, pattern, engine)
        with observe() as ob:
            traced, t_on = _timed_count(accel, graph, pattern, engine)
        spans = len(ob.tracer.finished())
        rows[(ds, pat, engine)] = (
            base, off, traced, t_base, t_off, t_on, spans
        )
    return rows


def test_obs_overhead(benchmark):
    rows = once(benchmark, _run_all)

    table = []
    for (ds, pat, engine), row in rows.items():
        base, off, traced, t_base, t_off, t_on, spans = row
        # the contract: observation never changes what was computed
        assert off.embeddings == base.embeddings == traced.embeddings
        assert off.cycles == base.cycles == traced.cycles
        assert off.tasks == base.tasks == traced.tasks
        assert spans > 0  # tracing actually recorded something
        overhead = t_on / max(t_off, 1e-9)
        table.append(
            (f"{ds}/{pat}/{engine}", f"{base.embeddings}",
             f"{t_off * 1e3:.1f}ms", f"{t_on * 1e3:.1f}ms",
             f"{overhead:.2f}x", f"{spans}")
        )
        # tracing is coarse-grained (per level, not per task): even the
        # worst case stays within a small constant factor
        assert overhead < 3.0, (ds, pat, engine, overhead)

    text = format_table(
        ["workload", "embeddings", "obs off", "obs on", "ratio", "spans"],
        table,
        title=(
            "Observability overhead — counts/cycles identical, "
            "wall-clock ratio traced vs untraced"
        ),
    )
    emit("obs_overhead", text)
