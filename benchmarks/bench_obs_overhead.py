"""Observability overhead: enabled vs disabled on identical workloads.

The obs layer's contract is *zero cost when disabled and cheap when
enabled*: every hot-path hook is guarded by one ``current() is None``
check, so a run without an active observation must produce byte-identical
counts and simulated timings, and a traced run must agree on every
architectural number (only wall clock may differ).

This benchmark runs the same workloads three ways — baseline (no
observation), guarded-off (instrumented build, observation disabled, i.e.
the normal case), and traced (observation active) — asserts the counts,
cycles and task totals are identical across all three, and records the
wall-clock overhead of tracing.

Since the cluster observability layer landed the same contract covers the
scatter/gather plane: a ``cluster/*`` row runs one sharded query with
tracing off and on (trace-context propagation, span shipping, metrics
federation, coordinator re-anchoring) and asserts the merged counts are
identical and the traced run stays within 1.25x.  Everything is also
persisted machine-readably as ``BENCH_obs.json``.
"""

import time

from repro.analysis import format_table
from repro.cluster import LocalCluster
from repro.core.api import XSetAccelerator
from repro.graph.generators import erdos_renyi
from repro.graph.datasets import load_dataset
from repro.obs import observe
from repro.patterns.pattern import PATTERNS

from _common import BENCH_SCALE, emit, emit_json, once

WORKLOADS = (
    ("PP", "3CF", "event"),
    ("PP", "4CF", "batched"),
    ("WV", "3CF", "event"),
    ("WV", "TT", "batched"),
)


def _timed_count(accel, graph, pattern, engine):
    t0 = time.perf_counter()
    report = accel.count(graph, pattern, engine=engine)
    return report, time.perf_counter() - t0


#: timing repeats per cluster measurement (min-of-N tames scheduler noise)
CLUSTER_REPEATS = 3
CLUSTER_SHARDS = 4
CLUSTER_PATTERN = "TT"


def _run_all():
    accel = XSetAccelerator()
    rows = {}
    for ds, pat, engine in WORKLOADS:
        graph = load_dataset(ds, scale=BENCH_SCALE[ds])
        pattern = PATTERNS[pat]
        base, t_base = _timed_count(accel, graph, pattern, engine)
        off, t_off = _timed_count(accel, graph, pattern, engine)
        with observe() as ob:
            traced, t_on = _timed_count(accel, graph, pattern, engine)
        spans = len(ob.tracer.finished())
        rows[(ds, pat, engine)] = (
            base, off, traced, t_base, t_off, t_on, spans
        )
    return rows


def _cluster_once(observability: bool):
    """One sharded query; returns (embeddings, best-of-N seconds, spans)."""
    graph = erdos_renyi(240, 10.0, seed=13, name="bench-cluster")
    pattern = PATTERNS[CLUSTER_PATTERN]
    with LocalCluster(
        num_shards=CLUSTER_SHARDS,
        observability=observability,
        max_workers=1,
    ) as cluster:
        coord = cluster.coordinator
        gid = coord.register_graph(graph)
        best = float("inf")
        embeddings = None
        for _ in range(CLUSTER_REPEATS):
            t0 = time.perf_counter()
            report = coord.query(gid, pattern, use_cache=False)
            best = min(best, time.perf_counter() - t0)
            embeddings = report.embeddings
        spans = len(coord.trace_events()) if observability else 0
    return embeddings, best, spans


def _run_cluster():
    off = _cluster_once(observability=False)
    on = _cluster_once(observability=True)
    return off, on


def test_obs_overhead(benchmark):
    rows, (cluster_off, cluster_on) = once(
        benchmark, lambda: (_run_all(), _run_cluster())
    )

    table = []
    records = []
    for (ds, pat, engine), row in rows.items():
        base, off, traced, t_base, t_off, t_on, spans = row
        # the contract: observation never changes what was computed
        assert off.embeddings == base.embeddings == traced.embeddings
        assert off.cycles == base.cycles == traced.cycles
        assert off.tasks == base.tasks == traced.tasks
        assert spans > 0  # tracing actually recorded something
        overhead = t_on / max(t_off, 1e-9)
        table.append(
            (f"{ds}/{pat}/{engine}", f"{base.embeddings}",
             f"{t_off * 1e3:.1f}ms", f"{t_on * 1e3:.1f}ms",
             f"{overhead:.2f}x", f"{spans}")
        )
        records.append({
            "workload": f"{ds}/{pat}/{engine}",
            "embeddings": base.embeddings,
            "seconds_off": round(t_off, 6),
            "seconds_on": round(t_on, 6),
            "ratio": round(overhead, 4),
            "spans": spans,
        })
        # tracing is coarse-grained (per level, not per task): even the
        # worst case stays within a small constant factor
        assert overhead < 3.0, (ds, pat, engine, overhead)

    # -- cluster row: full tracing pipeline on vs off ----------------------
    (emb_off, t_cluster_off, _), (emb_on, t_cluster_on, events) = (
        cluster_off, cluster_on
    )
    # observability never changes the merged count
    assert emb_on == emb_off
    assert events > 0  # the merged trace actually has content
    cluster_ratio = t_cluster_on / max(t_cluster_off, 1e-9)
    # propagation + span shipping + federation + re-anchoring stays cheap;
    # with observability off the cluster path is the PR 6 baseline (~1.0x,
    # covered by the byte-identical count assertion above)
    assert cluster_ratio < 1.25, cluster_ratio
    table.append(
        (f"cluster/{CLUSTER_PATTERN}x{CLUSTER_SHARDS}", f"{emb_off}",
         f"{t_cluster_off * 1e3:.1f}ms", f"{t_cluster_on * 1e3:.1f}ms",
         f"{cluster_ratio:.2f}x", f"{events}")
    )
    records.append({
        "workload": f"cluster/{CLUSTER_PATTERN}x{CLUSTER_SHARDS}",
        "embeddings": emb_off,
        "seconds_off": round(t_cluster_off, 6),
        "seconds_on": round(t_cluster_on, 6),
        "ratio": round(cluster_ratio, 4),
        "spans": events,
    })

    text = format_table(
        ["workload", "embeddings", "obs off", "obs on", "ratio", "spans"],
        table,
        title=(
            "Observability overhead — counts/cycles identical, "
            "wall-clock ratio traced vs untraced "
            "(cluster row: traced sharded query vs untraced)"
        ),
    )
    emit("obs_overhead", text)
    emit_json("obs", {
        "bench": "obs_overhead",
        "cluster_shards": CLUSTER_SHARDS,
        "rows": records,
    })
