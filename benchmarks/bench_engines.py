"""Execution-engine comparison: event vs batched vs codegen wall clock.

Runs the same Table-3-style workloads through all three registered
execution backends, asserts they report *identical* embedding counts, and
records the wall-clock ratios against the event-driven reference.  The
batched engine exists to make count-only sweeps cheap and the codegen
engine compiles the plan's loop nest away entirely, so the benchmark
asserts the headline property: at least a 5x speedup on at least one
workload (in practice the reuse-heavy clique patterns run orders of
magnitude faster).

Besides the prose table in ``benchmarks/results/engines_speedup.txt``,
the run emits machine-readable ``BENCH_engines.json`` at the repo root —
per-workload counts, wall-times and speedups — so the perf trajectory is
diffable across PRs.
"""

import time

from repro.analysis import format_table
from repro.core.api import XSetAccelerator
from repro.graph.datasets import load_dataset
from repro.patterns.pattern import PATTERNS

from _common import BENCH_SCALE, emit, emit_json, once

ENGINES = ("event", "batched", "codegen")

WORKLOADS = (
    ("PP", "3CF"),
    ("PP", "4CF"),
    ("PP", "TT"),
    ("WV", "3CF"),
    ("WV", "4CF"),
)

#: the exact command that regenerates these artifacts
HARNESS_INVOCATION = (
    "PYTHONPATH=src python -m pytest benchmarks/bench_engines.py -q -s"
)


def _run_all():
    accel = XSetAccelerator()
    rows = {}
    for ds, pat in WORKLOADS:
        graph = load_dataset(ds, scale=BENCH_SCALE[ds])
        pattern = PATTERNS[pat]
        counts, seconds = {}, {}
        for engine in ENGINES:
            t0 = time.perf_counter()
            report = accel.count(graph, pattern, engine=engine)
            seconds[engine] = time.perf_counter() - t0
            counts[engine] = report.embeddings
        rows[(ds, pat)] = (counts, seconds)
    return rows


def test_engine_speedup(benchmark):
    rows = once(benchmark, _run_all)

    table = []
    speedups = {engine: [] for engine in ENGINES[1:]}
    workloads_json = []
    for (ds, pat), (counts, seconds) in rows.items():
        t_ev = seconds["event"]
        ratios = {
            engine: t_ev / max(seconds[engine], 1e-9)
            for engine in ENGINES[1:]
        }
        for engine, ratio in ratios.items():
            speedups[engine].append(ratio)
        table.append(
            (f"{ds}/{pat}", f"{counts['event']}",
             f"{t_ev:.3f}s",
             f"{seconds['batched']:.3f}s", f"{ratios['batched']:.1f}x",
             f"{seconds['codegen']:.3f}s", f"{ratios['codegen']:.1f}x")
        )
        workloads_json.append({
            "dataset": ds,
            "scale": BENCH_SCALE[ds],
            "pattern": pat,
            "embeddings": counts["event"],
            "counts_identical": len(set(counts.values())) == 1,
            "wall_seconds": {e: round(seconds[e], 6) for e in ENGINES},
            "speedup_vs_event": {
                e: round(ratios[e], 3) for e in ENGINES[1:]
            },
        })
    text = format_table(
        ["workload", "embeddings", "event",
         "batched", "speedup", "codegen", "speedup"],
        table,
        title="Execution engines — identical counts, wall-clock ratio",
    )
    text += f"\nharness: {HARNESS_INVOCATION}"
    emit("engines_speedup", text)
    emit_json("engines", {
        "benchmark": "engines_speedup",
        "engines": list(ENGINES),
        "harness_invocation": HARNESS_INVOCATION,
        "workloads": workloads_json,
        "max_speedup_vs_event": {
            e: round(max(speedups[e]), 3) for e in ENGINES[1:]
        },
    })

    # every backend shares the functional layer: counts must match exactly
    for (ds, pat), (counts, _) in rows.items():
        assert len(set(counts.values())) == 1, (ds, pat, counts)
    # the fast engines' reason to exist
    assert max(speedups["batched"]) >= 5.0, speedups
    assert max(speedups["codegen"]) >= 5.0, speedups
