"""Execution-engine comparison: event-driven vs batched wall clock.

Runs the same Table-3-style workloads through both registered execution
backends, asserts they report *identical* embedding counts, and records the
wall-clock ratio.  The batched engine exists to make count-only sweeps
cheap, so the benchmark asserts the headline property: at least a 5x
speedup on at least one workload (in practice the reuse-heavy clique
patterns run orders of magnitude faster).
"""

import time

from repro.analysis import format_table
from repro.core.api import XSetAccelerator
from repro.graph.datasets import load_dataset
from repro.patterns.pattern import PATTERNS

from _common import BENCH_SCALE, emit, once

WORKLOADS = (
    ("PP", "3CF"),
    ("PP", "4CF"),
    ("PP", "TT"),
    ("WV", "3CF"),
    ("WV", "4CF"),
)


def _run_both():
    accel = XSetAccelerator()
    rows = {}
    for ds, pat in WORKLOADS:
        graph = load_dataset(ds, scale=BENCH_SCALE[ds])
        pattern = PATTERNS[pat]
        t0 = time.perf_counter()
        ev = accel.count(graph, pattern, engine="event")
        t_event = time.perf_counter() - t0
        t0 = time.perf_counter()
        ba = accel.count(graph, pattern, engine="batched")
        t_batched = time.perf_counter() - t0
        rows[(ds, pat)] = (ev.embeddings, ba.embeddings, t_event, t_batched)
    return rows


def test_engine_speedup(benchmark):
    rows = once(benchmark, _run_both)

    table = []
    speedups = []
    for (ds, pat), (n_ev, n_ba, t_ev, t_ba) in rows.items():
        ratio = t_ev / max(t_ba, 1e-9)
        speedups.append(ratio)
        table.append(
            (f"{ds}/{pat}", f"{n_ev}", f"{t_ev:.3f}s", f"{t_ba:.3f}s",
             f"{ratio:.1f}x")
        )
    text = format_table(
        ["workload", "embeddings", "event", "batched", "speedup"],
        table,
        title="Execution engines — identical counts, wall-clock ratio",
    )
    emit("engines_speedup", text)

    # both backends share the functional layer: counts must match exactly
    for (ds, pat), (n_ev, n_ba, _, _) in rows.items():
        assert n_ev == n_ba, (ds, pat, n_ev, n_ba)
    # the batched engine's reason to exist
    assert max(speedups) >= 5.0, speedups
