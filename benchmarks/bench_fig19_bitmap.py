"""Figure 19: sensitivity to the BitmapCSR bitmap width.

Width 0 is plain CSR; widening the bitmap packs more vertices per 32-bit
word, adding intra-element parallelism.  Paper shape: performance generally
improves with width, the default b=8 gives ≈1.30x geomean over CSR, and the
gain is modest because real-world graphs are sparse.
"""

from repro.analysis import format_table, geomean, run_workload
from repro.core import xset_default
from repro.patterns import PATTERNS

from _common import emit, once

WIDTHS = (0, 1, 2, 4, 8, 16)
DATASETS_SCALE = {"PP": 0.25, "WV": 0.15, "AS": 0.15, "MI": 0.15}
BM_PATTERNS = ("3CF", "4CF")


def _run():
    out = {}
    for ds, scale in DATASETS_SCALE.items():
        for w in WIDTHS:
            cfg = xset_default(bitmap_width=w, name=f"xset-b{w}")
            secs = [
                run_workload(ds, pat, config=cfg, scale=scale).seconds
                for pat in BM_PATTERNS
            ]
            out[(ds, w)] = geomean(secs)
    return out


def test_fig19_bitmap_width(benchmark):
    out = once(benchmark, _run)
    rows = []
    for ds in DATASETS_SCALE:
        rel = [out[(ds, 8)] / out[(ds, w)] for w in WIDTHS]
        rows.append(tuple([ds] + [f"{r:.2f}" for r in rel]))
    text = format_table(
        ["graph"] + [f"b={w}" for w in WIDTHS],
        rows,
        title="Figure 19 — performance relative to the default b=8",
    )
    gm_csr = geomean(out[(ds, 0)] / out[(ds, 8)] for ds in DATASETS_SCALE)
    text += (
        f"\nb=8 speedup over plain CSR (b=0): {gm_csr:.2f}x geomean "
        "(paper 1.30x)"
    )
    emit("fig19_bitmap", text)

    # BitmapCSR helps overall, and modestly (sparse graphs)
    assert 0.95 <= gm_csr < 2.0
    # wider never catastrophically worse than CSR on any dataset
    for ds in DATASETS_SCALE:
        assert out[(ds, 8)] <= out[(ds, 0)] * 1.05
        # widths beyond 8 stay within noise of 8 (diminishing returns)
        assert out[(ds, 16)] <= out[(ds, 0)] * 1.05
