"""Table 3: dataset statistics of the synthetic stand-ins vs the paper."""

from repro.analysis import format_table
from repro.graph import DATASETS, dataset_table

from _common import emit, once

SCALE = 0.5  # statistics table runs at a larger scale than the sims


def test_table3_datasets(benchmark):
    stats = once(benchmark, lambda: dataset_table(scale=SCALE))
    rows = []
    for st in stats:
        spec = DATASETS[st.name]
        rows.append(
            (
                st.name,
                f"{st.num_vertices:.2E}",
                f"{st.num_edges:.2E}",
                f"{st.avg_degree:.2f}",
                f"{spec.avg_degree:.2f}",
                st.max_degree,
                f"{st.skew:.2f}",
                f"{spec.paper_skew:.2f}",
                spec.scale_note,
            )
        )
    text = format_table(
        ["key", "#nodes", "#edges", "avg deg", "paper avg", "max deg",
         "skew", "paper skew", "scaling"],
        rows,
        title=f"Table 3 — dataset stand-ins (generation scale {SCALE})",
    )
    emit("table3_datasets", text)

    by_key = {st.name: st for st in stats}
    # average degree tracks the published m/n for every dataset
    for key, spec in DATASETS.items():
        assert abs(by_key[key].avg_degree - spec.avg_degree) <= (
            0.4 * spec.avg_degree
        ), key
    # skew ordering: YT is by far the most skewed, PP among the least
    skews = {k: by_key[k].skew for k in DATASETS}
    assert skews["YT"] == max(skews.values())
    assert skews["PP"] <= sorted(skews.values())[2]
    # every stand-in is skew-positive (heavy-tailed), like all Table-3 graphs
    assert all(s > 0 for s in skews.values())
