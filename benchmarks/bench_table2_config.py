"""Table 2: system configuration of the evaluated X-SET instance."""

from repro.core import config_table, xset_default

from _common import emit, once


def test_table2_config(benchmark):
    text = once(benchmark, lambda: config_table(xset_default()))
    emit("table2_config", "Table 2 — system configuration\n" + text)

    cfg = xset_default()
    assert cfg.num_pes == 16
    assert cfg.sius_per_pe == 4
    assert cfg.segment_width == 8
    assert cfg.num_task_sets == 96
    assert cfg.task_set_width == 4
    assert cfg.private_kb == 32
    assert cfg.shared_mb == 4.0
    assert cfg.dram.channels == 4
    assert abs(cfg.dram.peak_bandwidth_gbps - 76.84) < 0.2
    assert (cfg.dram.cl, cfg.dram.trcd, cfg.dram.trp) == (16, 16, 16)
