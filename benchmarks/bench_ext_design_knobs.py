"""Extension experiments beyond the paper's figures.

The paper fixes the scheduler capacity at 96 Task Sets × width 4 (Table 2)
without a sensitivity study, and streams roots in vertex order.  These
benches fill both gaps:

* **Task-Set capacity sweep** — how much of the barrier-free scheduler's
  win survives with tiny task-tree storage (area/perf trade-off for the
  0.044 mm² scheduler);
* **Root partitioning** — round-robin streaming vs degree-balanced greedy
  assignment on the skewed YT stand-in;
* **Energy per embedding** — the four accelerators' energy efficiency on a
  common workload, combining the Figure-15 power model with simulation
  activity counters.
"""

from repro.analysis import format_table, geomean, run_workload
from repro.baselines import compare_accelerators
from repro.core import xset_default
from repro.graph import load_dataset
from repro.hw import estimate_energy
from repro.patterns import PATTERNS

from _common import emit, once

CAP_DATASETS = {"WV": 0.15, "YT": 0.08}


def _run_capacity():
    out = {}
    for sets, width in ((2, 1), (8, 2), (24, 4), (96, 4), (384, 8)):
        cfg = xset_default(
            num_task_sets=sets, task_set_width=width,
            name=f"ts{sets}x{width}",
        )
        secs = [
            run_workload(ds, "4CF", config=cfg, scale=scale).seconds
            for ds, scale in CAP_DATASETS.items()
        ]
        out[(sets, width)] = geomean(secs)
    return out


def test_ext_task_set_capacity(benchmark):
    out = once(benchmark, _run_capacity)
    base = out[(96, 4)]  # the paper's configuration
    rows = [
        (f"{sets} x {width}", f"{base / sec:.2f}x")
        for (sets, width), sec in out.items()
    ]
    text = format_table(
        ["#TaskSets x width", "perf vs Table-2 config"],
        rows,
        title="Extension — barrier-free scheduler capacity sensitivity "
              "(4CF geomean on WV+YT)",
    )
    emit("ext_taskset_capacity", text)

    # tiny capacity costs performance; the paper's 96x4 is near the knee
    assert out[(2, 1)] >= out[(96, 4)]
    assert out[(96, 4)] <= out[(24, 4)] * 1.05
    # quadrupling beyond 96 gains little (the knee claim)
    assert out[(384, 8)] >= out[(96, 4)] * 0.90


def _run_partition():
    out = {}
    for mode in ("round-robin", "degree-balanced"):
        cfg = xset_default(root_partition=mode, name=f"part-{mode}")
        for ds, scale in (("YT", 0.08), ("PP", 0.25)):
            out[(mode, ds)] = run_workload(
                ds, "3CF", config=cfg, scale=scale
            ).seconds
    return out


def test_ext_root_partitioning(benchmark):
    out = once(benchmark, _run_partition)
    rows = [
        (
            ds,
            f"{out[('round-robin', ds)] / out[('degree-balanced', ds)]:.2f}x",
        )
        for ds in ("YT", "PP")
    ]
    text = format_table(
        ["graph", "degree-balanced speedup over round-robin"],
        rows,
        title="Extension — root-partitioning policy (3CF)",
    )
    emit("ext_root_partitioning", text)
    # both policies within 2x of each other; correctness covered in tests
    for ds in ("YT", "PP"):
        ratio = out[("round-robin", ds)] / out[("degree-balanced", ds)]
        assert 0.5 < ratio < 2.0


def _run_energy():
    graph = load_dataset("WV", scale=0.15)
    cmp = compare_accelerators(graph, PATTERNS["3CF"])
    out = {}
    for name, report in cmp.reports.items():
        cfg = {
            "xset": xset_default(),
            "flexminer": None,
            "fingers": None,
            "shogun": None,
        }[name]
        if cfg is None:
            from repro.core import (
                fingers_config,
                flexminer_config,
                shogun_config,
            )

            cfg = {
                "flexminer": flexminer_config(),
                "fingers": fingers_config(),
                "shogun": shogun_config(),
            }[name]
        out[name] = estimate_energy(report, cfg)
    return out


def test_ext_energy_per_embedding(benchmark):
    out = once(benchmark, _run_energy)
    rows = [
        (
            name,
            f"{e.total_uj:.2f}",
            f"{e.nj_per_embedding:.2f}",
            f"{e.compute_uj / max(e.total_uj, 1e-12):.1%}",
        )
        for name, e in out.items()
    ]
    text = format_table(
        ["system", "total uJ", "nJ/embedding", "compute share"],
        rows,
        title="Extension — energy per embedding (WV / 3CF)",
    )
    emit("ext_energy", text)
    # X-SET is the most energy-efficient per embedding
    best = min(out.values(), key=lambda e: e.nj_per_embedding)
    assert best is out["xset"]
