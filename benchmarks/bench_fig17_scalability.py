"""Figure 17: scalability with the number of PEs and SIUs per PE.

(a) PE scaling 1→16 on several dataset/pattern pairs: near-linear for the
regular workloads, degraded for complex patterns on the skewed YT graph
(cache contention from large difference intermediates).
(b) SIUs-per-PE scaling 1→4: high-degree graphs gain the most — the paper
reports 2.8–3.7x for AS/MI/WV and 1.4–1.6x for the sparse graphs, averaging
≈2.2x at 4 SIUs.
"""

from repro.analysis import format_table, geomean, run_workload
from repro.core import xset_default
from repro.patterns import PATTERNS

from _common import emit, once

PE_COUNTS = (1, 2, 4, 8, 16)
PE_CASES = (("PP", "3CF", 0.25), ("WV", "4CF", 0.15), ("AS", "3CF", 0.15),
            ("YT", "CYC", 0.05))
SIU_COUNTS = (1, 2, 4)
SIU_DATASETS = {"PP": 0.25, "WV": 0.15, "AS": 0.15, "YT": 0.08}


def _run_pe_scaling():
    out = {}
    for ds, pat, scale in PE_CASES:
        for pes in PE_COUNTS:
            cfg = xset_default(num_pes=pes, name=f"xset-{pes}pe")
            out[(ds, pat, pes)] = run_workload(
                ds, pat, config=cfg, scale=scale
            ).seconds
    return out


def _run_siu_scaling():
    out = {}
    for ds, scale in SIU_DATASETS.items():
        for sius in SIU_COUNTS:
            cfg = xset_default(sius_per_pe=sius, name=f"xset-{sius}siu")
            out[(ds, sius)] = run_workload(
                ds, "3CF", config=cfg, scale=scale
            ).seconds
    return out


def test_fig17a_pe_scaling(benchmark):
    out = once(benchmark, _run_pe_scaling)
    rows = []
    for ds, pat, _ in PE_CASES:
        speedups = [out[(ds, pat, 1)] / out[(ds, pat, p)] for p in PE_COUNTS]
        rows.append(
            tuple([f"{ds}/{pat}"] + [f"{s:.2f}x" for s in speedups])
        )
    text = format_table(
        ["workload"] + [f"{p} PE" for p in PE_COUNTS],
        rows,
        title="Figure 17a — speedup vs one PE",
    )
    emit("fig17a_pe_scaling", text)

    for ds, pat, _ in PE_CASES:
        s16 = out[(ds, pat, 1)] / out[(ds, pat, 16)]
        s1 = 1.0
        assert s16 > 2.0, (ds, pat)  # PEs help everywhere
        del s1
    # regular workloads scale better than the skewed difference workload
    pp16 = out[("PP", "3CF", 1)] / out[("PP", "3CF", 16)]
    yt16 = out[("YT", "CYC", 1)] / out[("YT", "CYC", 16)]
    assert pp16 > yt16 * 0.95


def test_fig17b_siu_scaling(benchmark):
    out = once(benchmark, _run_siu_scaling)
    rows = []
    gains = {}
    for ds in SIU_DATASETS:
        speedups = [out[(ds, 1)] / out[(ds, s)] for s in SIU_COUNTS]
        gains[ds] = speedups[-1]
        rows.append(tuple([ds] + [f"{s:.2f}x" for s in speedups]))
    text = format_table(
        ["graph"] + [f"{s} SIU" for s in SIU_COUNTS],
        rows,
        title="Figure 17b — speedup vs one SIU per PE (3CF)",
    )
    avg = geomean(gains.values())
    text += f"\n4-SIU geomean speedup: {avg:.2f}x (paper average 2.2x)"
    emit("fig17b_siu_scaling", text)

    # more SIUs never hurt, and the denser graphs gain more than sparse PP
    for ds in SIU_DATASETS:
        assert out[(ds, 4)] <= out[(ds, 1)] * 1.02
    dense_gain = max(gains["WV"], gains["AS"])
    assert dense_gain >= gains["PP"] * 0.95
    assert 1.2 < avg < 4.0
