"""Table 1: theoretical comparison of set-intersection architectures."""

from repro.analysis import format_table
from repro.hw import theory_table_rows

from _common import emit, once


def test_table1_theory(benchmark):
    rows = once(benchmark, lambda: theory_table_rows(segment_width=8))
    text = format_table(
        ["Architecture", "Throughput", "Latency", "Resource",
         "thr@N=8", "lat@N=8", "cmp@N=8"],
        [
            (
                r["architecture"], r["throughput"], r["latency"],
                r["resource"], r["throughput_n"], r["latency_n"],
                r["comparators_n"],
            )
            for r in rows
        ],
        title="Table 1 — SIU architecture comparison "
              "(N = elements/cycle from both inputs)",
    )
    emit("table1_theory", text)

    by_name = {r["architecture"]: r for r in rows}
    merge = by_name["Merge Queue"]
    sma = by_name["Systolic Array"]
    ours = by_name["Order-Aware (ours)"]
    # throughput: 1 vs N vs N
    assert merge["throughput_n"] == 1
    assert sma["throughput_n"] == ours["throughput_n"] == 8
    # latency: O(1) vs O(N) vs O(log N)
    assert merge["latency_n"] < ours["latency_n"] < sma["latency_n"]
    # resource: O(1) vs O(N^2) vs O(N log N)
    assert merge["comparators_n"] < ours["comparators_n"] < (
        sma["comparators_n"]
    )
