"""Figure 16: ablation — 3 SIU designs × 3 scheduler policies.

Nine configurations on the paper's four ablation graphs (PP, WV, AS, MI),
normalised to (order-aware SIU, barrier-free scheduler).  Shape: the full
design wins and degrading either axis costs performance.  The paper finds
the two losses comparable (≈0.6x each); on the scaled stand-ins the
scheduler axis is amplified (see the in-test note), so we assert ordering
and materiality rather than the exact paper magnitudes.
"""

from repro.analysis import format_table, geomean, run_workload
from repro.core import xset_default
from repro.patterns import PATTERNS

from _common import emit, once

DATASETS_SCALE = {"PP": 0.25, "WV": 0.15, "AS": 0.15, "MI": 0.15}
ABLATION_PATTERNS = ("3CF", "TT")
SIUS = ("order-aware", "sma", "merge")
SCHEDS = ("barrier-free", "pseudo-dfs", "dfs")


def _config(siu: str, sched: str):
    params = {"window": 4} if sched == "pseudo-dfs" else {}
    return xset_default(
        siu_kind=siu,
        segment_width=8 if siu != "merge" else 1,
        scheduler=sched,
        scheduler_params=params,
        name=f"{siu}+{sched}",
    )


def _run():
    out = {}
    for siu in SIUS:
        for sched in SCHEDS:
            cfg = _config(siu, sched)
            secs = []
            for ds, scale in DATASETS_SCALE.items():
                for pat in ABLATION_PATTERNS:
                    secs.append(
                        run_workload(ds, pat, config=cfg, scale=scale
                                     ).seconds
                    )
            out[(siu, sched)] = secs
    return out


def test_fig16_ablation(benchmark):
    out = once(benchmark, _run)
    base = out[("order-aware", "barrier-free")]
    rel = {
        key: geomean(b / s for b, s in zip(base, secs))
        for key, secs in out.items()
    }
    rows = [
        tuple([siu] + [f"{rel[(siu, sched)]:.2f}x" for sched in SCHEDS])
        for siu in SIUS
    ]
    text = format_table(
        ["SIU \\ scheduler"] + list(SCHEDS),
        rows,
        title="Figure 16 — ablation (performance normalised to "
              "order-aware + barrier-free)",
    )
    text += ("\npaper reference points: OA+pseudoDFS 0.80x, OA+DFS 0.62x, "
             "SMA+BF 0.60x, merge+BF 0.55x")
    emit("fig16_ablation", text)

    # the full design is the best cell
    assert all(v <= 1.0 + 1e-9 for v in rel.values())
    # degrading the scheduler monotonically hurts with our SIU
    assert rel[("order-aware", "barrier-free")] >= rel[
        ("order-aware", "pseudo-dfs")
    ] >= rel[("order-aware", "dfs")]
    # degrading the SIU hurts with our scheduler
    assert rel[("order-aware", "barrier-free")] > rel[("sma", "barrier-free")]
    assert rel[("order-aware", "barrier-free")] > rel[
        ("merge", "barrier-free")
    ]
    # the paper's headline: both a suboptimal scheduler and a suboptimal
    # SIU cost real performance.  NOTE: the scaled-down stand-ins amplify
    # scheduler sensitivity relative to the paper (small candidate sets make
    # task *latency* dominate issue time, which only out-of-order dispatch
    # can hide), so the bands here are wider than the paper's 0.62/0.60.
    sched_loss = rel[("order-aware", "dfs")]
    siu_loss = rel[("sma", "barrier-free")]
    assert 0.05 < sched_loss < 0.95
    assert 0.20 < siu_loss < 0.98
