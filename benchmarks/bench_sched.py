"""Adaptive scheduling value: FIFO vs cost-ranked dispatch, A/B.

One mixed two-tenant workload — an *interactive* tenant issuing many
light queries under a deadline and a *batch* tenant issuing a few heavy
ones without — drains through a single-worker ``QueryService`` twice,
identical submission order both times (fixed seed):

* ``policy="fifo"`` — arrival order within the priority class.  Every
  light query submitted behind a heavy one inherits its full runtime as
  queue wait: the interactive p99 *is* the batch runtime, and deadlines
  blow.
* ``policy="cost"`` — shortest-predicted-job-first.  The cost model
  (warmed by one run of each distinct workload) sends the light queries
  around the heavy ones; interactive p99 collapses to roughly its own
  runtime and the deadline-miss rate drops with it.

Two smaller phases ride along: **auto-selection** (after per-engine
profiles exist, ``engine="auto"`` must pick a backend whose measured
latency is near-optimal, with counts byte-identical to ``batched``) and
**admission control** (with a heavy backlog queued, a submit whose
deadline the predicted completion cannot meet is rejected *at submit*
with a typed error, not timed out after burning queue space).

Counts must be byte-identical across policies and engines throughout.
The machine-readable artifact lands in ``BENCH_sched.json``; setting
``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os
import random
import threading
import time

from repro.analysis import format_table
from repro.errors import AdmissionError, JobTimeoutError
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.sched.adaptive import AdmissionPolicy, SchedulingConfig
from repro.service import QueryService

from _common import emit, emit_json, once

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SEED = 42
#: light (interactive-tenant) workloads: sub-millisecond to few-ms
LIGHT = (("light", "3CF"), ("light", "WEDGE"), ("light", "P3"))
#: heavy (batch-tenant) workloads: tens to hundreds of ms
HEAVY = (("heavy", "CYC"), ("heavy", "TT"))
#: wave composition (per policy run)
NUM_LIGHT = 18 if SMOKE else 60
NUM_HEAVY = 3 if SMOKE else 8
#: interactive deadline (seconds) — generous vs light runtime, tight vs
#: the heavy runtimes FIFO queues them behind
DEADLINE = 0.15 if SMOKE else 0.5

ENGINES = ("event", "batched", "codegen")


def _graphs():
    return {
        "light": erdos_renyi(200, 6.0, seed=5, name="light"),
        "heavy": erdos_renyi(900, 25.0, seed=5, name="heavy"),
    }


def _workload():
    """The fixed mixed wave: (graph key, pattern name, interactive?)."""
    rng = random.Random(SEED)
    jobs = [
        (*LIGHT[i % len(LIGHT)], True) for i in range(NUM_LIGHT)
    ] + [
        (*HEAVY[i % len(HEAVY)], False) for i in range(NUM_HEAVY)
    ]
    rng.shuffle(jobs)
    return jobs


def _percentile(values, pct):
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(round(pct / 100.0 * len(ordered) + 0.5)), 1)
    return ordered[min(rank, len(ordered)) - 1]


def _drain_policy(policy, graphs, jobs):
    """Submit the wave paused, resume, and measure per-job latency."""
    with QueryService(
        mode="thread",
        max_workers=1,
        queue_limit=4 * len(jobs),
        scheduling=SchedulingConfig(policy=policy),
        start_paused=True,
    ) as svc:
        for g in graphs.values():
            svc.register_graph(g)
        svc.resume()
        # warm the cost model: one profiled run of each distinct shape,
        # so the cost policy ranks on measured history, not the prior
        for gkey, pname in dict.fromkeys(LIGHT + HEAVY):
            svc.count(gkey, PATTERNS[pname], engine="batched",
                      use_cache=False)
        svc.pause()

        results = []
        lock = threading.Lock()
        waiters = []

        def wait_on(handle, submitted, interactive, expected_key):
            try:
                report = handle.result(timeout=120)
                latency = time.perf_counter() - submitted
                row = (interactive, latency, False, expected_key,
                       report.embeddings)
            except JobTimeoutError:
                latency = time.perf_counter() - submitted
                row = (interactive, latency, True, expected_key, None)
            with lock:
                results.append(row)

        for gkey, pname, interactive in jobs:
            submitted = time.perf_counter()
            handle = svc.submit(
                gkey,
                PATTERNS[pname],
                engine="batched",
                use_cache=False,
                timeout=DEADLINE if interactive else None,
            )
            t = threading.Thread(
                target=wait_on,
                args=(handle, submitted, interactive, (gkey, pname)),
                daemon=True,
            )
            t.start()
            waiters.append(t)
        svc.resume()
        for t in waiters:
            t.join(timeout=300)
        stats = svc.stats()

    interactive = [r for r in results if r[0]]
    batch = [r for r in results if not r[0]]
    misses = sum(
        1 for _, latency, timed_out, _, _ in interactive
        if timed_out or latency > DEADLINE
    )
    counts = {}
    for _, _, timed_out, key, embeddings in results:
        if not timed_out:
            counts.setdefault(key, set()).add(embeddings)
    return {
        "interactive_ms": {
            "p50": _percentile([r[1] for r in interactive], 50) * 1e3,
            "p99": _percentile([r[1] for r in interactive], 99) * 1e3,
        },
        "batch_ms": {
            "p50": _percentile([r[1] for r in batch], 50) * 1e3,
            "p99": _percentile([r[1] for r in batch], 99) * 1e3,
        },
        "deadline_misses": misses,
        "deadline_miss_rate": misses / max(len(interactive), 1),
        "interactive_jobs": len(interactive),
        "batch_jobs": len(batch),
        "shed": stats.shed,
        "rejected": stats.rejected,
        "queue_wait": stats.queue_wait,
        "counts": {key: sorted(v) for key, v in counts.items()},
    }


def _auto_phase(graphs):
    """Train per-engine profiles, then score ``engine="auto"`` choices.

    Runs on the light graph only: the event engine (a full SoC
    simulation) is orders of magnitude slower than the analytic
    backends, and measuring it on the heavy graph would dominate the
    whole benchmark without changing the verdict.
    """
    decisions = []
    with QueryService(mode="inline", scheduling=SchedulingConfig()) as svc:
        for g in graphs.values():
            svc.register_graph(g)
        workloads = [
            ("light", pname)
            for _, pname in dict.fromkeys(LIGHT + HEAVY)
        ]
        for gkey, pname in workloads:
            measured = {}
            batched_count = None
            for engine in ENGINES:
                best = float("inf")
                for _ in range(2):  # second run drops one-time costs
                    t0 = time.perf_counter()
                    report = svc.count(
                        gkey, PATTERNS[pname],
                        engine=engine, use_cache=False,
                    )
                    best = min(best, time.perf_counter() - t0)
                measured[engine] = best
                if engine == "batched":
                    batched_count = report.embeddings
            t0 = time.perf_counter()
            handle = svc.submit(
                gkey, PATTERNS[pname], engine="auto", use_cache=False
            )
            auto_report = handle.result()
            auto_latency = time.perf_counter() - t0
            floor = min(measured.values())
            decisions.append({
                "workload": f"{gkey}/{pname}",
                "chosen": handle.engine,
                "measured_ms": {
                    e: round(t * 1e3, 3) for e, t in measured.items()
                },
                "auto_ms": round(auto_latency * 1e3, 3),
                # near-optimal: the pick's measured floor is within 2x of
                # the best engine's (timing noise at sub-ms scales makes
                # exact argmin an unfair bar)
                "win": measured[handle.engine] <= 2.0 * floor,
                "count_matches_batched": (
                    auto_report.embeddings == batched_count
                ),
            })
        auto_selected = dict(svc.stats().auto_selected)
    return {
        "decisions": decisions,
        "win_rate": sum(d["win"] for d in decisions) / len(decisions),
        "counts_match_batched": all(
            d["count_matches_batched"] for d in decisions
        ),
        "auto_selected": auto_selected,
    }


def _admission_phase(graphs):
    """A deadline the backlog cannot meet is rejected at submit time."""
    with QueryService(
        mode="thread",
        max_workers=1,
        scheduling=SchedulingConfig(
            admission=AdmissionPolicy(enabled=True),
        ),
        start_paused=True,
    ) as svc:
        for g in graphs.values():
            svc.register_graph(g)
        backlog = [
            svc.submit(
                "heavy", PATTERNS["CYC"], engine="batched",
                use_cache=False,
            )
            for _ in range(3)
        ]
        rejected = 0
        accepted = []
        for _ in range(4):
            try:
                accepted.append(
                    svc.submit(
                        "light", PATTERNS["WEDGE"], engine="batched",
                        use_cache=False, timeout=0.005,
                    )
                )
            except AdmissionError:
                rejected += 1
        # a deadline the prediction can meet still gets in
        relaxed = svc.submit(
            "light", PATTERNS["WEDGE"], engine="batched",
            use_cache=False, timeout=600.0
        )
        svc.resume()
        for handle in backlog + accepted + [relaxed]:
            try:
                handle.result(timeout=120)
            except JobTimeoutError:
                pass
        stats = svc.stats()
    return {
        "rejected": rejected,
        "rejected_stat": stats.rejected,
        "relaxed_deadline_accepted": relaxed.done(),
    }


def _run_all():
    graphs = _graphs()
    jobs = _workload()
    fifo = _drain_policy("fifo", graphs, jobs)
    cost = _drain_policy("cost", graphs, jobs)
    auto = _auto_phase(graphs)
    admission = _admission_phase(graphs)
    return {
        "jobs": jobs,
        "fifo": fifo,
        "cost": cost,
        "auto": auto,
        "admission": admission,
    }


def test_adaptive_scheduling(benchmark):
    r = once(benchmark, _run_all)
    fifo, cost = r["fifo"], r["cost"]
    p99_gain = fifo["interactive_ms"]["p99"] / max(
        cost["interactive_ms"]["p99"], 1e-9
    )

    rows = [
        (
            policy,
            f"{run['interactive_ms']['p50']:.1f}",
            f"{run['interactive_ms']['p99']:.1f}",
            f"{run['deadline_misses']}/{run['interactive_jobs']}",
            f"{run['batch_ms']['p99']:.0f}",
        )
        for policy, run in (("fifo", fifo), ("cost", cost))
    ]
    rows.append((
        "cost vs fifo",
        "",
        f"{p99_gain:.1f}x lower",
        "",
        "",
    ))
    text = format_table(
        ["policy", "interactive p50 (ms)", "interactive p99 (ms)",
         "deadline misses", "batch p99 (ms)"],
        rows,
        title=(
            "Adaptive scheduling — cost-ranked dispatch vs FIFO "
            f"({len(r['jobs'])} mixed jobs, 1 worker, "
            f"deadline {DEADLINE}s)"
        ),
    )
    text += (
        f"\nauto-selection: win rate "
        f"{r['auto']['win_rate']:.0%} over {len(r['auto']['decisions'])} "
        f"workloads, counts match batched: "
        f"{r['auto']['counts_match_batched']}"
        f"\nadmission: {r['admission']['rejected']} rejected at submit, "
        f"relaxed deadline accepted: "
        f"{r['admission']['relaxed_deadline_accepted']}"
    )
    emit("sched_adaptive", text)
    emit_json("sched", {
        "benchmark": "adaptive_scheduling",
        "harness_invocation": (
            "PYTHONPATH=src python -m pytest benchmarks/bench_sched.py "
            "-q -s"
        ),
        "smoke": SMOKE,
        "workload": {
            "jobs": len(r["jobs"]),
            "interactive": fifo["interactive_jobs"],
            "batch": fifo["batch_jobs"],
            "deadline_seconds": DEADLINE,
            "seed": SEED,
        },
        "policies": {
            policy: {
                "interactive_ms": {
                    k: round(v, 3)
                    for k, v in run["interactive_ms"].items()
                },
                "batch_ms": {
                    k: round(v, 3) for k, v in run["batch_ms"].items()
                },
                "deadline_misses": run["deadline_misses"],
                "deadline_miss_rate": round(
                    run["deadline_miss_rate"], 4
                ),
                "shed": run["shed"],
                "rejected": run["rejected"],
            }
            for policy, run in (("fifo", fifo), ("cost", cost))
        },
        "interactive_p99_gain": round(p99_gain, 3),
        "auto": {
            "win_rate": round(r["auto"]["win_rate"], 3),
            "counts_match_batched": r["auto"]["counts_match_batched"],
            "auto_selected": r["auto"]["auto_selected"],
            "decisions": r["auto"]["decisions"],
        },
        "admission": r["admission"],
    })

    # counts are byte-identical across both policies (jobs that timed
    # out queued have no count; every completed one must agree)
    for key, values in cost["counts"].items():
        assert len(values) == 1, (key, values)
        if key in fifo["counts"]:
            assert fifo["counts"][key] == values, (key,)
    # the tentpole claim: cost-ranked dispatch beats FIFO on the
    # interactive tenant's tail and deadline-miss rate
    assert cost["interactive_ms"]["p99"] < fifo["interactive_ms"]["p99"]
    assert cost["deadline_miss_rate"] <= fifo["deadline_miss_rate"]
    # auto must be near-optimal and count-identical to batched
    assert r["auto"]["counts_match_batched"]
    assert r["auto"]["win_rate"] >= 0.5
    # admission control rejects the impossible deadline, at submit
    assert r["admission"]["rejected"] >= 1
    assert r["admission"]["relaxed_deadline_accepted"]
