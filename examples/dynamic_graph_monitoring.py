#!/usr/bin/env python3
"""Watching patterns on an evolving graph — the paper's §2.1 scenario.

"In many practical applications, the interested patterns are fixed while
the data graph is dynamic."  This example simulates a transaction-monitoring
deployment: a fixed alarm pattern (the triangle — circular transaction flow) is
tracked over a stream of edge insertions and deletions
using the incremental counting engine, and each update's locality (ball
size) is reported to show why incremental maintenance beats recounting.

Usage::

    python examples/dynamic_graph_monitoring.py [--updates 40]
"""

import argparse
import time

import numpy as np

from repro.core.incremental import IncrementalGPM
from repro.graph import graph_stats, powerlaw_graph
from repro.patterns import PATTERNS, build_plan, count_embeddings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=40)
    args = parser.parse_args()

    graph = powerlaw_graph(
        2_000, avg_degree=6.0, max_degree=150, seed=17,
        name="transactions", triangle_boost=0.2,
    ).relabeled_by_degree()
    print("transaction graph:", graph_stats(graph).row())

    pattern = PATTERNS["3CF"]
    inc = IncrementalGPM(graph, pattern)
    print(f"initial triangle count: {inc.count}")

    rng = np.random.default_rng(99)
    alerts = 0
    t_inc = 0.0
    for step in range(args.updates):
        u, v = map(int, rng.integers(0, graph.num_vertices, 2))
        if u == v:
            continue
        start = time.perf_counter()
        if inc.has_edge(u, v):
            delta = inc.remove_edge(u, v)
            action = "remove"
        else:
            delta = inc.insert_edge(u, v)
            action = "insert"
        t_inc += time.perf_counter() - start
        if delta > 10:
            alerts += 1
            print(
                f"  step {step:>3}: {action} ({u},{v}) -> +{delta} triangles"
                "  ** ALERT: dense structure forming **"
            )
        elif step < 5:
            print(f"  step {step:>3}: {action} ({u},{v}) -> {delta:+d}")

    print(f"\nafter {inc.updates_applied} updates: {inc.count} triangles "
          f"({alerts} alerts)")
    print(f"incremental maintenance: {t_inc:.2f}s total")

    # ground truth from a full recount on the final snapshot
    start = time.perf_counter()
    truth = count_embeddings(inc.snapshot(), build_plan(pattern)).embeddings
    t_full = time.perf_counter() - start
    assert truth == inc.count, "incremental count diverged!"
    print(f"full recount agrees ({truth}) — one recount costs {t_full:.2f}s, "
          f"i.e. ~{t_full * inc.updates_applied / max(t_inc, 1e-9):.0f}x "
          "the incremental stream")


if __name__ == "__main__":
    main()
