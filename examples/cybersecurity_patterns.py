#!/usr/bin/env python3
"""Suspicious-structure hunting in a connection graph (cybersecurity, §1).

Web-spam and intrusion detection look for *densely connected subgraphs* in
communication/link graphs: cliques of mutually-communicating hosts and
diamonds (pairs of hosts sharing two common contacts) are classic alarm
patterns.  This example builds a skewed connection graph with a planted
dense cluster, uses X-SET to count the alarm patterns, and then switches to
enumeration to recover the actual member hosts of every 4-clique — the
workflow of an analyst drilling down from counts to suspects.

Usage::

    python examples/cybersecurity_patterns.py
"""

from collections import Counter

from repro.core import XSetAccelerator
from repro.graph import CSRGraph, graph_stats, powerlaw_graph
from repro.patterns import PATTERNS


def build_connection_graph() -> CSRGraph:
    """A skewed 4k-host connection graph with a planted 12-host botnet."""
    base = powerlaw_graph(
        num_vertices=4_000,
        avg_degree=6.0,
        max_degree=900,
        seed=7,
        name="connections",
        triangle_boost=0.05,
    )
    botnet = list(range(200, 212))  # 12 hosts that all talk to each other
    edges = list(base.edges())
    edges += [
        (u, v) for i, u in enumerate(botnet) for v in botnet[i + 1 :]
    ]
    return CSRGraph.from_edges(
        base.num_vertices, edges, name="connections+botnet"
    ).relabeled_by_degree()


def main() -> None:
    graph = build_connection_graph()
    print("connection graph:", graph_stats(graph).row())

    accel = XSetAccelerator()

    # Stage 1: triage — counts of the alarm patterns.
    print("\nalarm-pattern counts:")
    for name in ("3CF", "4CF", "5CF", "DIA"):
        report = accel.count(graph, PATTERNS[name])
        print(
            f"  {name:<4} {report.embeddings:>10}  "
            f"({report.seconds * 1e3:.3f} ms simulated)"
        )

    # Stage 2: drill-down — enumerate 4-cliques and rank hosts by how many
    # they appear in.  The planted botnet members float to the top.
    membership: Counter[int] = Counter()
    n_cliques = 0
    for embedding in accel.enumerate(graph, PATTERNS["4CF"]):
        n_cliques += 1
        membership.update(embedding)
    print(f"\nenumerated {n_cliques} 4-cliques")
    print("hosts appearing in the most 4-cliques (suspect ranking):")
    for host, appearances in membership.most_common(12):
        print(f"  host {host:>5}: {appearances} cliques")
    top = {h for h, _ in membership.most_common(12)}
    print(f"\n(the 12 planted botnet hosts form C(12,4)={495 * 1} of these; "
          f"suspect set size {len(top)})")


if __name__ == "__main__":
    main()
