#!/usr/bin/env python3
"""Resilience tour: seeded chaos against the query service, verified live.

Computes clean reference counts for a handful of patterns, then replays
the same queries through a :class:`QueryService` running the hardened
resilience profile while a deterministic :class:`FaultPlan` injects
worker crashes, silent bit-flips in the batched engine's result, and
memory stalls.  The demo asserts — not just prints — that every query
still comes back with the *correct* embedding count, then shows how each
one survived: retried after an injected crash, cross-checked and served
from the verifying engine, or rerouted once the batched engine's circuit
breaker opened.

Because the plan is seeded, the run is reproducible: same seed, same
faults, same recovery story every time.

Usage::

    python examples/chaos_demo.py [--seed 2024] [--scale 1.0]

Set ``REPRO_LOG=INFO`` (or pass ``-v``) to watch the service log the
crashes, reroutes and breaker trips as they happen.
"""

import argparse

from repro.core.api import XSetAccelerator
from repro.graph import erdos_renyi
from repro.obs import configure_logging
from repro.patterns import PATTERNS
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
)
from repro.service import QueryService

DEMO_PATTERNS = ("3CF", "TT", "WEDGE", "DIA", "CYC")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2024,
                        help="fault-plan seed (same seed = same chaos)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="graph size knob (vertices = 60 * scale)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args()
    configure_logging(args.verbose)

    graph = erdos_renyi(
        max(20, int(60 * args.scale)), 8.0, seed=7, name="chaos-demo"
    )

    print("clean reference counts (no service, no faults):")
    expected = {}
    for name in DEMO_PATTERNS:
        expected[name] = XSetAccelerator(engine="batched").count(
            graph, PATTERNS[name]
        ).embeddings
        print(f"  {name:6s} {expected[name]}")

    # the hardened profile: batched falls back to event when its breaker
    # opens, open breakers fail fast, and every query is cross-checked
    # on the other engine (verify_fraction=1.0 for the demo's sake;
    # production would sample a fraction).
    plan = FaultPlan(seed=args.seed, specs=(
        FaultSpec(site="worker.run", kind=FaultKind.CRASH,
                  rate=0.5, max_fires=2),
        FaultSpec(site="engine.batched", kind=FaultKind.CORRUPT,
                  rate=0.5, bit=3),
        FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                  rate=0.3, factor=8.0),
    ))
    print(f"\nreplaying under chaos (seed={args.seed}): worker crashes, "
          "bit-flips in the batched datapath, memory stalls\n")

    with QueryService(
        mode="inline",
        resilience=ResilienceConfig.hardened(verify_fraction=1.0),
    ) as service:
        gid = service.register_graph(graph)
        service.arm_faults(plan)
        for name in DEMO_PATTERNS:
            handle = service.submit(gid, PATTERNS[name],
                                    engine="batched", use_cache=False)
            report = handle.result(timeout=120)
            assert report.embeddings == expected[name], (
                f"{name}: {report.embeddings} != {expected[name]}"
            )
            story = []
            if handle.engine != "batched":
                story.append(f"rerouted to {handle.engine}")
            injected = report.notes.get("injected", {})
            for event, n in injected.items():
                story.append(f"injected {event} x{n}")
            if report.notes.get("crosscheck", {}).get("mismatch"):
                story.append("cross-check caught a wrong count")
            print(f"  {name:6s} {report.embeddings:>8d}  correct"
                  + (f"  [{', '.join(story)}]" if story else ""))

        print("\nevery count survived the chaos plan.\n")
        print(service.health().summary())
        stats = service.stats()
        print(f"\nretries={stats.retries} rerouted={stats.rerouted} "
              f"crosscheck_mismatches={stats.crosscheck_mismatches} "
              f"faults_injected={stats.faults_injected}")


if __name__ == "__main__":
    main()
