#!/usr/bin/env python3
"""IEP result-collection expressions — the Figure 7 host-side flow.

The RISC-V core next to each X-SET PE evaluates Intersection Expression
Pruning formulas instead of enumerating the deepest search levels.  This
example shows the three collection styles of the paper's Figure 7 on one
graph, verifying that every IEP shortcut matches plain enumeration:

* 3CF — straightforward accumulation;
* DIA — ``A(A-1)/2`` over the shared candidate set;
* TT  — a GraphSet-style expression with a distinctness correction term.

Usage::

    python examples/iep_expressions.py
"""

import time

from repro.graph import powerlaw_graph
from repro.patterns import (
    PATTERNS,
    Choose,
    MatchedInSet,
    SetSize,
    build_plan,
    count_embeddings,
    count_with_expression,
)


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def main() -> None:
    graph = powerlaw_graph(
        4_000, avg_degree=10.0, max_degree=300, seed=3, name="iep-demo",
        triangle_boost=0.3,
    ).relabeled_by_degree()

    # -- diamond: Figure 7c ----------------------------------------------------
    plain_plan = build_plan(PATTERNS["DIA"], collection="enumerate")
    dia_expr = Choose(SetSize(2), 2)
    iep, t_iep = timed(
        lambda: count_with_expression(graph, plain_plan, 2, dia_expr)
    )
    ref, t_ref = timed(
        lambda: count_embeddings(
            graph, build_plan(PATTERNS["DIA"], collection="count_last")
        ).embeddings
    )
    assert iep == ref
    print(f"DIA: {iep} diamonds")
    print(f"  IEP C(|S|,2) collection : {t_iep*1e3:7.1f} ms")
    print(f"  level-4 loop collection : {t_ref*1e3:7.1f} ms")

    # -- tailed triangle: custom expression with correction term ---------------
    tt_plan = build_plan(
        PATTERNS["TT"], induced=False, order=[0, 1, 2, 3],
        collection="enumerate",
    )
    tt_expr = SetSize(1) - MatchedInSet(1)
    tt_iep, t_tt = timed(
        lambda: count_with_expression(graph, tt_plan, 3, tt_expr)
    )
    tt_ref = count_embeddings(
        graph, build_plan(PATTERNS["TT"], induced=False)
    ).embeddings
    assert tt_iep == tt_ref
    print(f"\nTT: {tt_iep} tailed triangles (non-induced)")
    print(f"  IEP |N(u0)| - matched   : {t_tt*1e3:7.1f} ms "
          "(tail loop eliminated)")

    # -- the algebra is composable ---------------------------------------------
    s = SetSize(2)
    lhs = count_with_expression(graph, plain_plan, 2, s * s - s)
    rhs = 2 * count_with_expression(graph, plain_plan, 2, Choose(s, 2))
    assert lhs == rhs
    print(f"\ncomposable arithmetic: sum A(A-1) == 2*sum C(A,2) == {lhs}")


if __name__ == "__main__":
    main()
