#!/usr/bin/env python3
"""Network-motif significance in a protein-interaction-style graph (§1).

Bioinformatics pipelines (CFinder, color coding) ask which small subgraphs
are *over-represented*: they count motifs in the real network and compare
against a degree-preserving null model.  This example counts all six
connected 4-vertex motifs on a synthetic PPI-like graph with X-SET, rebuilds
the null model with the configuration generator, and reports z-score-style
enrichment ratios — the full motif-significance workflow on the accelerator.

Usage::

    python examples/bioinformatics_motifs.py [--null-samples 3]
"""

import argparse
import math

from repro.analysis import format_table
from repro.core import XSetAccelerator
from repro.graph import configuration_model, graph_stats, powerlaw_graph
from repro.patterns import build_plan, motif_patterns


def build_ppi_like_graph():
    """A 3k-node graph with PPI-ish degree distribution and clustering."""
    return powerlaw_graph(
        num_vertices=3_000,
        avg_degree=7.0,
        max_degree=280,
        seed=13,
        name="ppi-like",
        triangle_boost=0.35,
    ).relabeled_by_degree()


def count_motifs(accel, graph, motifs):
    counts = {}
    for motif in motifs:
        plan = build_plan(motif, induced=True)
        counts[motif.name] = accel.count(graph, motif, plan=plan).embeddings
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--null-samples", type=int, default=3,
                        help="degree-preserving random rewirings (default 3)")
    args = parser.parse_args()

    graph = build_ppi_like_graph()
    print("network:", graph_stats(graph).row())

    accel = XSetAccelerator()
    motifs = motif_patterns(4)
    real = count_motifs(accel, graph, motifs)

    # Null model: configuration-model rewirings with the same degrees.
    null_counts = {m.name: [] for m in motifs}
    for sample in range(args.null_samples):
        null = configuration_model(
            graph.degrees, seed=1000 + sample, name=f"null{sample}"
        ).relabeled_by_degree()
        for name, count in count_motifs(accel, null, motifs).items():
            null_counts[name].append(count)

    rows = []
    for motif in motifs:
        name = motif.name
        samples = null_counts[name]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / max(len(samples) - 1, 1)
        std = math.sqrt(var) if var > 0 else 1.0
        z = (real[name] - mean) / std
        ratio = real[name] / mean if mean else float("inf")
        rows.append(
            (
                name,
                motif.num_edges,
                real[name],
                f"{mean:.0f}",
                f"{ratio:.2f}x",
                f"{z:+.1f}",
            )
        )
    print()
    print(
        format_table(
            ["motif", "#edges", "real count", "null mean", "enrichment",
             "z-score"],
            rows,
            title=f"4-vertex induced motif census "
                  f"({args.null_samples} null samples)",
        )
    )
    print("\ndense motifs (diamond/clique) should be enriched — the real "
          "network has clustering the degree-preserving null lacks.")


if __name__ == "__main__":
    main()
