#!/usr/bin/env python3
"""Motif census of a social network — the paper's intro use case (§1).

Social-network analysis classifies networks by their pattern frequencies:
triangles and wedges (3-motifs, the 3MF workload), plus the denser 4-vertex
structures — diamonds, 4-cliques, tailed triangles and 4-cycles.  This
example runs the whole census on the WikiVote stand-in and compares how the
barrier-free scheduler behaves against DFS scheduling on the same hardware,
showing why irregular degree distributions need out-of-order dispatch.

Usage::

    python examples/social_network_motifs.py [--scale 0.5]
"""

import argparse

from repro.analysis import format_table
from repro.core import XSetAccelerator, count_motifs3, xset_default
from repro.graph import graph_stats, load_dataset
from repro.patterns import PATTERNS


def motif_census(scale: float) -> None:
    graph = load_dataset("WV", scale=scale)
    print("graph:", graph_stats(graph).row())

    # -- 3-motif finding (3MF): triangle + induced wedge ----------------------
    motifs = count_motifs3(graph)
    print(f"\n3-motif census: {motifs['triangle']} triangles, "
          f"{motifs['wedge']} induced wedges")
    closure = 3 * motifs["triangle"] / (
        3 * motifs["triangle"] + motifs["wedge"]
    )
    print(f"global clustering (transitivity): {closure:.4f}")

    # -- 4-vertex patterns ----------------------------------------------------
    accel = XSetAccelerator()
    rows = []
    for name in ("4CF", "DIA", "TT", "CYC"):
        report = accel.count(graph, PATTERNS[name])
        rows.append(
            (
                name,
                report.embeddings,
                f"{report.cycles:.0f}",
                f"{report.seconds * 1e3:.3f} ms",
                f"{report.siu_utilization:.1%}",
            )
        )
    print()
    print(
        format_table(
            ["pattern", "count", "cycles", "sim time", "SIU util"],
            rows,
            title="4-vertex pattern census on X-SET (16 PEs, 4 SIUs each)",
        )
    )

    # -- scheduler comparison on the most irregular workload -------------------
    print("\nscheduler impact on the tailed-triangle workload:")
    for sched, params in (
        ("barrier-free", {}),
        ("pseudo-dfs", {"window": 4}),
        ("dfs", {}),
    ):
        cfg = xset_default(
            scheduler=sched, scheduler_params=params, name=f"xset-{sched}"
        )
        report = XSetAccelerator(cfg).count(graph, PATTERNS["TT"])
        print(
            f"  {sched:<13} {report.cycles:>12.0f} cycles "
            f"(SIU util {report.siu_utilization:.1%})"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5)")
    args = parser.parse_args()
    motif_census(args.scale)


if __name__ == "__main__":
    main()
