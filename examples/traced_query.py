#!/usr/bin/env python3
"""Observability tour: trace one query end to end and open it in Perfetto.

Submits a triangle-counting query through a traced :class:`QueryService`,
prints the execution profile ("where did the time go": per-level task and
intersection-element totals, cache hit rates, span durations), dumps the
service's metrics in Prometheus text form, and exports one Chrome
trace-event JSON unifying the wall-clock span tree with the simulator's
per-PE activity timeline.

Load the exported file at https://ui.perfetto.dev (or chrome://tracing)
to see the service → worker → engine → simulator spans nested above the
accelerator's PE lanes.

Usage::

    python examples/traced_query.py [--out trace.json] [--scale 0.1]

Set ``REPRO_LOG=INFO`` (or pass ``-v`` to ``python -m repro``) to also see
the service's log output — retries, crashes and timeouts are logged, not
printed.
"""

import argparse

from repro.analysis.reporting import render_profile
from repro.graph import powerlaw_graph
from repro.obs import configure_logging
from repro.patterns import PATTERNS
from repro.service import QueryService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json",
                        help="where to write the Perfetto trace")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="graph size knob (vertices = 3000 * scale)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args()
    configure_logging(args.verbose)

    graph = powerlaw_graph(
        num_vertices=max(200, int(3_000 * args.scale)),
        avg_degree=10.0,
        max_degree=150,
        seed=7,
        name="traced-demo",
    ).relabeled_by_degree()

    # observability=True turns on span tracing and per-query profiling;
    # the same service without it returns byte-identical counts.
    with QueryService(mode="inline", observability=True) as service:
        gid = service.register_graph(graph)
        report = service.count(gid, PATTERNS["3CF"], engine="event")
        print(f"{report.embeddings} triangles in {report.cycles:.0f} "
              f"simulated cycles\n")

        print(render_profile(service.profiles()[-1]))

        print("\nPrometheus metrics:\n")
        print(service.metrics_text())

        service.export_trace(args.out)
        events = service.export_trace()
        spans = sum(1 for e in events if e.get("cat") == "span")
        pe = sum(1 for e in events if e.get("cat") == "pe")
        print(f"wrote {args.out}: {spans} spans + {pe} PE activity events")
        print("open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
