#!/usr/bin/env python3
"""Quickstart: count triangles on a synthetic social graph with X-SET.

Runs the full SoC flow — plan generation, RoCC offload, cycle-approximate
simulation — and prints the count, simulated time and hardware utilisation,
then cross-checks the count against the pure-software reference executor.

Usage::

    python examples/quickstart.py
"""

from repro.core import XSetAccelerator, config_table, xset_default
from repro.graph import graph_stats, powerlaw_graph
from repro.patterns import PATTERNS, build_plan, count_embeddings


def main() -> None:
    # 1. A data graph.  Any sorted-CSR undirected graph works; here we
    #    generate a 5k-vertex power-law graph resembling a small social net.
    graph = powerlaw_graph(
        num_vertices=5_000,
        avg_degree=12.0,
        max_degree=400,
        seed=42,
        name="quickstart-social",
        triangle_boost=0.3,
    ).relabeled_by_degree()
    print("data graph:", graph_stats(graph).row())

    # 2. The accelerator in its paper configuration (Table 2).
    config = xset_default()
    print("\nsystem configuration:")
    print(config_table(config))

    # 3. Count triangles end to end.
    accel = XSetAccelerator(config)
    pattern = PATTERNS["3CF"]
    report = accel.count(graph, pattern)
    print("\n" + report.summary())

    # 4. Cross-check against the software reference.
    ref = count_embeddings(graph, build_plan(pattern))
    assert ref.embeddings == report.embeddings, "simulator/reference diverge!"
    print(f"reference executor agrees: {ref.embeddings} triangles")

    # 5. The matching plan the hardware executed.
    print("\nmatching plan:")
    print(accel.plan_for(pattern).describe())


if __name__ == "__main__":
    main()
