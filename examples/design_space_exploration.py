#!/usr/bin/env python3
"""Architect's tour: explore the X-SET hardware design space.

Uses the library the way the paper's §7.5–§7.7 do — sweeping SIU
microarchitecture, segment width, scheduler, PE count and bitmap width on a
fixed workload, and printing the performance / area Pareto view an
accelerator architect would use to choose a configuration.

Usage::

    python examples/design_space_exploration.py [--scale 0.3]
"""

import argparse

from repro.analysis import format_table
from repro.core import XSetAccelerator, xset_default
from repro.graph import load_dataset
from repro.hw import pe_area_breakdown, siu_area_power
from repro.patterns import PATTERNS


def explore(scale: float) -> None:
    graph = load_dataset("WV", scale=scale)
    pattern = PATTERNS["4CF"]
    base = XSetAccelerator().count(graph, pattern)
    print(base.summary())

    # -- SIU microarchitecture × segment width --------------------------------
    rows = []
    for kind in ("order-aware", "sma", "merge"):
        widths = (4, 8, 16) if kind != "merge" else (1,)
        for n in widths:
            cfg = xset_default(
                siu_kind=kind,
                segment_width=max(n, 2) if kind != "merge" else 1,
                bitmap_width=8 if kind != "merge" else 0,
                name=f"{kind}-{n}",
            )
            report = XSetAccelerator(cfg).count(graph, pattern)
            area = siu_area_power(kind, max(n, 2)).total_mm2
            perf = base.seconds / report.seconds
            rows.append(
                (
                    f"{kind} N={n}",
                    f"{report.cycles:.0f}",
                    f"{perf:.2f}x",
                    f"{area * 1e3:.2f}",
                    f"{perf / (area * 1e3):.2f}",
                )
            )
    print()
    print(
        format_table(
            ["SIU design", "cycles", "perf", "area (1e-3 mm^2)",
             "perf/area"],
            rows,
            title="SIU design space on WV / 4-clique",
        )
    )

    # -- PE scaling ------------------------------------------------------------
    rows = []
    for pes in (1, 2, 4, 8, 16, 32):
        cfg = xset_default(num_pes=pes, name=f"xset-{pes}pe")
        report = XSetAccelerator(cfg).count(graph, pattern)
        pe_mm2 = pe_area_breakdown()["total"]
        rows.append(
            (
                pes,
                f"{report.cycles:.0f}",
                f"{report.siu_utilization:.1%}",
                f"{pes * pe_mm2:.2f}",
            )
        )
    print()
    print(
        format_table(
            ["#PEs", "cycles", "SIU util", "total area (mm^2)"],
            rows,
            title="PE scaling",
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    args = parser.parse_args()
    explore(args.scale)


if __name__ == "__main__":
    main()
