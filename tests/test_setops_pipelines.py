"""Exact hardware pipeline models: functional equivalence + cycle behaviour.

These tests pin the element-level models to the paper: the Figure 4/9
worked examples, the bitonic-segment property of the MIN stage, match-flag
correctness in the CAS network, and the throughput/latency characteristics
of Table 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph import bitmapcsr as bc
from repro.setops import (
    FLAG_L,
    FLAG_R,
    Element,
    MergeQueuePipeline,
    OrderAwarePipeline,
    SystolicMergeArray,
    bitonic_merge_segment,
    min_stage,
)
from repro.setops.trace import INF_KEY

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=200), max_size=50, unique=True
).map(lambda xs: np.asarray(sorted(xs), dtype=np.int64))


def _elems(values, flag):
    return [Element(key=int(v), flag=flag) for v in values]


class TestMinStage:
    def test_paper_figure9_cycle0(self):
        # A = (0,1,3,4), B reversed window = (6,3,2,0) -> mins (0,1,2,0)
        a = _elems([0, 1, 3, 4], FLAG_L)
        b = _elems([0, 2, 3, 6], FLAG_R)
        seg, taken_a, cmps = min_stage(a, b)
        assert [e.key for e in seg] == [0, 1, 2, 0]
        assert taken_a == 2
        assert cmps == 4

    def test_output_is_bitonic(self, rng):
        for _ in range(100):
            a = np.unique(rng.integers(0, 50, 8))[:4]
            b = np.unique(rng.integers(0, 50, 8))[:4]
            a = np.pad(a, (0, 4 - a.size), constant_values=INF_KEY)
            b = np.pad(b, (0, 4 - b.size), constant_values=INF_KEY)
            seg, _, _ = min_stage(_elems(a, FLAG_L), _elems(b, FLAG_R))
            keys = [e.key for e in seg]
            # bitonic: rises then falls (allowing flat INF tails)
            drops = sum(
                1 for i in range(len(keys) - 1) if keys[i] > keys[i + 1]
            )
            rises_after_drop = any(
                keys[i] > keys[i + 1] and keys[j] < keys[j + 1]
                for i in range(len(keys) - 1)
                for j in range(i + 1, len(keys) - 1)
            )
            assert not rises_after_drop, keys
            del drops

    def test_selects_global_minimum_n(self, rng):
        for _ in range(50):
            a = np.sort(rng.choice(100, size=4, replace=False))
            b = np.sort(rng.choice(100, size=4, replace=False))
            seg, _, _ = min_stage(_elems(a, FLAG_L), _elems(b, FLAG_R))
            got = sorted(e.key for e in seg)
            want = sorted(np.concatenate([a, b]).tolist())[:4]
            assert got == want

    def test_unequal_windows_rejected(self):
        with pytest.raises(ConfigError):
            min_stage(_elems([1], FLAG_L), _elems([1, 2], FLAG_R))


class TestBitonicMerge:
    def test_sorts_bitonic_sequence(self):
        seg = _elems([0, 1, 2], FLAG_L) + _elems([0], FLAG_R)
        seg = [seg[0], seg[1], seg[2], seg[3]]
        out, cmps = bitonic_merge_segment(seg)
        assert [e.key for e in out] == [0, 0, 1, 2]
        assert cmps == 4  # N/2 * log2(N) with N=4

    def test_match_flags_set_on_equal_keys(self):
        seg = [
            Element(5, flag=FLAG_L),
            Element(7, flag=FLAG_L),
            Element(7, flag=FLAG_R),
            Element(5, flag=FLAG_R),
        ]
        out, _ = bitonic_merge_segment(seg)
        matched = [e for e in out if e.match]
        assert {e.key for e in matched} == {5, 7}

    def test_match_flag_soundness_random(self, rng):
        """A flagged element always has an equal-key neighbour after sort."""
        for _ in range(200):
            asc = np.sort(rng.choice(30, size=4, replace=False))
            desc = np.sort(rng.choice(30, size=4, replace=False))[::-1]
            seg = _elems(asc, FLAG_L) + _elems(desc, FLAG_R)
            out, _ = bitonic_merge_segment(seg)
            keys = [e.key for e in out]
            assert keys == sorted(keys)
            for i, e in enumerate(out):
                if e.match:
                    neighbours = keys[max(i - 1, 0) : i + 2]
                    assert neighbours.count(e.key) >= 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            bitonic_merge_segment(_elems([1, 2, 3], FLAG_L))

    def test_tie_break_l_before_r(self):
        seg = [Element(3, flag=FLAG_R), Element(3, flag=FLAG_L)]
        out, _ = bitonic_merge_segment(seg)
        assert out[0].flag == FLAG_L


class TestPaperExamples:
    def test_figure4_intersection_and_difference(self):
        a = np.array([0, 2, 3, 4])
        b = np.array([1, 2, 4, 5])
        pipe = OrderAwarePipeline(segment_width=8)
        assert pipe.run(a, b, "intersect").result.tolist() == [2, 4]
        assert pipe.run(a, b, "difference").result.tolist() == [0, 3]

    def test_figure9_streaming(self):
        a = np.array([0, 1, 3, 4, 5, 6, 7])
        b = np.array([0, 2, 3, 6, 7])
        trace = OrderAwarePipeline(segment_width=4).run(a, b, "intersect")
        assert trace.result.tolist() == [0, 3, 6, 7]
        # 12 elements at N=4 -> 3 issue cycles, as the figure shows
        assert trace.issue_cycles == 3


@pytest.mark.parametrize(
    "make_pipe",
    [
        lambda: OrderAwarePipeline(4),
        lambda: OrderAwarePipeline(8),
        lambda: MergeQueuePipeline(),
        lambda: SystolicMergeArray(4),
        lambda: SystolicMergeArray(8),
    ],
    ids=["oa4", "oa8", "mq", "sma4", "sma8"],
)
class TestFunctionalEquivalence:
    @given(a=sorted_sets, b=sorted_sets)
    @settings(max_examples=60, deadline=None)
    def test_intersection(self, make_pipe, a, b):
        got = make_pipe().run(a, b, "intersect").result
        assert np.array_equal(got, np.intersect1d(a, b))

    @given(a=sorted_sets, b=sorted_sets)
    @settings(max_examples=60, deadline=None)
    def test_difference(self, make_pipe, a, b):
        got = make_pipe().run(a, b, "difference").result
        assert np.array_equal(got, np.setdiff1d(a, b))

    def test_empty_inputs(self, make_pipe):
        e = np.array([], dtype=np.int64)
        x = np.array([1, 5, 9])
        assert make_pipe().run(e, x, "intersect").result.size == 0
        assert make_pipe().run(x, e, "difference").result.tolist() == [1, 5, 9]


@pytest.mark.parametrize("width", [2, 4, 8])
class TestBitmapPipelines:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bitmap_intersection_all_archs(self, width, data):
        a = data.draw(sorted_sets)
        b = data.draw(sorted_sets)
        aw, bw = bc.encode(a, width), bc.encode(b, width)
        for pipe in (
            OrderAwarePipeline(4, width),
            MergeQueuePipeline(width),
            SystolicMergeArray(4, width),
        ):
            ti = pipe.run(aw, bw, "intersect")
            assert np.array_equal(
                bc.decode(ti.result, width), np.intersect1d(a, b)
            )
            assert ti.result_count == np.intersect1d(a, b).size
            td = pipe.run(aw, bw, "difference")
            assert np.array_equal(
                bc.decode(td.result, width), np.setdiff1d(a, b)
            )


class TestCycleCharacteristics:
    def test_order_aware_throughput_n_per_cycle(self):
        a = np.arange(0, 400, 2)
        b = np.arange(1, 401, 2)
        for n in (4, 8, 16):
            trace = OrderAwarePipeline(n).run(a, b, "intersect")
            assert trace.issue_cycles == -(-(a.size + b.size) // n)

    def test_merge_queue_one_per_cycle(self):
        a = np.arange(0, 100, 2)
        b = np.arange(1, 101, 2)
        trace = MergeQueuePipeline().run(a, b, "intersect")
        assert trace.issue_cycles >= a.size + b.size - 2

    def test_order_aware_latency_logarithmic(self):
        assert OrderAwarePipeline(8).pipeline_depth == 2 + 2 * 3
        assert OrderAwarePipeline(16).pipeline_depth == 2 + 2 * 4

    def test_systolic_latency_linear(self):
        assert SystolicMergeArray(8).pipeline_depth == 16
        assert SystolicMergeArray(16).pipeline_depth == 32

    def test_comparator_scaling(self):
        oa = OrderAwarePipeline(16).comparator_count
        sma = SystolicMergeArray(16).comparator_count
        assert oa == 16 + 8 * 4 + 1
        assert sma == 256

    def test_order_aware_faster_than_merge_on_long_sets(self):
        a = np.arange(0, 2000, 2)
        b = np.arange(1, 2001, 2)
        oa = OrderAwarePipeline(8).run(a, b, "intersect").cycles
        mq = MergeQueuePipeline().run(a, b, "intersect").cycles
        assert oa * 4 < mq

    def test_merge_lower_latency_on_tiny_sets(self):
        a = np.array([1])
        b = np.array([2])
        oa = OrderAwarePipeline(16).run(a, b, "intersect").cycles
        mq = MergeQueuePipeline().run(a, b, "intersect").cycles
        assert mq < oa
