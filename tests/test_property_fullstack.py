"""Full-stack property tests: random graphs × random patterns × simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import xset_default
from repro.graph import erdos_renyi
from repro.memory import MemoryConfig, MemoryHierarchy
from repro.patterns import (
    build_plan,
    count_unique_embeddings,
    motif_patterns,
)
from repro.sim import run_on_soc

MOTIFS4 = motif_patterns(4)


@given(
    seed=st.integers(0, 1000),
    motif_idx=st.integers(0, len(MOTIFS4) - 1),
    induced=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_simulator_matches_oracle_random_motifs(seed, motif_idx, induced):
    """Any 4-vertex pattern, any semantics, any random graph: exact counts."""
    g = erdos_renyi(14, 4.0, seed=seed)
    pattern = MOTIFS4[motif_idx]
    plan = build_plan(pattern, induced=induced)
    report = run_on_soc(g, plan, xset_default(num_pes=2))
    assert report.embeddings == count_unique_embeddings(
        g, pattern, induced=induced
    )


@given(
    seed=st.integers(0, 100),
    sius=st.integers(1, 4),
    width=st.sampled_from([0, 4, 8]),
    sched=st.sampled_from(["barrier-free", "pseudo-dfs", "dfs", "shogun"]),
)
@settings(max_examples=20, deadline=None)
def test_any_configuration_is_exact(seed, sius, width, sched):
    g = erdos_renyi(20, 5.0, seed=seed)
    pattern = MOTIFS4[2]
    plan = build_plan(pattern, induced=False)
    cfg = xset_default(
        num_pes=2, sius_per_pe=sius, bitmap_width=width, scheduler=sched,
        name="prop",
    )
    report = run_on_soc(g, plan, cfg)
    assert report.embeddings == count_unique_embeddings(g, pattern)
    assert report.cycles > 0


class TestMemoryFuzz:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 3),                 # pe
                st.integers(0, 1 << 20),           # word address
                st.integers(0, 200),               # words
            ),
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_stream_invariants(self, ops):
        h = MemoryHierarchy(MemoryConfig(num_pes=4, private_kb=2,
                                         shared_mb=1 / 16))
        now = 0.0
        for pe, addr, words in ops:
            r = h.stream_read(now, pe, addr, words)
            assert r.first_latency >= 0
            assert r.stream_cycles >= 0
            assert r.shared_misses <= r.private_misses <= r.lines
            now += 1.0
        # LRU occupancy never exceeds capacity
        for cache in h.private:
            assert cache.occupancy <= cache.config.num_lines
        assert h.shared.occupancy <= h.shared.config.num_lines

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_rereads_never_slower(self, seed):
        """A warm re-read of the same stream never costs more than cold."""
        rng = np.random.default_rng(seed)
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        addr = int(rng.integers(0, 1 << 16)) * 16
        words = int(rng.integers(1, 300))
        cold = h.stream_read(0.0, 0, addr, words)
        warm = h.stream_read(1000.0, 0, addr, words)
        assert warm.total_cycles <= cold.total_cycles + 1e-9
