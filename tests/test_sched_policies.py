"""Unit tests for the scheduling policies (no simulator involved)."""

import pytest

from repro.errors import SchedulerError
from repro.sched import (
    BarrierFreeScheduler,
    DFSScheduler,
    PseudoDFSScheduler,
    ShogunScheduler,
    SimTask,
    TaskSetState,
    make_scheduler,
)


def roots(n, level=1):
    return [SimTask(level=level, vertex=v, parent=None) for v in range(n)]


def children_of(parent, n):
    return [
        SimTask(level=parent.level + 1, vertex=v, parent=parent)
        for v in range(n)
    ]


class TestSimTask:
    def test_embedding_accumulates(self):
        r = SimTask(level=1, vertex=7, parent=None)
        c = SimTask(level=2, vertex=9, parent=r)
        g = SimTask(level=3, vertex=11, parent=c)
        assert g.embedding == (7, 9, 11)

    def test_ancestor_walk(self):
        r = SimTask(level=1, vertex=0, parent=None)
        c = SimTask(level=2, vertex=1, parent=r)
        g = SimTask(level=3, vertex=2, parent=c)
        assert g.ancestor(1) is r
        assert g.ancestor(2) is c
        assert g.ancestor(3) is g


class TestTaskSetState:
    def test_lifecycle(self):
        parent = SimTask(level=1, vertex=0, parent=None)
        kids = children_of(parent, 3)
        ts = TaskSetState(parent, kids)
        assert ts.ready and not ts.retired
        popped = [ts.pop() for _ in range(3)]
        assert not ts.ready and not ts.retired
        for t in popped:
            ts.complete_one()
        assert ts.retired

    def test_underflow_detected(self):
        ts = TaskSetState(None, roots(1))
        ts.pop()
        ts.complete_one()
        with pytest.raises(AssertionError):
            ts.complete_one()


class TestDFS:
    def test_single_in_flight(self):
        s = DFSScheduler()
        s.push_roots(roots(3))
        first = s.pop()
        assert first is not None
        assert s.pop() is None  # strictly one at a time
        s.on_complete(first)
        assert s.pop() is not None

    def test_depth_first_order(self):
        s = DFSScheduler()
        r = roots(2)
        s.push_roots(r)
        t = s.pop()
        assert t.vertex == 0
        kids = children_of(t, 2)
        s.on_complete(t)
        s.push_children(t, kids)
        nxt = s.pop()
        assert nxt.level == 2  # children before the second root

    def test_drained(self):
        s = DFSScheduler()
        assert s.drained
        s.push_roots(roots(1))
        assert not s.drained
        t = s.pop()
        s.on_complete(t)
        assert s.drained


class TestPseudoDFS:
    def test_window_parallelism(self):
        s = PseudoDFSScheduler(window=2)
        s.push_roots(roots(4))
        a, b = s.pop(), s.pop()
        assert a is not None and b is not None
        assert s.pop() is None  # window of 2 exhausted

    def test_barrier_until_window_drains(self):
        s = PseudoDFSScheduler(window=2)
        s.push_roots(roots(4))
        a, b = s.pop(), s.pop()
        s.on_complete(a)
        assert s.pop() is None  # b still running: barrier holds
        s.on_complete(b)
        assert s.pop() is not None

    def test_window_same_level_only(self):
        s = PseudoDFSScheduler(window=4)
        s.push_roots(roots(1))
        t = s.pop()
        s.on_complete(t)
        s.push_children(t, children_of(t, 2))
        s.push_roots(roots(1))  # stack: [child1, child0, root]
        first = s.pop()  # top of stack is the level-1 root
        assert first.level == 1
        assert s.pop() is None  # level-2 children cannot join its window
        s.on_complete(first)
        a, b = s.pop(), s.pop()
        assert a.level == b.level == 2

    def test_invalid_window(self):
        with pytest.raises(SchedulerError):
            PseudoDFSScheduler(window=0)


class TestBarrierFree:
    def test_cross_level_dispatch_no_barrier(self):
        s = BarrierFreeScheduler()
        s.push_roots(roots(2))
        a = s.pop()
        b = s.pop()
        assert a is not None and b is not None  # siblings concurrently
        s.on_complete(a)
        s.push_children(a, children_of(a, 2))
        # a's child is ready even though b has not completed
        c = s.pop()
        assert c.level == 2

    def test_depth_first_priority(self):
        s = BarrierFreeScheduler()
        s.push_roots(roots(3))
        a = s.pop()
        s.on_complete(a)
        s.push_children(a, children_of(a, 1))
        nxt = s.pop()
        assert nxt.level == 2  # deeper task preferred over remaining roots

    def test_task_set_capacity_blocks_spawn(self):
        s = BarrierFreeScheduler(num_task_sets=1)
        s.push_roots(roots(2))
        a, b = s.pop(), s.pop()
        s.on_complete(a)
        s.push_children(a, children_of(a, 1))
        s.on_complete(b)
        s.push_children(b, children_of(b, 1))  # capacity full: queued
        assert s.pending == 2  # both children counted as pending
        ca = s.pop()
        assert ca.task_set.parent is a
        assert s.pop() is None  # b's children not admitted yet
        s.on_complete(ca)  # a's set retires -> b's children admitted
        cb = s.pop()
        assert cb is not None and cb.task_set.parent is b

    def test_width_limits_per_set_in_flight(self):
        s = BarrierFreeScheduler(task_set_width=2)
        s.push_roots(roots(1))
        r = s.pop()
        s.on_complete(r)
        s.push_children(r, children_of(r, 5))
        got = [s.pop(), s.pop()]
        assert all(t is not None for t in got)
        assert s.pop() is None  # width 2 reached for this set
        s.on_complete(got[0])
        assert s.pop() is not None

    def test_peak_active_sets_tracked(self):
        s = BarrierFreeScheduler()
        s.push_roots(roots(2))
        a, b = s.pop(), s.pop()
        s.on_complete(a)
        s.push_children(a, children_of(a, 1))
        s.on_complete(b)
        s.push_children(b, children_of(b, 1))
        assert s.peak_active_sets == 2

    def test_in_flight_underflow_guard(self):
        s = BarrierFreeScheduler()
        s.push_roots(roots(1))
        t = s.pop()
        s.on_complete(t)
        with pytest.raises(SchedulerError):
            s.on_complete(t)

    def test_invalid_capacity(self):
        with pytest.raises(SchedulerError):
            BarrierFreeScheduler(num_task_sets=0)


class TestShogun:
    def test_sync_inserts_drain_and_stall(self):
        s = ShogunScheduler(sync_period=2, sync_stall=10)
        s.push_roots(roots(4))
        a, b = s.pop(), s.pop()
        s.on_complete(a)
        s.on_complete(b)  # period reached, drained -> stall pending
        assert s.pending_stall == 10
        assert s.pop() is not None

    def test_draining_blocks_pops(self):
        s = ShogunScheduler(sync_period=1, sync_stall=5)
        s.push_roots(roots(3))
        a = s.pop()
        b = s.pop()
        s.on_complete(a)  # period hit but b in flight: draining
        assert s.pop() is None
        s.on_complete(b)
        assert s.pop() is not None


class TestFactory:
    def test_all_kinds(self):
        for kind in ("dfs", "pseudo-dfs", "barrier-free", "shogun"):
            assert make_scheduler(kind).name == kind

    def test_unknown_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler("random")

    def test_params_forwarded(self):
        s = make_scheduler("barrier-free", num_task_sets=7)
        assert s.num_task_sets == 7
