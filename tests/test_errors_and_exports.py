"""Error hierarchy and public-API surface tests."""

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in (
            "GraphFormatError",
            "PatternError",
            "PlanError",
            "ConfigError",
            "SimulationError",
            "SchedulerError",
            "MemoryModelError",
            "ServiceError",
            "AdmissionError",
            "QueueFullError",
            "JobTimeoutError",
            "JobCancelledError",
            "WorkerCrashError",
            "ClusterError",
            "CommError",
            "CommClosedError",
            "CommTimeoutError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.XSetError)

    def test_plan_error_is_pattern_error(self):
        assert issubclass(errors.PlanError, errors.PatternError)

    def test_scheduler_and_memory_are_simulation_errors(self):
        assert issubclass(errors.SchedulerError, errors.SimulationError)
        assert issubclass(errors.MemoryModelError, errors.SimulationError)

    def test_service_errors_are_service_errors(self):
        for name in ("QueueFullError", "JobTimeoutError",
                     "JobCancelledError", "WorkerCrashError",
                     "AdmissionError"):
            assert issubclass(getattr(errors, name), errors.ServiceError)

    def test_cluster_errors_nest_under_service_error(self):
        assert issubclass(errors.ClusterError, errors.ServiceError)
        for name in ("CommError", "CommClosedError", "CommTimeoutError"):
            assert issubclass(getattr(errors, name), errors.ClusterError)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(errors.XSetError):
            raise errors.SchedulerError("boom")


class TestPackageSurface:
    def test_all_subpackages_import(self):
        import repro.analysis
        import repro.baselines
        import repro.cli
        import repro.cluster
        import repro.core
        import repro.graph
        import repro.hw
        import repro.memory
        import repro.patterns
        import repro.sched
        import repro.service
        import repro.setops
        import repro.sim
        import repro.siu  # noqa: F401

    def test_dunder_all_resolves(self):
        """Every name exported in __all__ must actually exist."""
        import repro.analysis
        import repro.baselines
        import repro.cluster
        import repro.core
        import repro.graph
        import repro.hw
        import repro.memory
        import repro.patterns
        import repro.sched
        import repro.service
        import repro.setops
        import repro.sim
        import repro.siu

        for module in (
            repro.analysis, repro.baselines, repro.cluster, repro.core,
            repro.graph, repro.hw, repro.memory, repro.patterns,
            repro.sched, repro.service, repro.setops, repro.sim,
            repro.siu,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.5.0"

    def test_public_docstrings(self):
        """Every public class/function in the core API carries a docstring."""
        import inspect

        import repro.core as core

        for name in core.__all__:
            obj = getattr(core, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, name
