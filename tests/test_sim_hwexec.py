"""Unit tests for the hardware task executor."""

import numpy as np
import pytest

from repro.core import xset_default
from repro.memory import MemoryConfig, MemoryHierarchy
from repro.patterns import PATTERNS, build_plan
from repro.sched.task import SimTask
from repro.sim.hwexec import HardwareTaskExecutor, _row_word_counts
from repro.siu import make_siu


@pytest.fixture
def executor(toy_graph):
    plan = build_plan(PATTERNS["3CF"])
    memory = MemoryHierarchy(MemoryConfig(num_pes=1))
    siu = make_siu("order-aware", 8, bitmap_width=0)
    return HardwareTaskExecutor(toy_graph, plan, siu, memory)


class TestRowWordCounts:
    def test_width_zero_is_degrees(self, toy_graph):
        counts = _row_word_counts(toy_graph, 0)
        assert np.array_equal(counts, toy_graph.degrees)

    def test_width_matches_encoder(self, skewed_graph):
        from repro.graph.bitmapcsr import encoded_length

        for width in (1, 4, 8):
            counts = _row_word_counts(skewed_graph, width)
            for v in range(0, skewed_graph.num_vertices, 17):
                assert counts[v] == encoded_length(
                    skewed_graph.neighbors(v), width
                ), (v, width)

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(4)
        assert _row_word_counts(g, 8).tolist() == [0, 0, 0, 0]

    def test_zero_vertex_graph(self):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(0)
        assert _row_word_counts(g, 8).size == 0
        assert _row_word_counts(g, 0).size == 0

    def test_isolated_vertices_interleaved(self):
        """Degree-0 rows between populated rows must count zero words."""
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(6, [(1, 4), (4, 5)])
        counts = _row_word_counts(g, 4)
        assert counts[0] == 0 and counts[2] == 0 and counts[3] == 0
        # row 4 = {1, 5}: blocks 0 and 1 -> two words
        assert counts[4] == 2
        assert counts[1] == 1 and counts[5] == 1

    def test_single_block_rows(self):
        """A row entirely inside one bitmap block costs exactly one word."""
        from repro.graph import CSRGraph

        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        g = CSRGraph.from_edges(4, edges)
        counts = _row_word_counts(g, 8)  # all vertex IDs < 8: one block
        assert counts.tolist() == [1, 1, 1, 1]

    def test_width_zero_empty_rows(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 1)])
        assert _row_word_counts(g, 0).tolist() == [1, 1, 0]


class TestExecute:
    def test_load_level_task(self, executor, toy_graph):
        task = SimTask(level=1, vertex=4, parent=None)
        outcome = executor.execute(task, pe=0, now=0.0)
        # level 1 of the triangle plan loads N(u0) and spawns filtered kids
        assert outcome.set_ops == 0
        assert outcome.count_delta == 0
        # filter is u1 < u0: neighbours of 4 below 4
        assert sorted(outcome.children.tolist()) == [0, 2, 3]
        assert outcome.elapsed > 0
        assert outcome.occupancy <= outcome.elapsed

    def test_leaf_count_task(self, executor, toy_graph):
        root = SimTask(level=1, vertex=4, parent=None)
        executor.execute(root, pe=0, now=0.0)
        leaf = SimTask(level=2, vertex=3, parent=root)
        outcome = executor.execute(leaf, pe=0, now=10.0)
        # triangle leaf: |N(4) ∩ N(3)| with < u1 filter
        assert outcome.set_ops == 1
        assert outcome.children.size == 0
        assert outcome.count_delta == 1  # vertex 2 < 3 completes (4,3,2)

    def test_intermediate_set_stored(self, toy_graph):
        plan = build_plan(PATTERNS["4CF"])
        memory = MemoryHierarchy(MemoryConfig(num_pes=1))
        ex = HardwareTaskExecutor(
            toy_graph, plan, make_siu("order-aware", 8), memory
        )
        root = SimTask(level=1, vertex=4, parent=None)
        ex.execute(root, pe=0, now=0.0)
        assert root.raw_set is not None
        assert root.raw_words == root.raw_set.size
        mid = SimTask(level=2, vertex=3, parent=root)
        out = ex.execute(mid, pe=0, now=5.0)
        assert mid.raw_set is not None  # stored for level-3 reuse
        assert out.words_out == mid.raw_words

    def test_occupancy_excludes_pipeline_tail(self, executor):
        root = SimTask(level=1, vertex=4, parent=None)
        executor.execute(root, pe=0, now=0.0)
        leaf = SimTask(level=2, vertex=3, parent=root)
        outcome = executor.execute(leaf, pe=0, now=10.0)
        depth = executor.siu.pipeline_depth
        assert outcome.elapsed - outcome.occupancy == pytest.approx(depth)

    def test_task_overhead_charged(self, toy_graph):
        plan = build_plan(PATTERNS["3CF"])
        mem = MemoryHierarchy(MemoryConfig(num_pes=1))
        fast = HardwareTaskExecutor(
            toy_graph, plan, make_siu("order-aware", 8), mem
        )
        mem2 = MemoryHierarchy(MemoryConfig(num_pes=1))
        slow = HardwareTaskExecutor(
            toy_graph, plan, make_siu("order-aware", 8), mem2,
            task_overhead_cycles=10,
        )
        t1 = SimTask(level=1, vertex=4, parent=None)
        t2 = SimTask(level=1, vertex=4, parent=None)
        a = fast.execute(t1, 0, 0.0)
        b = slow.execute(t2, 0, 0.0)
        assert b.elapsed == pytest.approx(a.elapsed + 10)

    def test_set_words_bitmap(self, toy_graph):
        plan = build_plan(PATTERNS["3CF"])
        mem = MemoryHierarchy(MemoryConfig(num_pes=1))
        ex = HardwareTaskExecutor(
            toy_graph, plan, make_siu("order-aware", 8, bitmap_width=8), mem
        )
        assert ex.set_words(np.array([0, 1, 2, 7])) == 1
        assert ex.set_words(np.array([0, 8, 16])) == 3
        assert ex.set_words(np.array([], dtype=np.int64)) == 0

    def test_set_words_width_zero_is_cardinality(self, executor):
        # plain sorted-array streams: one word per element
        assert executor.set_words(np.array([3, 9, 12, 40])) == 4
        assert executor.set_words(np.array([], dtype=np.int64)) == 0

    def test_set_words_matches_row_word_counts(self, skewed_graph):
        """set_words on a neighbour row agrees with the bulk row counts."""
        plan = build_plan(PATTERNS["3CF"])
        mem = MemoryHierarchy(MemoryConfig(num_pes=1))
        for width in (0, 4, 16):
            ex = HardwareTaskExecutor(
                skewed_graph, plan,
                make_siu("order-aware", 8, bitmap_width=width), mem,
            )
            counts = _row_word_counts(skewed_graph, width)
            for v in range(0, skewed_graph.num_vertices, 23):
                row = skewed_graph.neighbors(v)
                assert ex.set_words(row) == counts[v], (v, width)
