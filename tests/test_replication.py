"""Replica groups, failover, hedging, probing, exactly-once merging.

The headline chaos property: with ``cluster_replicas >= 2``, killing any
single replica mid-workload yields **byte-identical** counts to a
single-node run with **zero** partial results — on both transports, all
engines, labeled patterns included.
"""

import time

import pytest

from repro.cluster import (
    HealthProber,
    HedgePolicy,
    LocalCluster,
    ReplicaGroup,
    ReplicaState,
    RetryPolicy,
    dedupe_replies,
    merge_replies,
)
from repro.core.config import xset_default
from repro.engine import available_engines
from repro.errors import ClusterError, ConfigError
from repro.graph import erdos_renyi
from repro.obs.slo import (
    AVAILABILITY_SLO,
    DEFAULT_SLOS,
    REPLICATED_SLOS,
    SLO,
    SLOTracker,
)
from repro.patterns import PATTERNS, build_plan
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    inject_comm,
)
from repro.sim.host import run_on_soc
from repro.sim.report import SimReport


def _reference(graph, pattern, engine="batched"):
    cfg = xset_default(engine=engine)
    return run_on_soc(graph, build_plan(pattern), cfg).embeddings


#: a retry policy with test-friendly backoff (milliseconds, not seconds)
FAST_RETRY = RetryPolicy(rounds=2, base=0.01, multiplier=2.0, cap=0.05)


# -- policy objects ---------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(rounds=3, base=0.1, multiplier=4.0, cap=1.0)
        assert p.backoff(0) == 0.0
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.4)
        assert p.backoff(3) == pytest.approx(1.0)  # capped (1.6 -> 1.0)

    def test_validation(self):
        with pytest.raises(ClusterError):
            RetryPolicy(rounds=0)
        with pytest.raises(ClusterError):
            RetryPolicy(base=-0.1)
        with pytest.raises(ClusterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ClusterError):
            RetryPolicy(deadline=0.0)


class TestHedgePolicy:
    def test_disabled_never_hedges(self):
        from repro.obs.summary import Window

        w = Window(16)
        for _ in range(16):
            w.add(0.5)
        assert HedgePolicy(enabled=False).delay(w) is None

    def test_needs_samples(self):
        from repro.obs.summary import Window

        w = Window(16)
        w.add(0.5)
        policy = HedgePolicy(enabled=True, min_samples=4)
        assert policy.delay(w) is None
        for _ in range(3):
            w.add(0.5)
        assert policy.delay(w) is not None

    def test_delay_clamped(self):
        from repro.obs.summary import Window

        w = Window(16)
        for _ in range(8):
            w.add(100.0)  # absurd p99
        policy = HedgePolicy(
            enabled=True, min_samples=4, min_delay=0.01, max_delay=0.25
        )
        assert policy.delay(w) == pytest.approx(0.25)
        w2 = Window(16)
        for _ in range(8):
            w2.add(1e-6)  # near-zero p99
        assert policy.delay(w2) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ClusterError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ClusterError):
            HedgePolicy(min_delay=0.5, max_delay=0.1)
        with pytest.raises(ClusterError):
            HedgePolicy(min_samples=-1)


class TestReplicaGroup:
    def test_configured_order_when_healthy(self):
        g = ReplicaGroup("s0", ["a", "b", "c"])
        assert g.ranked() == ["a", "b", "c"]

    def test_failure_demotes(self):
        g = ReplicaGroup("s0", ["a", "b"])
        assert g.mark_failure("a") is ReplicaState.SUSPECT
        assert g.ranked() == ["b", "a"]
        g.mark_success("a")
        assert g.ranked() == ["a", "b"]

    def test_evict_and_reintegrate(self):
        g = ReplicaGroup("s0", ["a", "b"])
        assert g.evict("a") is True
        assert g.evict("a") is False  # already evicted
        assert g.ranked() == ["b"]
        # a success on an evicted replica does not readmit it
        g.mark_success("a")
        assert g.state("a") is ReplicaState.EVICTED
        assert g.reintegrate("a") is True
        assert g.ranked() == ["a", "b"]

    def test_all_evicted_falls_back_to_everyone(self):
        g = ReplicaGroup("s0", ["a", "b"])
        g.evict("a")
        g.evict("b")
        assert g.ranked() == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ClusterError):
            ReplicaGroup("s0", [])
        with pytest.raises(ClusterError):
            ReplicaGroup("s0", ["a", "a"])
        with pytest.raises(ClusterError):
            ReplicaGroup("s0", ["a"]).state("nope")


class TestHealthProber:
    def test_evicts_after_consecutive_failures(self):
        alive = {"a": True, "b": True}
        evicted, rejoined = [], []
        prober = HealthProber(
            lambda r: alive[r],
            ["a", "b"],
            probe_failures=3,
            probe_recoveries=2,
            on_evict=evicted.append,
            on_rejoin=lambda r: rejoined.append(r) or True,
        )
        alive["a"] = False
        prober.step()
        prober.step()
        assert prober.evicted == ()  # 2 < probe_failures
        prober.step()
        assert prober.evicted == ("a",)
        assert evicted == ["a"]
        # recovery: two consecutive passing probes
        alive["a"] = True
        prober.step()
        assert prober.evicted == ("a",)
        prober.step()
        assert prober.evicted == ()
        assert rejoined == ["a"]

    def test_flap_resets_counters(self):
        alive = {"a": True}
        prober = HealthProber(
            lambda r: alive[r], ["a"], probe_failures=3,
            probe_recoveries=2,
        )
        alive["a"] = False
        prober.step()
        prober.step()
        alive["a"] = True
        prober.step()  # pass resets the failure streak
        alive["a"] = False
        prober.step()
        prober.step()
        assert prober.evicted == ()

    def test_rejoin_veto_keeps_evicted(self):
        alive = {"a": False}
        accept = {"value": False}
        prober = HealthProber(
            lambda r: alive[r], ["a"], probe_failures=1,
            probe_recoveries=1,
            on_rejoin=lambda r: accept["value"],
        )
        prober.step()
        assert prober.evicted == ("a",)
        alive["a"] = True
        prober.step()
        assert prober.evicted == ("a",)  # vetoed
        accept["value"] = True
        prober.step()
        assert prober.evicted == ()

    def test_ping_exception_counts_as_failure(self):
        def boom(_):
            raise RuntimeError("probe transport died")

        prober = HealthProber(boom, ["a"], probe_failures=1)
        assert prober.step() == {"a": False}
        assert prober.evicted == ("a",)

    def test_validation(self):
        with pytest.raises(ClusterError):
            HealthProber(lambda r: True, ["a"], probe_failures=0)


# -- exactly-once merge guards (satellite: merge.py under replicas) ---------


class TestMergeReplies:
    def _reply(self, lo, hi, embeddings):
        return ((lo, hi), SimReport(embeddings=embeddings))

    def test_merges_disjoint_ranges(self):
        merged = merge_replies(
            [self._reply(0, 10, 3), self._reply(10, 20, 4)],
            graph_name="g",
            pattern_name="p",
        )
        assert merged.embeddings == 7
        assert merged.graph_name == "g"

    def test_same_range_twice_rejected(self):
        with pytest.raises(ClusterError, match="answered twice"):
            merge_replies(
                [self._reply(0, 10, 3), self._reply(0, 10, 3)]
            )

    def test_overlap_rejected(self):
        with pytest.raises(ClusterError, match="overlap"):
            merge_replies(
                [self._reply(0, 12, 3), self._reply(10, 20, 4)]
            )

    def test_malformed_range_rejected(self):
        with pytest.raises(ClusterError, match="malformed"):
            merge_replies([self._reply(10, 4, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ClusterError):
            merge_replies([])

    def test_dedupe_drops_hedged_duplicate(self):
        dropped = []
        kept = dedupe_replies(
            [
                self._reply(0, 10, 3),
                self._reply(10, 20, 4),
                self._reply(0, 10, 3),  # the hedge loser's late answer
            ],
            on_duplicate=lambda rng, rep: dropped.append(rng),
        )
        assert len(kept) == 2
        assert dropped == [(0, 10)]
        assert merge_replies(kept).embeddings == 7

    def test_dedupe_keeps_first_answer(self):
        kept = dedupe_replies(
            [self._reply(0, 10, 3), self._reply(0, 10, 999)]
        )
        assert len(kept) == 1
        assert kept[0][1].embeddings == 3


# -- config / SLO surface ---------------------------------------------------


class TestReplicationConfig:
    def test_cluster_replicas_validated(self):
        with pytest.raises(ConfigError):
            xset_default(cluster_replicas=0)
        assert xset_default(cluster_replicas=3).cluster_replicas == 3

    def test_config_drives_local_cluster(self):
        cfg = xset_default(
            engine="batched", cluster_shards=2, cluster_replicas=2
        )
        with LocalCluster(config=cfg) as cluster:
            assert len(cluster.workers) == 4
            assert len(cluster.worker_groups) == 2
            assert cluster.coordinator.replicated

    def test_replica_naming(self):
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=2, config=cfg, replicas=2) as c:
            names = [w.name for w in c.workers]
            assert names == [
                "shard0/r0", "shard0/r1", "shard1/r0", "shard1/r1"
            ]
        with LocalCluster(num_shards=2, config=cfg) as c:
            assert [w.name for w in c.workers] == ["shard0", "shard1"]


class TestAvailabilitySLO:
    def test_kind_evaluates(self):
        tracker = SLOTracker((AVAILABILITY_SLO,), window=64)
        for _ in range(999):
            tracker.record(0.01, ok=True)
        status = tracker.evaluate()["query_availability"]
        assert status.met and status.observed == 1.0
        tracker2 = SLOTracker(
            (SLO(name="a", kind="availability", target=0.9),), window=10
        )
        for i in range(10):
            tracker2.record(0.01, ok=(i % 2 == 0))
        status = tracker2.evaluate()["a"]
        assert not status.met
        assert status.observed == pytest.approx(0.5)
        assert status.burn_rate == pytest.approx(0.5 / 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(name="a", kind="availability", target=1.5)

    def test_replicated_coordinator_tracks_availability(self):
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=2, config=cfg, replicas=2) as c:
            names = {s.name for s in c.coordinator.slo.slos}
            assert "query_availability" in names
        with LocalCluster(num_shards=2, config=cfg) as c:
            names = {s.name for s in c.coordinator.slo.slos}
            assert names == {s.name for s in DEFAULT_SLOS}

    def test_replicated_slos_superset(self):
        assert set(DEFAULT_SLOS) < set(REPLICATED_SLOS)


# -- the headline chaos property --------------------------------------------


class TestFailover:
    """Killing any single replica: byte-identical counts, zero partial."""

    @pytest.mark.parametrize("transport", ["inproc", "tcp"])
    @pytest.mark.parametrize("engine", sorted(available_engines()))
    def test_kill_replica_mid_workload(self, transport, engine):
        g = erdos_renyi(90, 7.0, seed=21, name="er90")
        cfg = xset_default(engine=engine)
        patterns = [PATTERNS[n] for n in ("3CF", "DIA")]
        expected = {
            p.name: _reference(g, p, engine=engine) for p in patterns
        }
        mode = "inline" if transport == "inproc" else "thread"
        with LocalCluster(
            num_shards=2,
            config=cfg,
            transport=transport,
            mode=mode,
            max_workers=1,
            replicas=2,
            retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            # healthy pass first: the workload is mid-flight when the
            # replica dies
            r = coord.query(gid, patterns[0])
            assert r.embeddings == expected["3CF"]
            assert r.notes["cluster"]["partial"] is False
            killed = cluster.kill_replica(0, 0)
            assert killed == "shard0/r0"
            for pattern in patterns:
                report = coord.query(gid, pattern)
                info = report.notes["cluster"]
                assert report.embeddings == expected[pattern.name], (
                    transport, engine, pattern.name
                )
                assert info["partial"] is False
                assert info["failed_shards"] == []
            # the surviving sibling served shard0
            assert info["served_by"]["shard0"] == "shard0/r1"

    @pytest.mark.parametrize("transport", ["inproc", "tcp"])
    def test_labeled_patterns_survive_kill(self, transport, rng):
        g = erdos_renyi(80, 7.0, seed=13).with_labels(
            rng.integers(0, 3, 80)
        )
        pattern = PATTERNS["3CF"].with_labels([0, 1, 2])
        expected = _reference(g, pattern)
        cfg = xset_default(engine="batched")
        mode = "inline" if transport == "inproc" else "thread"
        with LocalCluster(
            num_shards=2, config=cfg, transport=transport, mode=mode,
            max_workers=1, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            gid = cluster.coordinator.register_graph(g)
            cluster.kill_replica(1, 0)
            report = cluster.coordinator.query(gid, pattern)
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False

    @pytest.mark.parametrize("victim", [0, 1])
    def test_any_replica_position_is_survivable(self, victim):
        g = erdos_renyi(70, 6.0, seed=9)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=3, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            gid = cluster.coordinator.register_graph(g)
            for shard in range(3):
                cluster.kill_replica(shard, victim)
                break  # one dead replica at a time is the contract
            report = cluster.coordinator.query(gid, PATTERNS["3CF"])
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False

    def test_failover_observability(self):
        g = erdos_renyi(60, 6.0, seed=4)
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            cluster.kill_replica(0, 0)
            coord.query(gid, PATTERNS["3CF"])
            assert coord.metrics.counter(
                "repro_cluster_replica_failovers_total"
            ).value >= 1
            events = coord.flight.events("replica_failover")
            assert events and events[0].data["shard"] == "shard0"
            assert events[0].data["from_replica"] == "shard0/r0"
            text = coord.metrics_text()
            assert "repro_cluster_replica_failovers_total" in text
            assert "repro_cluster_replica_state" in text

    def test_both_replicas_dead_degrades_not_lies(self):
        g = erdos_renyi(60, 6.0, seed=4)
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            cluster.kill_replica(0, 0)
            cluster.kill_replica(0, 1)
            report = coord.query(gid, PATTERNS["3CF"])
            info = report.notes["cluster"]
            assert info["partial"] is True
            assert info["failed_shards"] == ["shard0"]
            with pytest.raises(ClusterError, match="partial"):
                coord.count(gid, PATTERNS["3CF"])

    def test_single_replica_unchanged_semantics(self):
        """replicas=1: a killed shard degrades, exactly as before."""
        g = erdos_renyi(60, 6.0, seed=4)
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            cluster.kill_shard(1)
            report = coord.query(gid, PATTERNS["3CF"])
            info = report.notes["cluster"]
            assert info["partial"] is True
            assert info["failed_shards"] == ["shard1"]


# -- probe-driven membership -------------------------------------------------


class TestProberIntegration:
    def test_evict_rejoin_cycle(self):
        g = erdos_renyi(60, 6.0, seed=17)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, replicas=2, retry=FAST_RETRY,
            probe_failures=2, probe_recoveries=2,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            cluster.kill_replica(0, 0)
            coord.prober.step()
            coord.prober.step()
            assert coord.prober.evicted == ("shard0/r0",)
            states = coord.replica_states()
            assert states["shard0"]["shard0/r0"] == "evicted"
            assert coord.flight.events("replica_evicted")
            # evicted replica is out of rotation: no failover needed
            report = coord.query(gid, PATTERNS["3CF"])
            assert report.embeddings == expected
            assert report.notes["cluster"]["failovers"] == 0
            assert (
                report.notes["cluster"]["served_by"]["shard0"]
                == "shard0/r1"
            )
            # recovery: revive, pass probes, rejoin re-registers + resets
            cluster.revive_replica(0, 0)
            coord.prober.step()
            coord.prober.step()
            assert coord.prober.evicted == ()
            assert (
                coord.replica_states()["shard0"]["shard0/r0"]
                == "healthy"
            )
            assert coord.flight.events("replica_rejoined")
            assert coord.metrics.counter(
                "repro_cluster_replica_evictions_total"
            ).value == 1
            assert coord.metrics.counter(
                "repro_cluster_replica_rejoins_total"
            ).value == 1
            # the rejoined primary serves again, exactly
            report = coord.query(gid, PATTERNS["3CF"])
            assert report.embeddings == expected
            assert (
                report.notes["cluster"]["served_by"]["shard0"]
                == "shard0/r0"
            )

    def test_rejoin_reships_graphs_registered_while_dead(self):
        g1 = erdos_renyi(50, 6.0, seed=2, name="g1")
        g2 = erdos_renyi(50, 6.0, seed=3, name="g2")
        expected = _reference(g2, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, replicas=2, retry=FAST_RETRY,
            probe_failures=1, probe_recoveries=1,
        ) as cluster:
            coord = cluster.coordinator
            coord.register_graph(g1)
            cluster.kill_replica(0, 0)
            coord.prober.step()
            assert coord.prober.evicted == ("shard0/r0",)
            # registered while shard0/r0 was dead: only the sibling holds it
            gid2 = coord.register_graph(g2)
            cluster.revive_replica(0, 0)
            coord.prober.step()
            assert coord.prober.evicted == ()
            # the rejoined primary must now hold g2 and serve it exactly
            report = coord.query(gid2, PATTERNS["3CF"])
            assert report.embeddings == expected
            assert (
                report.notes["cluster"]["served_by"]["shard0"]
                == "shard0/r0"
            )
            assert report.notes["cluster"]["partial"] is False

    def test_health_reports_replica_states(self):
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, replicas=2, retry=FAST_RETRY,
            probe_failures=1,
        ) as cluster:
            coord = cluster.coordinator
            health = coord.health()
            assert health.replicas["shard0"]["shard0/r0"] == "healthy"
            assert health.evicted == ()
            cluster.kill_replica(1, 1)
            coord.prober.step()
            health = coord.health()
            assert health.replicas["shard1"]["shard1/r1"] == "evicted"
            assert "shard1/r1" in health.evicted
            assert health.state.name != "HEALTHY"
            assert health.to_dict()["replicas"]["shard1"][
                "shard1/r1"
            ] == "evicted"
            assert "shard1/r1" in health.summary()


# -- hedged subqueries -------------------------------------------------------


class TestHedging:
    def test_straggler_hedged_exactly_once(self):
        g = erdos_renyi(50, 6.0, seed=5)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, replicas=2, retry=FAST_RETRY,
            hedge=HedgePolicy(
                enabled=True, min_samples=0, min_delay=0.05,
                max_delay=0.1,
            ),
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            # make the primary a straggler: every job on its service
            # hangs well past the hedge delay
            cluster.worker_groups[0][0].service.arm_faults(
                FaultPlan(specs=(
                    FaultSpec(site="worker.run", kind=FaultKind.HANG,
                              seconds=0.6),
                ))
            )
            report = coord.query(gid, PATTERNS["3CF"])
            assert report.embeddings == expected  # exactly once
            assert report.notes["cluster"]["partial"] is False
            assert report.notes["cluster"]["hedged"] == 1
            assert (
                report.notes["cluster"]["served_by"]["shard0"]
                == "shard0/r1"
            )
            assert coord.metrics.counter(
                "repro_cluster_hedged_queries_total"
            ).value == 1
            assert coord.flight.events("hedged_query")
            # the primary eventually answers too; its duplicate is
            # dropped and counted, never merged
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if coord.metrics.counter(
                    "repro_cluster_hedged_duplicates_dropped_total"
                ).value >= 1:
                    break
                time.sleep(0.05)
            assert coord.metrics.counter(
                "repro_cluster_hedged_duplicates_dropped_total"
            ).value == 1
            assert coord.flight.events("hedged_duplicate_dropped")

    def test_fast_primary_never_hedges(self):
        g = erdos_renyi(50, 6.0, seed=5)
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, replicas=2, retry=FAST_RETRY,
            hedge=HedgePolicy(
                enabled=True, min_samples=0, min_delay=5.0,
                max_delay=5.0,
            ),
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            report = coord.query(gid, PATTERNS["3CF"])
            assert report.notes["cluster"]["hedged"] == 0
            assert coord.metrics.counter(
                "repro_cluster_hedged_queries_total"
            ).value == 0


# -- comm-level fault injection ----------------------------------------------


class TestCommFaultFailover:
    def test_dropped_request_fails_over(self):
        g = erdos_renyi(50, 6.0, seed=6)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            injector = FaultInjector((
                FaultSpec(site="comm.send", kind=FaultKind.DROP),
            ))
            with inject_comm(injector):
                report = coord.query(gid, PATTERNS["3CF"])
            assert injector.events.get("comm.send:drop") == 1
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False
            assert report.notes["cluster"]["failovers"] >= 1

    def test_dropped_reply_fails_over(self):
        """comm.recv DROP loses the reply *after* the worker did the
        work — the retried subquery must still count exactly once."""
        g = erdos_renyi(50, 6.0, seed=6)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            injector = FaultInjector((
                FaultSpec(site="comm.recv", kind=FaultKind.DROP),
            ))
            with inject_comm(injector):
                report = coord.query(gid, PATTERNS["3CF"])
            assert injector.events.get("comm.recv:drop") == 1
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False

    def test_delayed_frame_still_exact(self):
        g = erdos_renyi(50, 6.0, seed=6)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            injector = FaultInjector((
                FaultSpec(site="comm.send", kind=FaultKind.DELAY,
                          seconds=0.05),
            ))
            with inject_comm(injector):
                report = coord.query(gid, PATTERNS["3CF"])
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False

    def test_corrupt_frame_fails_over_on_tcp(self):
        g = erdos_renyi(50, 6.0, seed=6)
        expected = _reference(g, PATTERNS["3CF"])
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=1, config=cfg, transport="tcp", mode="thread",
            max_workers=1, replicas=2, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            injector = FaultInjector((
                FaultSpec(site="comm.send",
                          kind=FaultKind.CORRUPT_FRAME, bit=0),
            ))
            with inject_comm(injector):
                report = coord.query(gid, PATTERNS["3CF"])
            assert injector.events.get("comm.send:corrupt-frame") == 1
            assert report.embeddings == expected
            assert report.notes["cluster"]["partial"] is False


# -- flight-recorder incident dedupe (satellite) ------------------------------


class TestIncidentDedupe:
    def test_one_shard_failure_event_per_incident(self):
        g = erdos_renyi(50, 6.0, seed=7)
        cfg = xset_default(engine="batched")
        with LocalCluster(
            num_shards=2, config=cfg, retry=FAST_RETRY,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(g)
            cluster.kill_shard(1)
            for _ in range(3):
                report = coord.query(gid, PATTERNS["3CF"])
                assert report.notes["cluster"]["partial"] is True
            failures = [
                e for e in coord.flight.events("shard_failure")
                if e.data["shard"] == "shard1"
            ]
            assert len(failures) == 1  # one incident, one event
            # recovery closes the incident...
            cluster.revive_replica(1, 0)
            coord._breakers.for_engine("shard1").reset()
            report = coord.query(gid, PATTERNS["3CF"])
            assert report.notes["cluster"]["partial"] is False
            assert coord.flight.events("shard_recovered")
            # ...and the next incident records one fresh event
            cluster.kill_shard(1)
            coord.query(gid, PATTERNS["3CF"])
            failures = [
                e for e in coord.flight.events("shard_failure")
                if e.data["shard"] == "shard1"
            ]
            assert len(failures) == 2
