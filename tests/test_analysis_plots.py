"""Tests for the ASCII chart renderers."""

from repro.analysis.plots import bar_chart, grouped_bars, line_series


class TestBarChart:
    def test_renders_all_labels(self):
        art = bar_chart({"xset": 6.4, "fingers": 3.6}, title="speedups")
        assert "xset" in art and "fingers" in art and "speedups" in art

    def test_peak_bar_longest(self):
        art = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        small_line = next(l for l in art.splitlines() if "small" in l)
        big_line = next(l for l in art.splitlines() if "big" in l)
        assert big_line.count("█") > small_line.count("█")

    def test_log_scale_compresses(self):
        lin = bar_chart({"a": 1.0, "b": 1000.0}, width=40)
        log = bar_chart({"a": 1.0, "b": 1000.0}, width=40, log=True)
        a_lin = next(l for l in lin.splitlines() if l.startswith("a"))
        a_log = next(l for l in log.splitlines() if l.startswith("a"))
        assert a_log.count("█") > a_lin.count("█")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"


class TestGroupedBars:
    def test_structure(self):
        art = grouped_bars({"PP": {"xset": 2.0}, "WV": {"xset": 8.0}})
        assert "PP:" in art and "WV:" in art

    def test_empty(self):
        assert grouped_bars({}) == "(no data)"


class TestLineSeries:
    def test_renders_axes_and_legend(self):
        art = line_series(
            [1, 2, 4, 8],
            {"xset": [1.0, 1.9, 3.7, 7.1], "dfs": [1.0, 1.2, 1.3, 1.4]},
            title="PE scaling",
        )
        assert "PE scaling" in art
        assert "o xset" in art and "x dfs" in art

    def test_constant_series_no_crash(self):
        art = line_series([0, 1], {"flat": [2.0, 2.0]})
        assert "flat" in art

    def test_empty(self):
        assert line_series([], {}) == "(no data)"


class TestReporting:
    def test_collect_from_explicit_dir(self, tmp_path):
        from repro.analysis import collect_results, experiment_summary

        (tmp_path / "fig12_software.txt").write_text("speedups here")
        blocks = collect_results(tmp_path)
        assert blocks == {"fig12_software": "speedups here"}
        report = experiment_summary(tmp_path)
        assert "fig12_software" in report
        assert "not yet regenerated" in report

    def test_empty_dir_message(self, tmp_path):
        from repro.analysis import experiment_summary

        empty = tmp_path / "none"
        empty.mkdir()
        assert "no results" in experiment_summary(empty) or (
            "not yet regenerated" in experiment_summary(empty)
        )
