"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, erdos_renyi, powerlaw_graph


@pytest.fixture
def toy_graph() -> CSRGraph:
    """The 6-vertex data graph of the paper's Figure 1a."""
    edges = [
        (0, 1), (0, 2), (0, 4),
        (1, 2), (1, 3),
        (2, 3), (2, 4),
        (3, 4), (3, 5),
        (4, 5),
    ]
    return CSRGraph.from_edges(6, edges, name="fig1a")


@pytest.fixture
def small_er() -> CSRGraph:
    """A 30-vertex random graph dense enough to contain every pattern."""
    return erdos_renyi(30, 8.0, seed=11, name="er30")


@pytest.fixture
def medium_er() -> CSRGraph:
    """A 60-vertex random graph used by integration tests."""
    return erdos_renyi(60, 8.0, seed=3, name="er60")


@pytest.fixture
def skewed_graph() -> CSRGraph:
    """A small power-law graph with a hub (scheduler stress)."""
    return powerlaw_graph(
        200, avg_degree=6.0, max_degree=80, seed=5, name="skewed",
        triangle_boost=0.3,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
